"""The plan-regression sentinel: baselines and drift alerts mined from
the query log.

Deep query optimisation buys its plan quality from statistics; when the
statistics move, the plans move — sometimes for the worse, and usually
silently. This module closes that loop. It watches the append-only
query log (:mod:`repro.obs.querylog`), maintains robust per-query
baselines keyed by the plan cache's ``spec_fingerprint``, and raises
structured :class:`SentinelAlert`\\ s when behaviour departs from them:

* **plan flips** — the optimiser chose a different plan shape
  (:func:`repro.core.plan.plan_fingerprint`) for a query it had
  already committed to, attributed to the catalog-statistics version
  that moved and scored by the estimated-cost delta;
* **latency drift** — a window of recent latencies for one query sits
  beyond ``median + k·MAD`` of its baseline (robust statistics, so a
  single outlier neither fires nor poisons the baseline);
* **q-error drift** — an operator kind's cardinality misestimation for
  one query grew well past its historical envelope, the early-warning
  sign that statistics are stale even before latency moves.

Baselines persist in a schema-versioned JSON store
(:class:`BaselineStore`) written atomically, so an offline replay
(``python -m repro.obs.querylog regress``) and a live
:class:`SentinelThread` inside the query service share one notion of
"normal". Detection runs *before* absorption each batch, and windows
that alerted are not absorbed — a regression cannot launder itself
into its own baseline.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.runtime import get_metrics

#: schema version stamped into (and required of) the baseline store.
BASELINE_SCHEMA_VERSION = 1

#: alert kinds, in rough order of diagnostic precedence.
ALERT_KINDS = ("plan_flip", "latency_drift", "qerror_drift")

#: alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass
class SentinelConfig:
    """Dials for the sentinel's detectors and bookkeeping."""

    #: master switch — a disabled sentinel observes nothing.
    enabled: bool = True
    #: recent-latency window per fingerprint compared against baseline.
    window: int = 64
    #: minimum window samples before a drift verdict is attempted.
    min_samples: int = 8
    #: drift threshold: window median beyond baseline ``median + k·MAD``.
    mad_k: float = 4.0
    #: ...and at least this ratio over the baseline median (guards the
    #: near-zero-MAD case where any jitter clears ``k·MAD``).
    min_latency_ratio: float = 1.5
    #: latency ratio at which a drift alert escalates to ``critical``.
    critical_latency_ratio: float = 3.0
    #: q-error drift: window median at least this multiple of baseline.
    min_qerror_ratio: float = 2.0
    #: ...and at least this absolute q-error (2× of 1.1 is still fine).
    qerror_floor: float = 4.0
    #: plan flips escalate to ``critical`` when the new plan's estimated
    #: cost exceeds the old by this ratio.
    cost_regression_ratio: float = 1.1
    #: EWMA smoothing for the per-fingerprint latency trend.
    ewma_alpha: float = 0.2
    #: baseline latency/q-error reservoir size per fingerprint.
    reservoir: int = 128
    #: retained alerts (ring buffer).
    max_alerts: int = 256
    #: TTL for :meth:`Sentinel.has_fresh_critical`.
    critical_ttl_seconds: float = 60.0


@dataclass
class SentinelAlert:
    """One structured regression verdict."""

    #: one of :data:`ALERT_KINDS`.
    kind: str
    #: one of :data:`SEVERITIES`.
    severity: str
    #: the query the alert is about (plan-cache spec fingerprint).
    spec_fingerprint: str
    #: human-oriented one-liner.
    message: str
    #: baseline plan shape (plan flips; empty otherwise).
    old_plan_hash: str = ""
    #: newly observed plan shape (plan flips; latest seen otherwise).
    new_plan_hash: str = ""
    #: operator kind (q-error drift; empty otherwise).
    operator_kind: str = ""
    #: observed value — window median latency/q-error, or new plan cost.
    observed: float = 0.0
    #: baseline value the observation is judged against.
    baseline: float = 0.0
    #: observed / baseline (inf when the baseline is zero).
    ratio: float = 0.0
    #: catalog statistics version the baseline plan was optimised under.
    old_catalog_version: int = 0
    #: catalog statistics version of the offending observation.
    new_catalog_version: int = 0
    #: estimated cost of the baseline plan (plan flips).
    old_cost: float = 0.0
    #: estimated cost of the new plan (plan flips).
    new_cost: float = 0.0
    #: up to three trace ids exemplifying the regression.
    trace_ids: list[str] = field(default_factory=list)
    #: structured "why it flipped" plan diff (plan flips, when both the
    #: committed and observed rows carried decision lists): the output of
    #: :func:`repro.core.plan.plan_diff` — ``{"identical": bool,
    #: "changed": [...], "added": [...], "removed": [...]}``. Empty
    #: otherwise.
    why: dict = field(default_factory=dict)
    #: unix seconds when the alert was raised.
    ts: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (stable keys, no Nones)."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "spec_fingerprint": self.spec_fingerprint,
            "message": self.message,
            "old_plan_hash": self.old_plan_hash,
            "new_plan_hash": self.new_plan_hash,
            "operator_kind": self.operator_kind,
            "observed": self.observed,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "old_catalog_version": self.old_catalog_version,
            "new_catalog_version": self.new_catalog_version,
            "old_cost": self.old_cost,
            "new_cost": self.new_cost,
            "trace_ids": list(self.trace_ids),
            "why": dict(self.why),
            "ts": self.ts,
        }

    def render(self) -> str:
        """One display line: ``[severity] kind fp: message``."""
        return (
            f"[{self.severity}] {self.kind} "
            f"{self.spec_fingerprint[:12]}: {self.message}"
        )


# -- robust statistics -------------------------------------------------------


def robust_median(values: list[float]) -> float:
    """The median of a non-empty list (mean of the middle pair)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def robust_mad(values: list[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the
    median) — the robust spread the drift detectors threshold on."""
    if not values:
        return 0.0
    if center is None:
        center = robust_median(values)
    return robust_median([abs(v - center) for v in values])


def _ratio(observed: float, baseline: float) -> float:
    if baseline <= 0.0:
        return math.inf if observed > 0.0 else 1.0
    return observed / baseline


# -- baseline store ----------------------------------------------------------


def _fresh_fingerprint_record() -> dict:
    return {
        "plans": {},
        "latency": {"samples": [], "ewma": None, "count": 0},
        "qerror": {},
    }


class BaselineStore:
    """Per-fingerprint baselines, optionally persisted as JSON.

    The store is a plain dict keyed by ``spec_fingerprint``; each record
    holds the committed plan per execution *mode* (deep/shallow ×
    worker count — a degraded serial plan is not a flip of the governed
    parallel one), a bounded latency reservoir (median + MAD + EWMA),
    and per-operator-kind q-error reservoirs. A ``plan_index`` maps
    plan hashes back to fingerprints so bare ``execute``/``profile``
    rows can be attributed.

    Persistence is crash- and concurrency-safe in the append-log
    spirit: :meth:`save` writes a temp file and ``os.replace``\\ s it
    into place, so readers never observe a torn store (concurrent
    writers are last-writer-wins, never corruption). A missing,
    malformed, or schema-mismatched file loads as empty.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        reservoir: int = SentinelConfig.reservoir,
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._reservoir = max(int(reservoir), 4)
        self._lock = threading.Lock()
        self._fingerprints: dict[str, dict] = {}
        self._plan_index: dict[str, str] = {}
        if self._path is not None:
            self._load()

    @property
    def path(self) -> Path | None:
        """Where the store persists, or None for in-memory only."""
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return len(self._fingerprints)

    def _load(self) -> None:
        assert self._path is not None
        try:
            raw = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("schema_version") != BASELINE_SCHEMA_VERSION
        ):
            return
        fingerprints = raw.get("fingerprints")
        plan_index = raw.get("plan_index")
        if isinstance(fingerprints, dict):
            self._fingerprints = fingerprints
        if isinstance(plan_index, dict):
            self._plan_index = plan_index

    def save(self) -> None:
        """Persist atomically (no-op for an in-memory store)."""
        if self._path is None:
            return
        with self._lock:
            payload = {
                "schema_version": BASELINE_SCHEMA_VERSION,
                "saved_ts": time.time(),
                "fingerprints": self._fingerprints,
                "plan_index": self._plan_index,
            }
            text = json.dumps(payload, sort_keys=True)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(self._path.parent), prefix=self._path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(text)
            os.replace(tmp_name, self._path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- record access (callers hold no lock; methods are atomic) ----------

    def record(self, spec_fp: str) -> dict:
        """The (created-on-demand) record for one fingerprint."""
        with self._lock:
            return self._fingerprints.setdefault(
                spec_fp, _fresh_fingerprint_record()
            )

    def peek(self, spec_fp: str) -> dict | None:
        """The record for one fingerprint, or None."""
        with self._lock:
            return self._fingerprints.get(spec_fp)

    def fingerprints(self) -> list[str]:
        """Every tracked fingerprint."""
        with self._lock:
            return list(self._fingerprints)

    def spec_for_plan(self, plan_hash: str) -> str | None:
        """The fingerprint a plan hash belongs to, if ever indexed."""
        with self._lock:
            return self._plan_index.get(plan_hash)

    def index_plan(self, plan_hash: str, spec_fp: str) -> None:
        """Remember that ``plan_hash`` realises ``spec_fp``."""
        if not plan_hash or not spec_fp:
            return
        with self._lock:
            self._plan_index[plan_hash] = spec_fp

    # -- baseline updates ---------------------------------------------------

    def commit_plan(self, spec_fp: str, mode: str, plan: dict) -> None:
        """Commit (or replace) the baseline plan for one mode."""
        record = self.record(spec_fp)
        with self._lock:
            record["plans"][mode] = dict(plan)

    def absorb_latency(
        self, spec_fp: str, samples: Iterable[float], alpha: float
    ) -> None:
        """Fold latency samples into the fingerprint's reservoir+EWMA."""
        record = self.record(spec_fp)
        with self._lock:
            latency = record["latency"]
            for value in samples:
                latency["samples"].append(float(value))
                latency["count"] = int(latency.get("count", 0)) + 1
                previous = latency.get("ewma")
                latency["ewma"] = (
                    float(value)
                    if previous is None
                    else alpha * float(value) + (1.0 - alpha) * float(previous)
                )
            del latency["samples"][: -self._reservoir]

    def absorb_qerrors(
        self, spec_fp: str, kind: str, samples: Iterable[float]
    ) -> None:
        """Fold operator q-error samples into their reservoir."""
        record = self.record(spec_fp)
        with self._lock:
            slot = record["qerror"].setdefault(
                kind, {"samples": [], "count": 0}
            )
            for value in samples:
                slot["samples"].append(float(value))
                slot["count"] = int(slot.get("count", 0)) + 1
            del slot["samples"][: -self._reservoir]

    def latency_baseline(self, spec_fp: str) -> tuple[float, float, int]:
        """(median, MAD, count) of the fingerprint's latency history."""
        with self._lock:
            record = self._fingerprints.get(spec_fp)
            if record is None:
                return 0.0, 0.0, 0
            samples = list(record["latency"]["samples"])
            count = int(record["latency"].get("count", 0))
        if not samples:
            return 0.0, 0.0, count
        median = robust_median(samples)
        return median, robust_mad(samples, median), count

    def qerror_baseline(
        self, spec_fp: str, kind: str
    ) -> tuple[float, int]:
        """(median q-error, count) for one operator kind."""
        with self._lock:
            record = self._fingerprints.get(spec_fp)
            if record is None:
                return 0.0, 0
            slot = record["qerror"].get(kind)
            if slot is None:
                return 0.0, 0
            samples = list(slot["samples"])
            count = int(slot.get("count", 0))
        if not samples:
            return 0.0, count
        return robust_median(samples), count

    def info(self) -> dict:
        """A JSON-friendly summary of the store's extent."""
        with self._lock:
            plans = sum(
                len(record["plans"])
                for record in self._fingerprints.values()
            )
            return {
                "schema_version": BASELINE_SCHEMA_VERSION,
                "path": str(self._path) if self._path else None,
                "fingerprints": len(self._fingerprints),
                "plans": plans,
                "indexed_plan_hashes": len(self._plan_index),
            }


# -- observation extraction --------------------------------------------------


def _plan_mode(entry: dict) -> str:
    """The execution mode a plan choice is committed under. Degraded
    (shallow/serial) plans get their own lane, so admission-control
    degradation never reads as a plan flip of the governed plan."""
    deep = bool(entry.get("deep", True))
    workers = int(entry.get("workers", 1) or 1)
    return f"{'deep' if deep else 'shallow'}/w{workers}"


def _walk_profile_nodes(node: dict):
    yield node
    for child in node.get("children", []) or []:
        yield from _walk_profile_nodes(child)


@dataclass
class _Observations:
    """One batch of log rows, decomposed into detector inputs."""

    #: spec_fp → list of (mode, plan row) in arrival order.
    plans: dict[str, list[tuple[str, dict]]] = field(default_factory=dict)
    #: spec_fp → latency seconds samples.
    latencies: dict[str, list[float]] = field(default_factory=dict)
    #: spec_fp → trace-id exemplars (latency rows).
    traces: dict[str, list[str]] = field(default_factory=dict)
    #: spec_fp → operator kind → q-error samples.
    qerrors: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    #: spec_fp → last seen plan hash (for alert context).
    last_plan: dict[str, str] = field(default_factory=dict)
    #: rows considered at all (for the evaluations metric).
    considered: int = 0


def _extract(entries: list[dict], store: BaselineStore) -> _Observations:
    """Decompose a batch of query-log rows into detector inputs.

    ``optimize`` rows carry the full identity (plan hash + spec
    fingerprint + catalog version) and feed the plan-flip detector;
    ``service`` rows carry identity plus latency; bare ``execute`` /
    ``profile`` rows are attributed through the store's plan index and
    deduplicated against same-trace service rows, so one served request
    is one latency sample, not three.
    """
    obs = _Observations()
    service_traces: set[str] = set()
    for entry in entries:
        if entry.get("kind") == "service" and entry.get("trace_id"):
            service_traces.add(str(entry["trace_id"]))

    def note_latency(spec_fp: str, seconds: float, trace_id: str) -> None:
        obs.latencies.setdefault(spec_fp, []).append(seconds)
        if trace_id:
            exemplars = obs.traces.setdefault(spec_fp, [])
            if trace_id not in exemplars:
                exemplars.append(trace_id)

    for entry in entries:
        kind = entry.get("kind")
        if kind == "optimize":
            spec_fp = str(entry.get("spec_fingerprint", "") or "")
            plan_hash = str(entry.get("plan_hash", "") or "")
            if not spec_fp or not plan_hash:
                continue
            obs.considered += 1
            store.index_plan(plan_hash, spec_fp)
            obs.plans.setdefault(spec_fp, []).append((_plan_mode(entry), entry))
            obs.last_plan[spec_fp] = plan_hash
        elif kind == "service":
            spec_fp = str(entry.get("spec_fingerprint", "") or "")
            plan_hash = str(entry.get("plan_hash", "") or "")
            if not spec_fp or entry.get("status") not in (None, "ok"):
                continue
            obs.considered += 1
            store.index_plan(plan_hash, spec_fp)
            if plan_hash:
                obs.last_plan[spec_fp] = plan_hash
            seconds = entry.get("execute_seconds")
            if seconds is None:
                seconds = entry.get("wall_seconds")
            if seconds is not None:
                note_latency(
                    spec_fp, float(seconds), str(entry.get("trace_id", ""))
                )
        elif kind in ("execute", "profile"):
            plan_hash = str(entry.get("plan_hash", "") or "")
            if not plan_hash:
                continue
            spec_fp = store.spec_for_plan(plan_hash)
            if spec_fp is None:
                continue
            obs.considered += 1
            trace_id = str(entry.get("trace_id", "") or "")
            if kind == "execute":
                # A governed request already contributed its service row.
                if trace_id and trace_id in service_traces:
                    continue
                seconds = entry.get("wall_seconds")
                if seconds is not None:
                    note_latency(spec_fp, float(seconds), trace_id)
            else:
                operators = entry.get("operators")
                if not isinstance(operators, dict):
                    continue
                for node in _walk_profile_nodes(operators):
                    estimated = node.get("estimated_rows")
                    if estimated is None:
                        continue
                    actual = max(int(node.get("rows_out", 0)), 1)
                    est = max(float(estimated), 1.0)
                    qerror = max(est / actual, actual / est)
                    if not math.isfinite(qerror):
                        continue
                    op_kind = str(
                        node.get("operator_kind")
                        or node.get("plan_op")
                        or "?"
                    )
                    obs.qerrors.setdefault(spec_fp, {}).setdefault(
                        op_kind, []
                    ).append(qerror)
    return obs


# -- the sentinel ------------------------------------------------------------


class Sentinel:
    """Detects plan flips and drift across batches of query-log rows.

    Feed it rows via :meth:`observe` (a live tail) or
    :meth:`evaluate_log` (offline replay); both return the alerts the
    batch raised. Detection happens against the *pre-batch* baselines,
    then the batch is absorbed — except that a fingerprint whose window
    alerted keeps its old baseline, so a regression must be acknowledged
    (or age out via new deployments of the store) rather than silently
    becoming the new normal.
    """

    def __init__(
        self,
        store: BaselineStore | None = None,
        config: SentinelConfig | None = None,
    ) -> None:
        self._store = store if store is not None else BaselineStore()
        self._config = config if config is not None else SentinelConfig()
        self._lock = threading.Lock()
        self._alerts: deque[SentinelAlert] = deque(
            maxlen=max(int(self._config.max_alerts), 1)
        )
        self._windows: dict[str, deque[float]] = {}
        self._counts: dict[str, int] = {kind: 0 for kind in ALERT_KINDS}
        self._evaluated = 0
        self._last_critical_ts = 0.0

    @property
    def store(self) -> BaselineStore:
        """The baseline store backing detection."""
        return self._store

    @property
    def config(self) -> SentinelConfig:
        """The active configuration."""
        return self._config

    # -- alert surface -------------------------------------------------------

    def alerts(self, limit: int | None = None) -> list[SentinelAlert]:
        """Recent alerts, newest last (bounded ring)."""
        with self._lock:
            items = list(self._alerts)
        return items if limit is None else items[-max(int(limit), 0) :]

    def counts(self) -> dict:
        """Cumulative alert counts by kind, plus rows evaluated."""
        with self._lock:
            payload = dict(self._counts)
            payload["total"] = sum(self._counts.values())
            payload["evaluated"] = self._evaluated
        return payload

    def has_fresh_critical(self, now: float | None = None) -> bool:
        """True while a ``critical`` alert is younger than the TTL."""
        with self._lock:
            last = self._last_critical_ts
        if not last:
            return False
        now = time.time() if now is None else now
        return (now - last) <= self._config.critical_ttl_seconds

    def snapshot(self) -> dict:
        """JSON-friendly state for ``health()``/dashboards."""
        payload = self.counts()
        payload["enabled"] = self._config.enabled
        payload["fingerprints"] = len(self._store)
        payload["fresh_critical"] = self.has_fresh_critical()
        payload["recent"] = [
            alert.to_dict() for alert in self.alerts(limit=8)
        ]
        return payload

    # -- detection -----------------------------------------------------------

    def observe(self, entries: list[dict]) -> list[SentinelAlert]:
        """Ingest a batch of query-log rows; returns new alerts."""
        if not self._config.enabled or not entries:
            return []
        config = self._config
        obs = _extract(entries, self._store)
        alerts: list[SentinelAlert] = []
        drifted_latency: set[str] = set()
        drifted_qerror: set[tuple[str, str]] = set()

        # 1. plan flips — judged against the committed plan per mode.
        for spec_fp, sightings in obs.plans.items():
            for mode, row in sightings:
                plan_hash = str(row["plan_hash"])
                record = self._store.peek(spec_fp)
                committed = (
                    record["plans"].get(mode) if record is not None else None
                )
                if committed is None or committed.get("plan_hash") == plan_hash:
                    self._commit_plan_row(spec_fp, mode, row)
                    continue
                alerts.append(
                    self._plan_flip_alert(spec_fp, committed, row, obs)
                )
                # The new plan becomes the committed one: a flip alerts
                # once, not once per repetition.
                self._commit_plan_row(spec_fp, mode, row)

        # 2. latency drift — sliding window vs. robust baseline.
        for spec_fp, samples in obs.latencies.items():
            window = self._windows.setdefault(
                spec_fp, deque(maxlen=max(int(config.window), 2))
            )
            window.extend(samples)
            baseline_median, baseline_mad, count = (
                self._store.latency_baseline(spec_fp)
            )
            if (
                len(window) < config.min_samples
                or count < config.min_samples
            ):
                continue
            observed = robust_median(list(window))
            threshold = baseline_median + config.mad_k * baseline_mad
            ratio = _ratio(observed, baseline_median)
            if observed > threshold and ratio >= config.min_latency_ratio:
                drifted_latency.add(spec_fp)
                severity = (
                    "critical"
                    if ratio >= config.critical_latency_ratio
                    else "warning"
                )
                alerts.append(
                    SentinelAlert(
                        kind="latency_drift",
                        severity=severity,
                        spec_fingerprint=spec_fp,
                        new_plan_hash=obs.last_plan.get(spec_fp, ""),
                        observed=observed,
                        baseline=baseline_median,
                        ratio=ratio,
                        trace_ids=obs.traces.get(spec_fp, [])[:3],
                        message=(
                            f"latency p50 {observed * 1e3:.3f}ms vs "
                            f"baseline {baseline_median * 1e3:.3f}ms "
                            f"(x{ratio:.2f}, k·MAD "
                            f"{config.mad_k:.1f}·{baseline_mad * 1e3:.3f}ms)"
                        ),
                    )
                )

        # 3. q-error drift per operator kind.
        for spec_fp, per_kind in obs.qerrors.items():
            for op_kind, samples in per_kind.items():
                if len(samples) < 1:
                    continue
                baseline, count = self._store.qerror_baseline(
                    spec_fp, op_kind
                )
                if count < config.min_samples:
                    continue
                observed = robust_median(samples)
                ratio = _ratio(observed, baseline)
                if (
                    observed >= config.qerror_floor
                    and ratio >= config.min_qerror_ratio
                ):
                    drifted_qerror.add((spec_fp, op_kind))
                    alerts.append(
                        SentinelAlert(
                            kind="qerror_drift",
                            severity="warning",
                            spec_fingerprint=spec_fp,
                            operator_kind=op_kind,
                            new_plan_hash=obs.last_plan.get(spec_fp, ""),
                            observed=observed,
                            baseline=baseline,
                            ratio=ratio,
                            trace_ids=obs.traces.get(spec_fp, [])[:3],
                            message=(
                                f"{op_kind} q-error p50 {observed:.2f} vs "
                                f"baseline {baseline:.2f} (x{ratio:.2f})"
                            ),
                        )
                    )

        # 4. absorb — but never a window that just alerted.
        for spec_fp, samples in obs.latencies.items():
            if spec_fp in drifted_latency:
                continue
            self._store.absorb_latency(spec_fp, samples, config.ewma_alpha)
        for spec_fp, per_kind in obs.qerrors.items():
            for op_kind, samples in per_kind.items():
                if (spec_fp, op_kind) in drifted_qerror:
                    continue
                self._store.absorb_qerrors(spec_fp, op_kind, samples)

        self._retain(alerts, evaluated=obs.considered)
        self._report_metrics(alerts)
        return alerts

    def evaluate_log(
        self, entries: list[dict], chunk: int = 32
    ) -> list[SentinelAlert]:
        """Offline replay: feed history through :meth:`observe` in
        arrival-ordered chunks (so baselines build *then* get judged,
        exactly as a live tail would) and return every alert raised."""
        alerts: list[SentinelAlert] = []
        chunk = max(int(chunk), 1)
        for start in range(0, len(entries), chunk):
            alerts.extend(self.observe(entries[start : start + chunk]))
        return alerts

    # -- internals -----------------------------------------------------------

    def _commit_plan_row(self, spec_fp: str, mode: str, row: dict) -> None:
        self._store.commit_plan(
            spec_fp,
            mode,
            {
                "plan_hash": str(row.get("plan_hash", "")),
                "catalog_version": int(row.get("catalog_version", 0) or 0),
                "cost": float(row.get("cost", 0.0) or 0.0),
                "ts": float(row.get("ts", 0.0) or 0.0),
                "decisions": list(row.get("decisions", []) or []),
            },
        )

    def _plan_flip_alert(
        self,
        spec_fp: str,
        committed: dict,
        row: dict,
        obs: _Observations,
    ) -> SentinelAlert:
        old_cost = float(committed.get("cost", 0.0) or 0.0)
        new_cost = float(row.get("cost", 0.0) or 0.0)
        cost_ratio = _ratio(new_cost, old_cost)
        if cost_ratio >= self._config.cost_regression_ratio:
            severity = "critical"
        elif cost_ratio >= 1.0:
            severity = "warning"
        else:
            severity = "info"
        old_version = int(committed.get("catalog_version", 0) or 0)
        new_version = int(row.get("catalog_version", 0) or 0)
        trace_id = str(row.get("trace_id", "") or "")
        # Why it flipped: diff the committed decision list against the
        # observed one (both stamped onto optimize rows by the DP
        # optimiser). Rows predating decision journaling yield no diff.
        why: dict = {}
        why_suffix = ""
        old_decisions = list(committed.get("decisions", []) or [])
        new_decisions = list(row.get("decisions", []) or [])
        if old_decisions and new_decisions:
            from repro.core.plan import plan_diff, render_plan_diff

            why = plan_diff(old_decisions, new_decisions)
            why_suffix = f"; why: {render_plan_diff(why)}"
        return SentinelAlert(
            kind="plan_flip",
            severity=severity,
            spec_fingerprint=spec_fp,
            old_plan_hash=str(committed.get("plan_hash", "")),
            new_plan_hash=str(row.get("plan_hash", "")),
            observed=new_cost,
            baseline=old_cost,
            ratio=cost_ratio,
            old_catalog_version=old_version,
            new_catalog_version=new_version,
            old_cost=old_cost,
            new_cost=new_cost,
            trace_ids=[trace_id] if trace_id else [],
            why=why,
            message=(
                f"plan {committed.get('plan_hash', '?')} -> "
                f"{row.get('plan_hash', '?')} "
                f"(catalog v{old_version} -> v{new_version}, "
                f"cost {old_cost:.1f} -> {new_cost:.1f}, x{cost_ratio:.2f})"
                f"{why_suffix}"
            ),
        )

    def _retain(self, alerts: list[SentinelAlert], evaluated: int) -> None:
        with self._lock:
            self._evaluated += evaluated
            for alert in alerts:
                self._alerts.append(alert)
                self._counts[alert.kind] = (
                    self._counts.get(alert.kind, 0) + 1
                )
                if alert.severity == "critical":
                    self._last_critical_ts = max(
                        self._last_critical_ts, alert.ts
                    )

    def _report_metrics(self, alerts: list[SentinelAlert]) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter("sentinel.evaluations", exist_ok=True).inc()
        metrics.gauge("sentinel.fingerprints", exist_ok=True).set(
            len(self._store)
        )
        if alerts:
            metrics.counter("sentinel.alerts", exist_ok=True).inc(
                len(alerts)
            )
            for alert in alerts:
                metrics.counter(
                    f"sentinel.alerts.{alert.kind}", exist_ok=True
                ).inc()


# -- live tail ---------------------------------------------------------------


class SentinelThread:
    """A daemon thread tailing a :class:`~repro.obs.querylog.QueryLog`
    incrementally and feeding each batch of complete rows to a
    :class:`Sentinel`.

    ``on_alerts`` (if given) is called with each non-empty alert batch —
    the query service uses it to advise the admission controller when a
    critical regression is fresh. :meth:`tick` runs one poll inline,
    which is how tests drive the thread deterministically.
    """

    def __init__(
        self,
        log,
        sentinel: Sentinel,
        interval_seconds: float = 2.0,
        on_alerts: Callable[[list[SentinelAlert]], None] | None = None,
    ) -> None:
        self._log = log
        self._sentinel = sentinel
        self._interval = max(float(interval_seconds), 0.05)
        self._on_alerts = on_alerts
        self._offset = 0
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = 0

    @property
    def sentinel(self) -> Sentinel:
        """The sentinel this thread feeds."""
        return self._sentinel

    @property
    def running(self) -> bool:
        """True while the polling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def ticks(self) -> int:
        """Completed polls (including inline :meth:`tick` calls)."""
        return self._ticks

    def start(self) -> None:
        """Start polling (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sentinel", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop polling; runs one final drain before exiting."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def poke(self) -> None:
        """Wake the polling thread early (e.g. after a burst of work)."""
        self._wake.set()

    def tick(self) -> list[SentinelAlert]:
        """Run one poll inline: read newly-completed log rows, observe
        them, dispatch ``on_alerts``. Returns the batch's alerts."""
        entries, self._offset = self._log.read_from(self._offset)
        alerts = self._sentinel.observe(entries) if entries else []
        self._ticks += 1
        if alerts and self._on_alerts is not None:
            try:
                self._on_alerts(alerts)
            except Exception:  # pragma: no cover - advisory hook
                pass
        return alerts

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep the tail alive
                pass
            self._wake.wait(timeout=self._interval)
            self._wake.clear()
        try:
            self.tick()
        except Exception:  # pragma: no cover
            pass
