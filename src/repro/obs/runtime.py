"""Process-wide observability handles, disabled by default.

The engine and optimiser consult these globals so that callers do not
have to thread a registry/tracer through every API. Out of the box both
are disabled no-ops (zero cost); :func:`enable_observability` swaps in
live instances and returns them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

_metrics = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (a no-op unless enabled)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns it."""
    global _metrics
    _metrics = registry
    return registry


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op unless enabled)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def enable_observability() -> tuple[MetricsRegistry, Tracer]:
    """Install and return a live registry + tracer pair."""
    return (
        set_metrics(MetricsRegistry(enabled=True)),
        set_tracer(Tracer(enabled=True)),
    )


def disable_observability() -> None:
    """Restore the zero-cost disabled defaults."""
    set_metrics(MetricsRegistry(enabled=False))
    set_tracer(Tracer(enabled=False))


@contextmanager
def capture_observability() -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Scoped observability: a fresh live registry + tracer for the
    duration of the ``with`` block, previous globals restored on exit.

    Unlike :func:`enable_observability`, which mutates the process-wide
    handles until someone calls :func:`disable_observability`, this
    cannot leak state across callers (or tests): whatever registry and
    tracer were installed before — enabled, disabled, or someone else's
    capture — come back even when the body raises. ::

        with capture_observability() as (metrics, tracer):
            execute(plan)
            print(metrics.render_text())
    """
    previous_metrics, previous_tracer = _metrics, _tracer
    pair = (MetricsRegistry(enabled=True), Tracer(enabled=True))
    set_metrics(pair[0])
    set_tracer(pair[1])
    try:
        yield pair
    finally:
        set_metrics(previous_metrics)
        set_tracer(previous_tracer)
