"""Process-wide observability handles, disabled by default.

The engine and optimiser consult these globals so that callers do not
have to thread a registry/tracer through every API. Out of the box both
are disabled no-ops (zero cost); :func:`enable_observability` swaps in
live instances and returns them.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

_metrics = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (a no-op unless enabled)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns it."""
    global _metrics
    _metrics = registry
    return registry


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op unless enabled)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return tracer


def enable_observability() -> tuple[MetricsRegistry, Tracer]:
    """Install and return a live registry + tracer pair."""
    return (
        set_metrics(MetricsRegistry(enabled=True)),
        set_tracer(Tracer(enabled=True)),
    )


def disable_observability() -> None:
    """Restore the zero-cost disabled defaults."""
    set_metrics(MetricsRegistry(enabled=False))
    set_tracer(Tracer(enabled=False))
