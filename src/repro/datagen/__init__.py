"""Dataset and workload generators for the paper's experiments."""

from repro.datagen.distributions import (
    clustered_keys,
    sparsify,
    uniform_keys,
    zipf_keys,
)
from repro.datagen.grouping import (
    FIGURE4_GRID,
    Density,
    GroupingDataset,
    Sortedness,
    figure4_datasets,
    make_grouping_dataset,
)
from repro.datagen.join import (
    PAPER_NUM_GROUPS,
    PAPER_R_ROWS,
    PAPER_S_ROWS,
    JoinScenario,
    make_join_scenario,
)
from repro.datagen.star import (
    DimensionSpec,
    StarScenario,
    make_star_scenario,
)
from repro.datagen.workload import (
    QueryShape,
    TableProfile,
    Workload,
    WorkloadQuery,
    make_workload,
)

__all__ = [
    "FIGURE4_GRID",
    "PAPER_NUM_GROUPS",
    "PAPER_R_ROWS",
    "PAPER_S_ROWS",
    "Density",
    "DimensionSpec",
    "GroupingDataset",
    "JoinScenario",
    "QueryShape",
    "Sortedness",
    "StarScenario",
    "TableProfile",
    "Workload",
    "WorkloadQuery",
    "clustered_keys",
    "figure4_datasets",
    "make_grouping_dataset",
    "make_join_scenario",
    "make_star_scenario",
    "make_workload",
    "sparsify",
    "uniform_keys",
    "zipf_keys",
]
