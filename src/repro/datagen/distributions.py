"""Key-distribution primitives used by the dataset generators.

The paper's §4.1 datasets are *uniformly distributed* grouping keys with two
orthogonal properties, sortedness and density. Beyond uniform we also provide
Zipf and clustered distributions — §2.2 explicitly names *clustered* and
*correlated* as further DQO plan properties worth exercising.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataGenError


def uniform_keys(
    n: int, num_distinct: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` uniform draws from ``num_distinct`` dense key values ``0..G-1``.

    Every distinct value is guaranteed to occur at least once (the paper's
    generators fix the number of groups exactly; with 100M draws over at
    most 40k groups this holds with overwhelming probability anyway, but at
    reduced scale we enforce it so NDV == requested groups).
    """
    if n <= 0:
        raise DataGenError(f"n must be > 0, got {n}")
    if not 1 <= num_distinct <= n:
        raise DataGenError(
            f"num_distinct must be in [1, n={n}], got {num_distinct}"
        )
    keys = rng.integers(0, num_distinct, size=n, dtype=np.int64)
    # Plant one occurrence of every value at random positions so the
    # realised group count equals the requested one exactly.
    plant_positions = rng.choice(n, size=num_distinct, replace=False)
    keys[plant_positions] = np.arange(num_distinct, dtype=np.int64)
    return keys


def zipf_keys(
    n: int, num_distinct: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """``n`` Zipf-skewed draws over dense values ``0..num_distinct-1``.

    :param skew: Zipf exponent; 0 degenerates to uniform, larger is more
        skewed. Implemented by inverse-CDF sampling over the truncated
        Zipf probability vector (numpy's ``zipf`` is unbounded).
    """
    if skew < 0:
        raise DataGenError(f"skew must be >= 0, got {skew}")
    if not 1 <= num_distinct <= n:
        raise DataGenError(
            f"num_distinct must be in [1, n={n}], got {num_distinct}"
        )
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    weights = ranks**-skew
    cdf = np.cumsum(weights / weights.sum())
    draws = rng.random(n)
    return np.searchsorted(cdf, draws).astype(np.int64)


def clustered_keys(
    n: int, num_distinct: int, rng: np.random.Generator
) -> np.ndarray:
    """Keys where equal values are contiguous but run order is random.

    This produces data that is *clustered* ("partitioned by the grouping
    key" in the paper's words) without being globally sorted — exactly the
    precondition of order-based grouping and nothing stronger.
    """
    keys = uniform_keys(n, num_distinct, rng)
    keys.sort()
    starts_values = _runs(keys)
    order = rng.permutation(len(starts_values))
    pieces = [starts_values[i] for i in order]
    return np.concatenate(pieces) if pieces else keys


def _runs(sorted_keys: np.ndarray) -> list[np.ndarray]:
    """Split a sorted array into its per-value runs."""
    if sorted_keys.size == 0:
        return []
    change = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    return np.split(sorted_keys, change)


def sparsify(keys: np.ndarray, spread: int, rng: np.random.Generator) -> np.ndarray:
    """Map dense keys ``0..G-1`` onto a sparse, order-preserving domain.

    Each dense value ``v`` is remapped to a random point inside its own
    bucket ``[v * spread, (v+1) * spread)``, so the mapping is strictly
    monotone: sortedness and clusteredness of the input survive, but the
    domain has gaps (density ~ 1/spread), disabling static perfect hashing
    — which is the whole point of the paper's sparse datasets.

    :param spread: domain dilation factor, must be >= 2 to create gaps.
    """
    if spread < 2:
        raise DataGenError(f"spread must be >= 2, got {spread}")
    if keys.size == 0:
        return keys.copy()
    num_values = int(keys.max()) + 1
    offsets = rng.integers(0, spread, size=num_values, dtype=np.int64)
    mapping = np.arange(num_values, dtype=np.int64) * spread + offsets
    return mapping[keys]
