"""Generators for the §4.1 grouping datasets.

The paper: *"The datasets consist of 100 million 4 byte unsigned integer
values representing the grouping key. Each dataset is uniformly distributed
and has two properties, sortedness and density. Taking all combinations of
those properties, we end up with four different datasets."*

We reproduce exactly that 2x2 grid, parameterised by scale (the library
defaults benchmarks to 2,000,000 rows — substitution #2 in DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.datagen.distributions import sparsify, uniform_keys
from repro.errors import DataGenError
from repro.storage.column import Column
from repro.storage.dtypes import DataType
from repro.storage.table import Table


class Sortedness(enum.Enum):
    """Whether the generated key column is globally sorted."""

    SORTED = "sorted"
    UNSORTED = "unsorted"


class Density(enum.Enum):
    """Whether the generated key domain is dense (gap-free) or sparse."""

    DENSE = "dense"
    SPARSE = "sparse"


#: The four dataset configurations of Figure 4, in the paper's panel order.
FIGURE4_GRID: tuple[tuple[Sortedness, Density], ...] = (
    (Sortedness.SORTED, Density.SPARSE),
    (Sortedness.SORTED, Density.DENSE),
    (Sortedness.UNSORTED, Density.SPARSE),
    (Sortedness.UNSORTED, Density.DENSE),
)


@dataclass(frozen=True)
class GroupingDataset:
    """One generated grouping dataset plus its ground-truth metadata."""

    #: the grouping key column values.
    keys: np.ndarray
    #: per-row payload values (what SUM aggregates).
    payload: np.ndarray
    #: requested and realised number of groups.
    num_groups: int
    sortedness: Sortedness
    density: Density

    @property
    def num_rows(self) -> int:
        """Number of rows in the dataset."""
        return int(self.keys.size)

    def to_table(self) -> Table:
        """Materialise as a two-column table ``(key, value)``."""
        return Table(
            [
                Column("key", self.keys, DataType.INT64),
                Column("value", self.payload, DataType.INT64),
            ]
        )


def make_grouping_dataset(
    n: int,
    num_groups: int,
    sortedness: Sortedness = Sortedness.UNSORTED,
    density: Density = Density.DENSE,
    sparse_spread: int = 1000,
    seed: int = 0,
) -> GroupingDataset:
    """Generate one of the four §4.1 datasets at the requested scale.

    :param n: number of rows (paper: 100,000,000; our default benchmarks
        use 2,000,000 — see DESIGN.md substitution #2).
    :param num_groups: exact number of distinct grouping keys.
    :param sortedness: globally sorted or randomly permuted.
    :param density: dense domain ``0..num_groups-1`` or a sparse domain
        dilated by ``sparse_spread`` (order-preservingly, so sortedness
        is independent of density, as in the paper's 2x2 grid).
    :param sparse_spread: domain dilation factor for sparse datasets.
    :param seed: RNG seed; equal seeds give equal datasets.
    """
    if num_groups < 1:
        raise DataGenError(f"num_groups must be >= 1, got {num_groups}")
    if num_groups > n:
        raise DataGenError(
            f"num_groups ({num_groups}) cannot exceed n ({n})"
        )
    rng = np.random.default_rng(seed)
    keys = uniform_keys(n, num_groups, rng)
    if sortedness is Sortedness.SORTED:
        keys.sort()
    if density is Density.SPARSE:
        keys = sparsify(keys, sparse_spread, rng)
    payload = rng.integers(0, 1000, size=n, dtype=np.int64)
    return GroupingDataset(
        keys=keys,
        payload=payload,
        num_groups=num_groups,
        sortedness=sortedness,
        density=density,
    )


def figure4_datasets(
    n: int, num_groups: int, sparse_spread: int = 1000, seed: int = 0
) -> dict[tuple[Sortedness, Density], GroupingDataset]:
    """All four Figure 4 datasets for one (n, num_groups) point."""
    return {
        (sortedness, density): make_grouping_dataset(
            n,
            num_groups,
            sortedness=sortedness,
            density=density,
            sparse_spread=sparse_spread,
            seed=seed,
        )
        for sortedness, density in FIGURE4_GRID
    }
