"""Generator for the §4.3 foreign-key join + grouping scenario.

The paper's query::

    SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A;

with *"the output-size of the join to be 90,000 because of the foreign-key
constraint and the [grouping] output-size to be 20,000"*. |R| is not stated;
DESIGN.md substitution #4 reconstructs |R| = 45,000 from the published
improvement factors.

The generated data makes the paper's implicit assumptions true by
construction (DESIGN.md substitution #5):

* ``S.R_ID`` is a foreign key into ``R.ID`` — every S row matches exactly
  one R row, so |join output| = |S|.
* ``R.A`` is monotone in ``R.ID`` (FK-correlation assumption), so a join
  output ordered by ``R.ID`` is also ordered by ``R.A`` and order-based
  grouping applies downstream of an order-preserving join.
* In the *dense* configuration both ``R.ID`` and ``R.A`` use gap-free
  domains; in the *sparse* configuration both are dilated order-preservingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.distributions import sparsify
from repro.datagen.grouping import Density, Sortedness
from repro.errors import DataGenError
from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.column import Column
from repro.storage.dtypes import DataType
from repro.storage.table import Table

#: Cardinalities of the paper's §4.3 scenario (|R| reconstructed).
PAPER_R_ROWS = 45_000
PAPER_S_ROWS = 90_000
PAPER_NUM_GROUPS = 20_000


@dataclass(frozen=True)
class JoinScenario:
    """Generated R and S tables plus their configuration."""

    r: Table
    s: Table
    num_groups: int
    r_sortedness: Sortedness
    s_sortedness: Sortedness
    density: Density

    def build_catalog(self) -> Catalog:
        """A catalog with R, S, and the S.R_ID -> R.ID foreign key."""
        catalog = Catalog()
        catalog.register("R", self.r)
        catalog.register("S", self.s)
        catalog.add_foreign_key(ForeignKey("S", "R_ID", "R", "ID"))
        return catalog


def make_join_scenario(
    n_r: int = PAPER_R_ROWS,
    n_s: int = PAPER_S_ROWS,
    num_groups: int = PAPER_NUM_GROUPS,
    r_sortedness: Sortedness = Sortedness.SORTED,
    s_sortedness: Sortedness = Sortedness.SORTED,
    density: Density = Density.DENSE,
    sparse_spread: int = 1000,
    seed: int = 0,
) -> JoinScenario:
    """Generate one configuration of the §4.3 scenario.

    R has columns ``ID`` (key, unique) and ``A`` (grouping attribute,
    ``num_groups`` distinct values, monotone in ``ID``); S has ``R_ID``
    (FK into R) and a payload ``B``.

    Sortedness of R means R is stored ordered by ``ID``; sortedness of S
    means S is stored ordered by ``R_ID``.
    """
    if num_groups > n_r:
        raise DataGenError(
            f"num_groups ({num_groups}) cannot exceed |R| ({n_r})"
        )
    rng = np.random.default_rng(seed)

    # R.ID: unique keys 0..n_r-1 (dense) or dilated (sparse).
    r_id_sorted = np.arange(n_r, dtype=np.int64)
    # R.A monotone in R.ID: non-decreasing group labels over R's ID order,
    # covering each of the num_groups values at least once.
    r_a_sorted = np.sort(
        np.concatenate(
            [
                np.arange(num_groups, dtype=np.int64),
                rng.integers(0, num_groups, size=n_r - num_groups, dtype=np.int64),
            ]
        )
    )
    if density is Density.SPARSE:
        r_id_sorted = sparsify(r_id_sorted, sparse_spread, rng)
        r_a_sorted = sparsify(r_a_sorted, sparse_spread, rng)

    # S.R_ID: uniform FK references, stored sorted or shuffled.
    s_ref_positions = rng.integers(0, n_r, size=n_s, dtype=np.int64)
    s_rid = r_id_sorted[s_ref_positions]
    s_rid.sort()
    if s_sortedness is Sortedness.UNSORTED:
        rng.shuffle(s_rid)
    s_b = rng.integers(0, 1000, size=n_s, dtype=np.int64)

    # Store R sorted by ID, or under a random row permutation.
    if r_sortedness is Sortedness.SORTED:
        r_id, r_a = r_id_sorted, r_a_sorted
    else:
        perm = rng.permutation(n_r)
        r_id, r_a = r_id_sorted[perm], r_a_sorted[perm]

    r = Table(
        [
            Column("ID", r_id, DataType.INT64),
            Column("A", r_a, DataType.INT64),
        ]
    )
    s = Table(
        [
            Column("R_ID", s_rid, DataType.INT64),
            Column("B", s_b, DataType.INT64),
        ]
    )
    return JoinScenario(
        r=r,
        s=s,
        num_groups=num_groups,
        r_sortedness=r_sortedness,
        s_sortedness=s_sortedness,
        density=density,
    )
