"""Workload generator for the Algorithmic View Selection experiments.

The AVSP (§3, §6) is *"absolutely workload-dependent"*. This module
generates synthetic workloads over a shared pool of table profiles: each
query references pool tables, so a materialised Algorithmic View on one
table can pay off across many queries — without sharing, AVSP degenerates
to per-query caching and the selection problem disappears.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataGenError


@dataclass(frozen=True)
class TableProfile:
    """The optimiser-visible shape of one pool table.

    ``key_*`` describe the table's join/group key column; the abstract
    AVSP cost evaluation needs nothing else.
    """

    name: str
    rows: int
    key_sorted: bool
    key_dense: bool
    key_distinct: int

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise DataGenError(f"rows must be >= 1, got {self.rows}")
        if not 1 <= self.key_distinct <= self.rows:
            raise DataGenError(
                f"key_distinct must be in [1, rows={self.rows}], got "
                f"{self.key_distinct}"
            )


class QueryShape(enum.Enum):
    """The two query templates the paper's experiments use."""

    #: a single GROUP BY over one table.
    GROUPING = "grouping"
    #: the §4.3 shape: FK join (build = left) followed by GROUP BY on a
    #: build-side attribute.
    JOIN_GROUPING = "join_grouping"


@dataclass(frozen=True)
class WorkloadQuery:
    """One query of a workload: pool tables plus an execution frequency."""

    shape: QueryShape
    #: grouping input (GROUPING) or join build side (JOIN_GROUPING).
    left: TableProfile
    #: join probe side; None for pure grouping queries.
    right: TableProfile | None
    #: relative execution frequency (weight in the AVSP objective).
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if self.shape is QueryShape.JOIN_GROUPING and self.right is None:
            raise DataGenError("JOIN_GROUPING queries need a right table")
        if self.frequency <= 0:
            raise DataGenError(
                f"frequency must be > 0, got {self.frequency}"
            )


@dataclass
class Workload:
    """A table pool plus an ordered collection of weighted queries."""

    tables: list[TableProfile] = field(default_factory=list)
    queries: list[WorkloadQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    @property
    def total_frequency(self) -> float:
        """Sum of query frequencies."""
        return sum(query.frequency for query in self.queries)


def make_workload(
    num_tables: int = 8,
    num_queries: int = 30,
    sorted_fraction: float = 0.4,
    dense_fraction: float = 0.5,
    join_fraction: float = 0.6,
    min_rows: int = 10_000,
    max_rows: int = 200_000,
    min_groups: int = 100,
    max_groups: int = 40_000,
    zipf_frequency_skew: float = 1.0,
    seed: int = 0,
) -> Workload:
    """Generate a random pool-based workload.

    :param num_tables: size of the shared table pool.
    :param num_queries: number of queries drawn over the pool.
    :param sorted_fraction: probability a pool table is stored key-sorted.
    :param dense_fraction: probability a pool table's key domain is dense.
    :param join_fraction: probability a query is join+grouping.
    :param min_rows: smallest table cardinality.
    :param max_rows: largest table cardinality.
    :param min_groups: smallest key NDV.
    :param max_groups: largest key NDV (clamped to the table size).
    :param zipf_frequency_skew: skew of query frequencies (0 = uniform).
    :param seed: RNG seed.
    """
    if num_tables < 1:
        raise DataGenError(f"num_tables must be >= 1, got {num_tables}")
    if num_queries < 1:
        raise DataGenError(f"num_queries must be >= 1, got {num_queries}")
    if min_rows > max_rows:
        raise DataGenError(
            f"min_rows ({min_rows}) must be <= max_rows ({max_rows})"
        )
    if min_groups > max_groups:
        raise DataGenError(
            f"min_groups ({min_groups}) must be <= max_groups ({max_groups})"
        )
    rng = np.random.default_rng(seed)
    tables = []
    for index in range(num_tables):
        rows = int(rng.integers(min_rows, max_rows + 1))
        tables.append(
            TableProfile(
                name=f"T{index}",
                rows=rows,
                key_sorted=bool(rng.random() < sorted_fraction),
                key_dense=bool(rng.random() < dense_fraction),
                key_distinct=int(
                    rng.integers(min_groups, min(max_groups, rows) + 1)
                ),
            )
        )

    ranks = np.arange(1, num_queries + 1, dtype=np.float64)
    weights = (
        ranks**-zipf_frequency_skew
        if zipf_frequency_skew > 0
        else np.ones_like(ranks)
    )
    frequencies = weights / weights.sum() * num_queries
    rng.shuffle(frequencies)

    queries = []
    for index in range(num_queries):
        is_join = rng.random() < join_fraction and num_tables >= 2
        left = tables[int(rng.integers(0, num_tables))]
        if is_join:
            right = left
            while right is left:
                right = tables[int(rng.integers(0, num_tables))]
            shape = QueryShape.JOIN_GROUPING
        else:
            right = None
            shape = QueryShape.GROUPING
        queries.append(
            WorkloadQuery(
                shape=shape,
                left=left,
                right=right,
                frequency=float(frequencies[index]),
            )
        )
    return Workload(tables=tables, queries=queries)
