"""Star-schema generator for the "large queries" experiments.

The research agenda (§6, "Revisit SQO Algorithms") expects DQO to be
extended to larger queries the way SQO was. This generator produces a
star schema — one fact table with foreign keys into ``k`` dimension
tables, each dimension with its own sortedness/density configuration —
plus the corresponding multi-join SQL, so the DP's n-way enumeration can
be exercised and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.distributions import sparsify
from repro.datagen.grouping import Density, Sortedness
from repro.errors import DataGenError
from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.column import Column
from repro.storage.dtypes import DataType
from repro.storage.table import Table


@dataclass(frozen=True)
class DimensionSpec:
    """Configuration of one dimension table."""

    rows: int
    num_groups: int
    sortedness: Sortedness = Sortedness.SORTED
    density: Density = Density.DENSE


@dataclass
class StarScenario:
    """A generated star schema: fact table + dimensions + metadata."""

    fact: Table
    dimensions: list[Table] = field(default_factory=list)
    specs: list[DimensionSpec] = field(default_factory=list)

    @property
    def num_dimensions(self) -> int:
        """Number of dimension tables."""
        return len(self.dimensions)

    def build_catalog(self) -> Catalog:
        """Catalog with FACT, D0..Dk-1, and all FK constraints."""
        catalog = Catalog()
        catalog.register("FACT", self.fact)
        for index, dimension in enumerate(self.dimensions):
            catalog.register(f"D{index}", dimension)
        for index in range(self.num_dimensions):
            catalog.add_foreign_key(
                ForeignKey("FACT", f"D{index}_ID", f"D{index}", "ID")
            )
        return catalog

    def join_query(self, group_dimension: int = 0) -> str:
        """The star-join SQL: FACT joined to every dimension, grouped by
        one dimension's attribute."""
        if not 0 <= group_dimension < self.num_dimensions:
            raise DataGenError(
                f"group_dimension must be in [0, {self.num_dimensions})"
            )
        # FROM D<g> JOIN FACT ON ..., then the remaining dimensions joined
        # via the fact's FK columns. The grouped dimension comes first so
        # the join tree builds on it (the §4.3 convention).
        clauses = [f"FROM D{group_dimension}"]
        clauses.append(
            f"JOIN FACT ON D{group_dimension}.ID = FACT.D{group_dimension}_ID"
        )
        for index in range(self.num_dimensions):
            if index == group_dimension:
                continue
            clauses.append(f"JOIN D{index} ON FACT.D{index}_ID = D{index}.ID")
        return (
            f"SELECT D{group_dimension}.A, COUNT(*) "
            + " ".join(clauses)
            + f" GROUP BY D{group_dimension}.A"
        )


def make_star_scenario(
    fact_rows: int = 50_000,
    dimensions: list[DimensionSpec] | None = None,
    fact_sorted_on: int | None = 0,
    seed: int = 0,
) -> StarScenario:
    """Generate a star schema.

    :param fact_rows: rows of the fact table.
    :param dimensions: per-dimension configurations; defaults to three
        mixed-property dimensions.
    :param fact_sorted_on: index of the dimension whose FK column the
        fact table is stored sorted by (None: random order).
    :param seed: RNG seed.
    """
    if dimensions is None:
        dimensions = [
            DimensionSpec(rows=5_000, num_groups=500),
            DimensionSpec(
                rows=8_000,
                num_groups=800,
                sortedness=Sortedness.UNSORTED,
            ),
            DimensionSpec(
                rows=3_000,
                num_groups=300,
                density=Density.SPARSE,
            ),
        ]
    if fact_sorted_on is not None and not 0 <= fact_sorted_on < len(dimensions):
        raise DataGenError(
            f"fact_sorted_on must be in [0, {len(dimensions)}), got "
            f"{fact_sorted_on}"
        )
    rng = np.random.default_rng(seed)
    dimension_tables = []
    fact_fk_columns: dict[str, np.ndarray] = {}
    for index, spec in enumerate(dimensions):
        if spec.num_groups > spec.rows:
            raise DataGenError(
                f"dimension {index}: num_groups ({spec.num_groups}) exceeds "
                f"rows ({spec.rows})"
            )
        ids = np.arange(spec.rows, dtype=np.int64)
        attributes = np.sort(
            np.concatenate(
                [
                    np.arange(spec.num_groups, dtype=np.int64),
                    rng.integers(
                        0,
                        spec.num_groups,
                        size=spec.rows - spec.num_groups,
                        dtype=np.int64,
                    ),
                ]
            )
        )
        if spec.density is Density.SPARSE:
            ids = sparsify(ids, 1000, rng)
            attributes = sparsify(attributes, 1000, rng)
        if spec.sortedness is Sortedness.UNSORTED:
            perm = rng.permutation(spec.rows)
            ids, attributes = ids[perm], attributes[perm]
        dimension_tables.append(
            Table(
                [
                    Column("ID", ids, DataType.INT64),
                    Column("A", attributes, DataType.INT64),
                ]
            )
        )
        references = rng.integers(0, spec.rows, size=fact_rows, dtype=np.int64)
        fact_fk_columns[f"D{index}_ID"] = ids[references]
    if fact_sorted_on is not None:
        order = np.argsort(
            fact_fk_columns[f"D{fact_sorted_on}_ID"], kind="stable"
        )
        fact_fk_columns = {
            name: values[order] for name, values in fact_fk_columns.items()
        }
    fact_fk_columns["M"] = rng.integers(0, 1_000, size=fact_rows, dtype=np.int64)
    fact = Table.from_arrays(fact_fk_columns)
    return StarScenario(
        fact=fact, dimensions=dimension_tables, specs=list(dimensions)
    )
