"""Internal utilities shared across the ``repro`` package.

Nothing in here is part of the public API; import from the concrete
submodules (:mod:`repro._util.validation`, :mod:`repro._util.timer`,
:mod:`repro._util.arrays`) inside the library only.
"""

from repro._util.arrays import as_int_array, is_nondecreasing
from repro._util.timer import Timer, time_callable
from repro._util.validation import check_positive, check_probability, check_type

__all__ = [
    "Timer",
    "as_int_array",
    "check_positive",
    "check_probability",
    "check_type",
    "is_nondecreasing",
    "time_callable",
]
