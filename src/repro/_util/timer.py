"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable


class Timer:
    """A context manager measuring elapsed wall-clock time in seconds.

    Usage::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0


@dataclass
class TimingResult:
    """Aggregated repeated-measurement result for one callable."""

    #: per-repetition wall-clock seconds, in execution order.
    samples: list[float] = field(default_factory=list)
    #: the value returned by the final invocation (for validation).
    last_result: Any = None

    @property
    def best(self) -> float:
        """Minimum sample in seconds — the conventional micro-benchmark stat."""
        return min(self.samples)

    @property
    def best_ms(self) -> float:
        """Minimum sample in milliseconds."""
        return self.best * 1000.0

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples in seconds."""
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        """Median sample in seconds (midpoint average for even counts)."""
        ordered = sorted(self.samples)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    @property
    def p95(self) -> float:
        """95th-percentile sample in seconds (nearest-rank method).

        With fewer than 20 samples the nearest rank is the maximum —
        use enough repeats for a meaningful tail estimate.
        """
        ordered = sorted(self.samples)
        rank = math.ceil(0.95 * len(ordered))
        return ordered[max(rank, 1) - 1]


def time_callable(
    fn: Callable[[], Any], repeats: int = 3, warmup: int = 1
) -> TimingResult:
    """Measure ``fn`` ``repeats`` times after ``warmup`` unmeasured calls.

    :param fn: zero-argument callable to measure.
    :param repeats: number of measured invocations (must be >= 1).
    :param warmup: number of unmeasured invocations run first.
    :returns: a :class:`TimingResult` with all samples and the last result.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    result = TimingResult()
    for _ in range(repeats):
        with Timer() as timer:
            value = fn()
        result.samples.append(timer.elapsed)
        result.last_result = value
    return result
