"""numpy array helpers shared by storage, kernels, and statistics."""

from __future__ import annotations

from typing import Iterable

import numpy as np


def as_int_array(values: Iterable[int] | np.ndarray, dtype: type = np.int64) -> np.ndarray:
    """Convert ``values`` to a 1-D integer numpy array.

    Accepts any iterable of ints or an existing integer array (which is
    returned converted, never aliased into a different dtype silently).

    :raises ValueError: if the result would not be 1-D or not integral.
    """
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {array.shape}")
    if array.size and not np.issubdtype(array.dtype, np.integer):
        if not np.issubdtype(array.dtype, np.floating):
            raise ValueError(f"expected integer data, got dtype {array.dtype}")
        rounded = np.rint(array)
        if not np.array_equal(rounded, array):
            raise ValueError("expected integer data, got non-integral floats")
        array = rounded
    return array.astype(dtype, copy=False)


def is_nondecreasing(array: np.ndarray) -> bool:
    """True when ``array`` is sorted in non-decreasing order.

    Empty and single-element arrays count as sorted.
    """
    if array.size <= 1:
        return True
    return bool(np.all(array[:-1] <= array[1:]))


def runs_of(array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (run start offsets, run values) of consecutive equal elements.

    For ``[3, 3, 5, 5, 5, 3]`` this returns ``([0, 2, 5], [3, 5, 3])``.
    Used by order-based grouping and by run-length encoding.
    """
    if array.size == 0:
        return np.empty(0, dtype=np.int64), array.copy()
    change = np.empty(array.size, dtype=bool)
    change[0] = True
    np.not_equal(array[1:], array[:-1], out=change[1:])
    starts = np.flatnonzero(change).astype(np.int64)
    return starts, array[starts]
