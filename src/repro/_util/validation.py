"""Small argument-validation helpers.

These keep validation one-liners readable at call sites and guarantee
consistent error types (:class:`ValueError`/:class:`TypeError`) and messages
across the package.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float, allow_zero: bool = False) -> None:
    """Raise :class:`ValueError` unless ``value`` is positive.

    :param name: parameter name used in the error message.
    :param value: the numeric value to check.
    :param allow_zero: when true, zero passes the check.
    """
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
