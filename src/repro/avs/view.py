"""Algorithmic Views (§3).

An Algorithmic View is a *precomputed granule*: not a precomputed query
result (that is a materialised view) but a precomputed piece of an
algorithm — a hash table already built, a perfect-hash array already laid
out, a sorted key directory, a sorted projection. §3: *"AVs can be
precomputed for any level, not only 'physical' operators. Like that AVs
can be used as building blocks for DQO at query time."*

Six concrete kinds are materialisable here, one per substrate; the
:class:`~repro.core.granularity.Granularity` tag records which Table 1
level the precomputed granule lives at.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.core.granularity import Granularity
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.errors import PreconditionError, ViewError
from repro.indexes.hash_table import OpenAddressingHashTable
from repro.indexes.perfect_hash import StaticPerfectHash
from repro.indexes.sorted_array import SortedKeyIndex
from repro.storage.catalog import Catalog
from repro.storage.dictionary import DictionaryEncoded, dictionary_encode_column
from repro.storage.table import Table


class ViewKind(enum.Enum):
    """The materialisable Algorithmic View kinds."""

    #: a hash table over a column — waives HJ's build phase.
    HASH_TABLE = "hash_table"
    #: a static-perfect-hash array — waives SPHJ/SPHG builds (dense only).
    SPH_ARRAY = "sph_array"
    #: a sorted distinct-key directory — waives BSJ/BSG directory builds.
    SORTED_KEYS = "sorted_keys"
    #: a sorted copy of the table — order for free (an "index view").
    SORTED_PROJECTION = "sorted_projection"
    #: a dictionary-encoded copy of the table: the column's values become
    #: dense codes 0..NDV-1, making SPH applicable on a sparse domain —
    #: §2.1's "the keys of a dictionary-compressed column are a natural
    #: candidate for [SPH] and can directly be used".
    DICTIONARY = "dictionary"
    #: an unclustered B+-tree from column values to row positions — §1's
    #: access-path alternative ("unclustered B-tree vs scan").
    BTREE = "btree"


#: Table 1 level of the granule each kind precomputes.
VIEW_GRANULARITY: dict[ViewKind, Granularity] = {
    ViewKind.HASH_TABLE: Granularity.MACROMOLECULE,
    ViewKind.SPH_ARRAY: Granularity.MACROMOLECULE,
    ViewKind.SORTED_KEYS: Granularity.MACROMOLECULE,
    ViewKind.SORTED_PROJECTION: Granularity.ORGANELLE,
    ViewKind.DICTIONARY: Granularity.MACROMOLECULE,
    ViewKind.BTREE: Granularity.MACROMOLECULE,
}


@dataclass(frozen=True)
class AlgorithmicView:
    """One materialised Algorithmic View."""

    kind: ViewKind
    table_name: str
    column: str
    #: offline construction cost in cost-model units (the AVSP budget
    #: currency).
    build_cost: float
    #: the actual precomputed structure; None for cost-only (planning)
    #: views used by the abstract AVSP evaluation.
    artifact: object = None

    @property
    def granularity(self) -> Granularity:
        """Which Table 1 level this view precomputes."""
        return VIEW_GRANULARITY[self.kind]

    @property
    def key(self) -> tuple[str, str, str]:
        """Registry key: (kind value, table, column)."""
        return (self.kind.value, self.table_name, self.column)

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"AV[{self.kind.value}]({self.table_name}.{self.column}) "
            f"level={self.granularity.name} build_cost={self.build_cost:,.0f}"
        )


def build_cost_of(
    kind: ViewKind,
    rows: float,
    num_distinct: float,
    cost_model: CostModel | None = None,
) -> float:
    """Offline construction cost of a view kind, per the cost model's
    build-phase accounting."""
    cost_model = cost_model or PaperCostModel()
    if kind is ViewKind.HASH_TABLE:
        return cost_model.join_build_cost(JoinAlgorithm.HJ, rows, 0.0, num_distinct)
    if kind is ViewKind.SPH_ARRAY:
        return cost_model.join_build_cost(
            JoinAlgorithm.SPHJ, rows, 0.0, num_distinct
        )
    if kind is ViewKind.SORTED_KEYS:
        return cost_model.join_build_cost(JoinAlgorithm.BSJ, rows, 0.0, num_distinct)
    if kind is ViewKind.SORTED_PROJECTION:
        return cost_model.sort_cost(rows)
    if kind is ViewKind.DICTIONARY:
        # Sort-based dictionary construction + one encoding pass.
        return cost_model.sort_cost(rows) + rows
    if kind is ViewKind.BTREE:
        # Sort-based bottom-up bulkload.
        return cost_model.sort_cost(rows) + rows
    raise ViewError(f"unknown view kind {kind!r}")


def materialize_view(
    catalog: Catalog,
    kind: ViewKind,
    table_name: str,
    column: str,
    cost_model: CostModel | None = None,
) -> AlgorithmicView:
    """Actually build a view's artifact from catalog data.

    :raises ViewError: for an SPH view over a sparse domain (the §2.1
        applicability precondition).
    """
    table = catalog.table(table_name)
    values = table[column]
    stats = table.column(column).statistics
    cost = build_cost_of(kind, table.num_rows, stats.distinct, cost_model)
    if kind is ViewKind.HASH_TABLE:
        hash_table = OpenAddressingHashTable(max(stats.distinct, 1))
        if values.size:
            hash_table.build(values)
        artifact: object = hash_table
    elif kind is ViewKind.SPH_ARRAY:
        try:
            artifact = StaticPerfectHash.for_keys(values)
        except PreconditionError as error:
            raise ViewError(
                f"cannot materialise SPH view on {table_name}.{column}: "
                f"{error}"
            ) from error
    elif kind is ViewKind.SORTED_KEYS:
        artifact = SortedKeyIndex.from_values(values)
    elif kind is ViewKind.SORTED_PROJECTION:
        artifact = table.sort_by([column])
    elif kind is ViewKind.DICTIONARY:
        artifact = DictionaryViewArtifact.build(table, column)
    elif kind is ViewKind.BTREE:
        from repro.engine.operators.index_scan import build_row_index

        artifact = build_row_index(table, column)
    else:
        raise ViewError(f"unknown view kind {kind!r}")
    return AlgorithmicView(
        kind=kind,
        table_name=table_name,
        column=column,
        build_cost=cost,
        artifact=artifact,
    )


@dataclass(frozen=True)
class DictionaryViewArtifact:
    """A dictionary view's payload: the re-encoded table plus the codec.

    ``encoded_table`` is the source table with ``column`` replaced by its
    dense, order-preserving dictionary codes; ``encoding`` maps codes back
    to original values (used by the decode step the optimiser plants
    after a group-by over the encoded column).
    """

    column: str
    encoded_table: Table
    encoding: DictionaryEncoded

    @classmethod
    def build(cls, table: Table, column: str) -> "DictionaryViewArtifact":
        """Encode ``table``'s ``column`` and assemble the artifact."""
        code_column, encoding = dictionary_encode_column(table.column(column))
        replaced = [
            code_column if existing.name == column else existing
            for existing in table.columns()
        ]
        return cls(
            column=column, encoded_table=Table(replaced), encoding=encoding
        )
