"""Runtime-adaptive Algorithmic Views (§6).

*"In the DQO universe a (meta-)adaptive index is simply a partial AV where
some optimisation decisions have been delegated to query time and baked
into that AV."*

:class:`AdaptiveIndexView` delegates the "how sorted should this column
be?" decision to the workload itself: backed by a cracking index
(:mod:`repro.indexes.cracking`), every range query refines the physical
order a little. The view tracks its own convergence and can *promote*
itself to a full sorted-projection Algorithmic View once the column has
effectively become sorted — the continuous indexing decision of §6 made
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.avs.registry import AVRegistry
from repro.avs.view import AlgorithmicView, ViewKind
from repro.indexes.cracking import CrackedColumn
from repro.storage.catalog import Catalog


@dataclass
class AdaptiveQueryLog:
    """Per-query convergence record."""

    query_index: int
    low: int
    high: int
    result_rows: int
    pieces_after: int
    sortedness_after: float


class AdaptiveIndexView:
    """A partial AV over one column whose remaining decisions are made by
    the incoming queries (database cracking)."""

    #: sortedness fraction above which the view considers itself converged.
    PROMOTION_THRESHOLD = 0.999

    def __init__(self, catalog: Catalog, table_name: str, column: str) -> None:
        self._table_name = table_name
        self._column = column
        self._cracked = CrackedColumn(catalog.table(table_name)[column])
        self._log: list[AdaptiveQueryLog] = []

    @property
    def table_name(self) -> str:
        """The indexed table."""
        return self._table_name

    @property
    def column(self) -> str:
        """The indexed column."""
        return self._column

    @property
    def log(self) -> list[AdaptiveQueryLog]:
        """Per-query convergence log."""
        return list(self._log)

    @property
    def crack_count(self) -> int:
        """Total partitioning work performed so far."""
        return self._cracked.crack_count

    def range_query(self, low: int, high: int) -> np.ndarray:
        """Answer a range query, adapting (cracking) as a side effect."""
        result = self._cracked.range_query(low, high)
        self._log.append(
            AdaptiveQueryLog(
                query_index=len(self._log),
                low=low,
                high=high,
                result_rows=int(result.size),
                pieces_after=self._cracked.num_pieces,
                sortedness_after=self._cracked.sortedness_fraction(),
            )
        )
        return result

    def sortedness(self) -> float:
        """Current convergence measure in [0, 1]."""
        return self._cracked.sortedness_fraction()

    def is_converged(self) -> bool:
        """Has the column effectively become sorted?"""
        return self.sortedness() >= self.PROMOTION_THRESHOLD

    def promote(self, registry: AVRegistry) -> AlgorithmicView | None:
        """If converged, register the (now sorted) column as a full
        sorted-projection AV and return it; otherwise return None.

        The promoted view's build cost is zero: the workload already paid
        for the sorting, crack by crack — the adaptive-indexing bargain.
        """
        if not self.is_converged():
            return None
        view = AlgorithmicView(
            kind=ViewKind.SORTED_PROJECTION,
            table_name=self._table_name,
            column=self._column,
            build_cost=0.0,
            artifact=np.sort(np.asarray(self._cracked.values())),
        )
        if not registry.has_view(
            ViewKind.SORTED_PROJECTION, self._table_name, self._column
        ):
            registry.add(view)
        return view
