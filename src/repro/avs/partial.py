"""Partial Algorithmic Views (§6).

*"Rather than fully materialising parts of a deep query plan into an AV,
or ... not materialising it at all, there is an interesting middle-ground:
it makes sense to partially optimise an AV offline and leave some
flexibility for DQO at query time."*

A :class:`PartialAlgorithmicView` freezes the decisions of a recipe down
to a chosen granularity level offline; the decisions below stay open for
query time. The measurable effect is the shrunken query-time enumeration
space — :meth:`query_time_recipes` vs optimising from scratch — which the
``bench_unnesting`` ablation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.granularity import Granularity
from repro.core.physiological import (
    Granule,
    enumerate_prefixes,
    enumerate_recipes,
    logical_grouping,
)
from repro.errors import ViewError


@dataclass(frozen=True)
class PartialAlgorithmicView:
    """A recipe frozen down to ``bound_level``; deeper decisions are open.

    ``prefix`` is the partially expanded/bound granule tree chosen
    offline. Query-time completion enumerates only its remaining open
    decisions.
    """

    name: str
    prefix: Granule
    bound_level: Granularity

    def query_time_recipes(
        self, max_level: Granularity = Granularity.MOLECULE
    ) -> list[Granule]:
        """The complete recipes still reachable at query time."""
        return enumerate_recipes(self.prefix, max_level)

    def query_time_choices(
        self, max_level: Granularity = Granularity.MOLECULE
    ) -> int:
        """Number of query-time alternatives left open."""
        return len(self.query_time_recipes(max_level))

    def describe(self) -> str:
        """Human-readable summary with the frozen prefix."""
        return (
            f"PartialAV({self.name}, bound to {self.bound_level.name}, "
            f"{self.query_time_choices()} query-time completions)\n"
            + self.prefix.explain(indent=1)
        )


def bind_offline(
    seed: Granule | None = None,
    bound_level: Granularity = Granularity.MACROMOLECULE,
    pick_index: int = 0,
    name: str = "grouping",
) -> PartialAlgorithmicView:
    """Create a partial AV by committing offline to one alternative at
    every decision down to ``bound_level``.

    :param seed: the logical granule to start from; defaults to Γ.
    :param bound_level: how deep the offline commitment goes.
    :param pick_index: which alternative to commit to at the bound level
        (index into the offline enumeration, e.g. 0 = the textbook hash
        path).
    :raises ViewError: when ``pick_index`` is out of range.
    """
    seed = seed or logical_grouping()
    offline_alternatives = enumerate_prefixes(seed, bound_level)
    if not 0 <= pick_index < len(offline_alternatives):
        raise ViewError(
            f"pick_index {pick_index} out of range "
            f"[0, {len(offline_alternatives)})"
        )
    return PartialAlgorithmicView(
        name=name,
        prefix=offline_alternatives[pick_index],
        bound_level=bound_level,
    )


def enumeration_savings(
    partial: PartialAlgorithmicView,
    max_level: Granularity = Granularity.MOLECULE,
) -> tuple[int, int]:
    """(from-scratch alternatives, query-time alternatives) — the partial
    AV's enumeration-work saving."""
    from_scratch = len(enumerate_recipes(logical_grouping(), max_level))
    return from_scratch, partial.query_time_choices(max_level)
