"""The Algorithmic View registry: what has been materialised.

The optimiser consults the registry through two narrow methods —
:meth:`AVRegistry.sorted_scan_columns` (which tables have order for free)
and :meth:`AVRegistry.has_view` (which build phases are waived) — so the
registry stays decoupled from the DP internals.
"""

from __future__ import annotations

from repro.avs.view import AlgorithmicView, ViewKind
from repro.errors import ViewError


class AVRegistry:
    """A set of materialised Algorithmic Views, keyed by
    (kind, table, column)."""

    def __init__(self, views: list[AlgorithmicView] | None = None) -> None:
        self._views: dict[tuple[str, str, str], AlgorithmicView] = {}
        for view in views or []:
            self.add(view)

    def add(self, view: AlgorithmicView) -> None:
        """Register a view.

        :raises ViewError: on a duplicate (kind, table, column).
        """
        if view.key in self._views:
            raise ViewError(f"duplicate view {view.describe()}")
        self._views[view.key] = view

    def remove(self, kind: ViewKind, table_name: str, column: str) -> None:
        """Drop a view.

        :raises ViewError: if absent.
        """
        key = (kind.value, table_name, column)
        if key not in self._views:
            raise ViewError(f"no view {key}")
        del self._views[key]

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self):
        return iter(self._views.values())

    def has_view(self, kind: str | ViewKind, table_name: str, column: str) -> bool:
        """Is a (kind, table, column) view materialised? Accepts the kind
        as the enum or its string value (the optimiser passes strings to
        avoid importing this package)."""
        kind_value = kind.value if isinstance(kind, ViewKind) else kind
        return (kind_value, table_name, column) in self._views

    def get(
        self, kind: str | ViewKind, table_name: str, column: str
    ) -> AlgorithmicView:
        """Fetch a view.

        :raises ViewError: if absent.
        """
        kind_value = kind.value if isinstance(kind, ViewKind) else kind
        key = (kind_value, table_name, column)
        if key not in self._views:
            raise ViewError(f"no view {key}")
        return self._views[key]

    def sorted_scan_columns(self, table_name: str) -> list[str]:
        """Columns of ``table_name`` with a sorted-projection view."""
        return [
            view.column
            for view in self._views.values()
            if view.kind is ViewKind.SORTED_PROJECTION
            and view.table_name == table_name
        ]

    def btree_scan_columns(self, table_name: str) -> list[str]:
        """Columns of ``table_name`` with an unclustered B-tree view."""
        return [
            view.column
            for view in self._views.values()
            if view.kind is ViewKind.BTREE and view.table_name == table_name
        ]

    def dense_scan_columns(self, table_name: str) -> list[str]:
        """Columns of ``table_name`` with a dictionary view (dense codes)."""
        return [
            view.column
            for view in self._views.values()
            if view.kind is ViewKind.DICTIONARY
            and view.table_name == table_name
        ]

    def total_build_cost(self) -> float:
        """Sum of all registered views' offline build costs."""
        return sum(view.build_cost for view in self._views.values())

    def describe(self) -> str:
        """One line per registered view."""
        if not self._views:
            return "(no algorithmic views)"
        return "\n".join(
            view.describe() for view in sorted(
                self._views.values(), key=lambda v: v.key
            )
        )
