"""Algorithmic Views (§3) and the AV Selection Problem, with partial and
runtime-adaptive variants (§6)."""

from repro.avs.adaptive import AdaptiveIndexView, AdaptiveQueryLog
from repro.avs.partial import (
    PartialAlgorithmicView,
    bind_offline,
    enumeration_savings,
)
from repro.avs.registry import AVRegistry
from repro.avs.selection import (
    CandidateView,
    SelectionResult,
    best_query_cost,
    enumerate_candidates,
    exhaustive_avsp,
    greedy_avsp,
    workload_cost,
)
from repro.avs.view import (
    AlgorithmicView,
    DictionaryViewArtifact,
    ViewKind,
    build_cost_of,
    materialize_view,
)

__all__ = [
    "AVRegistry",
    "AdaptiveIndexView",
    "AdaptiveQueryLog",
    "AlgorithmicView",
    "CandidateView",
    "DictionaryViewArtifact",
    "PartialAlgorithmicView",
    "SelectionResult",
    "ViewKind",
    "best_query_cost",
    "bind_offline",
    "build_cost_of",
    "enumerate_candidates",
    "enumeration_savings",
    "exhaustive_avsp",
    "greedy_avsp",
    "materialize_view",
    "workload_cost",
]
