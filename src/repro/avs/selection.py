"""The Algorithmic View Selection Problem (AVSP), §3.

*"Inspired by the materialized view selection problem, we coin this the
Algorithmic View Selection Problem. And like with MVs there is no need in
AVSP to make any manual decision about which granules to precompute."*

Given a workload (weighted queries over a pool of table profiles) and a
build-cost budget, choose the set of Algorithmic Views minimising total
weighted query cost. Two solvers:

* :func:`greedy_avsp` — iteratively add the view with the best marginal
  benefit per build-cost unit (the classic submodular heuristic);
* :func:`exhaustive_avsp` — exact subset enumeration for small candidate
  sets, used to measure the greedy gap.

Query costs come from :func:`best_query_cost`, a closed-form enumeration
of the same implementation space the real DP searches, specialised to the
workload's two query shapes — fast enough to evaluate thousands of
(subset, workload) combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.avs.view import ViewKind, build_cost_of
from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.datagen.workload import (
    QueryShape,
    TableProfile,
    Workload,
    WorkloadQuery,
)
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.errors import ViewError

#: view selection granule: (kind, table name).
SelectedView = tuple[ViewKind, str]


@dataclass(frozen=True)
class CandidateView:
    """One selectable view with its offline build cost."""

    kind: ViewKind
    table: TableProfile
    build_cost: float

    @property
    def selection(self) -> SelectedView:
        """The (kind, table-name) pair used in selection sets."""
        return (self.kind, self.table.name)

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.kind.value}({self.table.name}) "
            f"build_cost={self.build_cost:,.0f}"
        )


def enumerate_candidates(
    workload: Workload, cost_model: CostModel | None = None
) -> list[CandidateView]:
    """All materialisable views over the workload's table pool.

    SPH views are only offered for dense-key tables (§2.1 applicability).
    """
    cost_model = cost_model or PaperCostModel()
    candidates = []
    for table in workload.tables:
        kinds = [ViewKind.SORTED_PROJECTION, ViewKind.HASH_TABLE, ViewKind.SORTED_KEYS]
        if table.key_dense:
            kinds.append(ViewKind.SPH_ARRAY)
        else:
            # Sparse keys: a dictionary view manufactures density (§2.1).
            kinds.append(ViewKind.DICTIONARY)
        for kind in kinds:
            candidates.append(
                CandidateView(
                    kind=kind,
                    table=table,
                    build_cost=build_cost_of(
                        kind, table.rows, table.key_distinct, cost_model
                    ),
                )
            )
    return candidates


# ---------------------------------------------------------------------------
# Abstract per-query cost under a view selection.
# ---------------------------------------------------------------------------

#: join algorithm -> view kind that waives its build phase.
_JOIN_VIEW = {
    JoinAlgorithm.HJ: ViewKind.HASH_TABLE,
    JoinAlgorithm.SPHJ: ViewKind.SPH_ARRAY,
    JoinAlgorithm.BSJ: ViewKind.SORTED_KEYS,
    JoinAlgorithm.SOJ: ViewKind.SORTED_PROJECTION,
}


def _scan_variants(
    table: TableProfile,
    selected: frozenset[SelectedView],
    cost_model: CostModel,
) -> list[tuple[float, bool]]:
    """(extra cost, sorted) alternatives for reading one table."""
    variants = [(0.0, table.key_sorted)]
    if (ViewKind.SORTED_PROJECTION, table.name) in selected and not table.key_sorted:
        variants.append((0.0, True))
    if not table.key_sorted:
        variants.append((cost_model.sort_cost(table.rows), True))
    return variants


def _grouping_costs(
    rows: float,
    groups: float,
    input_sorted: bool,
    input_dense: bool,
    deep: bool,
    cost_model: CostModel,
    directory_view: bool,
) -> list[float]:
    """Applicable grouping costs over an input stream."""
    costs = [cost_model.grouping_cost(GroupingAlgorithm.HG, rows, groups)]
    costs.append(cost_model.grouping_cost(GroupingAlgorithm.SOG, rows, groups))
    bsg = cost_model.grouping_cost(GroupingAlgorithm.BSG, rows, groups)
    if directory_view:
        bsg -= cost_model.grouping_build_cost(GroupingAlgorithm.BSG, rows, groups)
    costs.append(bsg)
    if input_sorted:
        costs.append(cost_model.grouping_cost(GroupingAlgorithm.OG, rows, groups))
    if deep and input_dense:
        costs.append(
            cost_model.grouping_cost(GroupingAlgorithm.SPHG, rows, groups)
        )
    # Sort enforcer + OG.
    if not input_sorted:
        costs.append(
            cost_model.sort_cost(rows)
            + cost_model.grouping_cost(GroupingAlgorithm.OG, rows, groups)
        )
    return costs


def best_query_cost(
    query: WorkloadQuery,
    selected: frozenset[SelectedView] = frozenset(),
    cost_model: CostModel | None = None,
    deep: bool = True,
) -> float:
    """Cheapest plan cost for one workload query under a view selection.

    Mirrors the DP's implementation space for the two workload shapes;
    ``deep=False`` evaluates the SQO space (no density knowledge).
    """
    cost_model = cost_model or PaperCostModel()
    left = query.left
    if query.shape is QueryShape.GROUPING:
        best = float("inf")
        directory = (ViewKind.SORTED_KEYS, left.name) in selected
        dense = left.key_dense or (ViewKind.DICTIONARY, left.name) in selected
        for scan_cost, is_sorted in _scan_variants(left, selected, cost_model):
            for grouping in _grouping_costs(
                left.rows,
                left.key_distinct,
                is_sorted,
                dense,
                deep,
                cost_model,
                directory,
            ):
                best = min(best, scan_cost + grouping)
        return best

    right = query.right
    assert right is not None
    join_rows = float(right.rows)  # FK semantics: probe side survives
    groups = float(left.key_distinct)
    best = float("inf")
    join_algorithms = [
        JoinAlgorithm.HJ,
        JoinAlgorithm.SOJ,
        JoinAlgorithm.BSJ,
        JoinAlgorithm.OJ,
    ]
    if deep and left.key_dense:
        join_algorithms.append(JoinAlgorithm.SPHJ)
    for build_cost_extra, build_sorted in _scan_variants(
        left, selected, cost_model
    ):
        for probe_cost_extra, probe_sorted in _scan_variants(
            right, selected, cost_model
        ):
            for algorithm in join_algorithms:
                if algorithm is JoinAlgorithm.OJ and not (
                    build_sorted and probe_sorted
                ):
                    continue
                join_cost = cost_model.join_cost(
                    algorithm, left.rows, right.rows, groups
                )
                view_kind = _JOIN_VIEW.get(algorithm)
                # Build-phase credit applies only to an unsorted-scan
                # build side (an enforced sort already changed the input).
                if (
                    view_kind is not None
                    and build_cost_extra == 0.0
                    and (view_kind, left.name) in selected
                ):
                    join_cost -= cost_model.join_build_cost(
                        algorithm, left.rows, right.rows, groups
                    )
                # Output order for the downstream grouping: key-sorted
                # joins always; probe-streaming joins when the probe side
                # is sorted (FK-correlation assumption, DESIGN.md #5).
                if algorithm in (JoinAlgorithm.OJ, JoinAlgorithm.SOJ):
                    output_sorted = True
                else:
                    output_sorted = probe_sorted
                output_dense = deep and (
                    left.key_dense
                    or (ViewKind.DICTIONARY, left.name) in selected
                )
                for grouping in _grouping_costs(
                    join_rows,
                    groups,
                    output_sorted,
                    output_dense,
                    deep,
                    cost_model,
                    directory_view=False,
                ):
                    best = min(
                        best,
                        build_cost_extra
                        + probe_cost_extra
                        + join_cost
                        + grouping,
                    )
    return best


def workload_cost(
    workload: Workload,
    selected: frozenset[SelectedView] = frozenset(),
    cost_model: CostModel | None = None,
    deep: bool = True,
) -> float:
    """Total frequency-weighted query cost of a workload."""
    cost_model = cost_model or PaperCostModel()
    return sum(
        query.frequency
        * best_query_cost(query, selected, cost_model, deep)
        for query in workload
    )


# ---------------------------------------------------------------------------
# Solvers.
# ---------------------------------------------------------------------------


@dataclass
class SelectionResult:
    """Outcome of an AVSP solve."""

    selected: list[CandidateView] = field(default_factory=list)
    cost_without_views: float = 0.0
    cost_with_views: float = 0.0
    build_cost: float = 0.0

    @property
    def benefit(self) -> float:
        """Total workload-cost reduction."""
        return self.cost_without_views - self.cost_with_views

    @property
    def selection(self) -> frozenset[SelectedView]:
        """The chosen (kind, table) set."""
        return frozenset(c.selection for c in self.selected)

    def describe(self) -> str:
        """Multi-line summary."""
        lines = [
            f"workload cost without views: {self.cost_without_views:,.0f}",
            f"workload cost with views:    {self.cost_with_views:,.0f}",
            f"benefit: {self.benefit:,.0f}   "
            f"offline build cost: {self.build_cost:,.0f}",
        ]
        lines.extend(f"  + {c.describe()}" for c in self.selected)
        return "\n".join(lines)


def greedy_avsp(
    workload: Workload,
    budget: float,
    candidates: list[CandidateView] | None = None,
    cost_model: CostModel | None = None,
    deep: bool = True,
) -> SelectionResult:
    """Greedy AVSP: repeatedly add the affordable candidate with the best
    marginal benefit / build-cost ratio until nothing improves."""
    cost_model = cost_model or PaperCostModel()
    candidates = (
        candidates
        if candidates is not None
        else enumerate_candidates(workload, cost_model)
    )
    result = SelectionResult(
        cost_without_views=workload_cost(
            workload, frozenset(), cost_model, deep
        )
    )
    current_cost = result.cost_without_views
    remaining = list(candidates)
    selected: set[SelectedView] = set()
    spent = 0.0
    while remaining:
        best_candidate = None
        best_ratio = 0.0
        best_cost = current_cost
        for candidate in remaining:
            if spent + candidate.build_cost > budget:
                continue
            trial = frozenset(selected | {candidate.selection})
            cost = workload_cost(workload, trial, cost_model, deep)
            benefit = current_cost - cost
            if benefit <= 0:
                continue
            ratio = benefit / max(candidate.build_cost, 1.0)
            if ratio > best_ratio:
                best_ratio = ratio
                best_candidate = candidate
                best_cost = cost
        if best_candidate is None:
            break
        selected.add(best_candidate.selection)
        result.selected.append(best_candidate)
        spent += best_candidate.build_cost
        current_cost = best_cost
        remaining.remove(best_candidate)
    result.cost_with_views = current_cost
    result.build_cost = spent
    return result


def exhaustive_avsp(
    workload: Workload,
    budget: float,
    candidates: list[CandidateView] | None = None,
    cost_model: CostModel | None = None,
    deep: bool = True,
    max_candidates: int = 14,
) -> SelectionResult:
    """Exact AVSP by subset enumeration (small candidate sets only).

    :raises ViewError: when the candidate set exceeds ``max_candidates``.
    """
    cost_model = cost_model or PaperCostModel()
    candidates = (
        candidates
        if candidates is not None
        else enumerate_candidates(workload, cost_model)
    )
    if len(candidates) > max_candidates:
        raise ViewError(
            f"exhaustive AVSP limited to {max_candidates} candidates, got "
            f"{len(candidates)}; use greedy_avsp"
        )
    base_cost = workload_cost(workload, frozenset(), cost_model, deep)
    best_subset: tuple[CandidateView, ...] = ()
    best_cost = base_cost
    best_spent = 0.0
    for mask in range(1 << len(candidates)):
        subset = tuple(
            candidates[i] for i in range(len(candidates)) if mask & (1 << i)
        )
        spent = sum(c.build_cost for c in subset)
        if spent > budget:
            continue
        cost = workload_cost(
            workload,
            frozenset(c.selection for c in subset),
            cost_model,
            deep,
        )
        if cost < best_cost:
            best_cost = cost
            best_subset = subset
            best_spent = spent
    return SelectionResult(
        selected=list(best_subset),
        cost_without_views=base_cost,
        cost_with_views=best_cost,
        build_cost=best_spent,
    )
