"""Disk-resident tables: round trips, zone-map pruning, appends, spill.

These are the subsystem's acceptance tests: a selective scan must read
*strictly fewer* segments than a full scan, statistics must persist so
re-opening plans without reading data, and appends must bump the
statistics version that invalidates zone-map-dependent cached plans.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import col
from repro.errors import SchemaError, StorageError
from repro.storage import Catalog, Table
from repro.storage.disk import (
    BufferManager,
    DiskTable,
    append_table,
    is_disk_table,
    open_table,
    spill_table,
    write_table,
)


@pytest.fixture
def clustered_table():
    """10k rows in 10 segments; ``k`` ascends so zone maps are selective."""
    return Table.from_arrays(
        {
            "k": np.arange(10_000, dtype=np.int64),
            "v": np.tile(np.arange(100, dtype=np.int64), 100),
        }
    )


@pytest.fixture
def disk(clustered_table, tmp_path):
    pool = BufferManager(budget_bytes=64 * 1024 * 1024)
    return write_table(
        clustered_table, str(tmp_path / "t"), segment_rows=1000, buffer=pool
    )


class TestRoundTrip:
    def test_to_memory_equals_original(self, disk, clustered_table):
        assert disk.to_memory().equals(clustered_table)

    def test_shape_and_schema(self, disk):
        assert disk.num_rows == 10_000
        assert disk.num_segments == 10
        assert list(disk.schema.names) == ["k", "v"]
        assert is_disk_table(disk)

    def test_open_reads_no_segments(self, disk, tmp_path):
        pool = BufferManager(budget_bytes=1024 * 1024)
        reopened = open_table(str(tmp_path / "t"), buffer=pool)
        # Planning inputs come from the manifest alone: statistics are
        # available while the pool has served zero loads.
        stats = reopened.column("k").statistics
        assert stats.count == 10_000
        assert stats.minimum == 0
        assert stats.maximum == 9_999
        assert pool.stats()["misses"] == 0

    def test_column_values_roundtrip(self, disk, clustered_table):
        np.testing.assert_array_equal(
            np.asarray(disk.column_values("v")), clustered_table["v"]
        )

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            open_table(str(tmp_path / "nope"))

    def test_write_zero_columns_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no columns"):
            write_table(Table([]), str(tmp_path / "empty"))

    def test_empty_table_roundtrip(self, tmp_path):
        empty = Table.from_arrays({"k": np.array([], dtype=np.int64)})
        disk = write_table(empty, str(tmp_path / "e"), segment_rows=10)
        assert disk.num_rows == 0
        assert disk.to_memory().equals(empty)

    def test_all_null_column_roundtrip(self, tmp_path):
        nulls = Table.from_arrays({"x": np.full(50, np.nan)})
        disk = write_table(nulls, str(tmp_path / "n"), segment_rows=16)
        assert np.isnan(np.asarray(disk.column_values("x"))).all()


class TestZoneMapPruning:
    def test_selective_scan_reads_strictly_fewer_segments(self, disk):
        full = disk.estimate_scan(())
        selective = disk.estimate_scan((col("k") < 1_500,))
        assert full.segments_read == 10
        assert selective.segments_read == 2
        assert selective.segments_read < full.segments_read
        assert selective.rows_scanned == 2_000
        assert selective.bytes_scanned < full.bytes_scanned

    def test_point_predicate_prunes_to_one_segment(self, disk):
        estimate = disk.estimate_scan((col("k") == 4_242,))
        assert estimate.segments_read == 1
        assert estimate.rows_matching == pytest.approx(1.0)

    def test_alias_qualified_predicates_prune(self, disk):
        estimate = disk.estimate_scan((col("R.k") >= 9_000,), alias="R")
        assert estimate.segments_read == 1

    def test_unprunable_predicate_scans_everything(self, disk):
        estimate = disk.estimate_scan((col("k") + col("v") > 0,))
        assert estimate.segments_read == 10

    def test_segment_prunable(self, disk):
        assert disk.segment_prunable(5, (col("k") < 1_000,))
        assert not disk.segment_prunable(0, (col("k") < 1_000,))

    def test_not_equal_does_not_prune_nullable_segments(self, tmp_path):
        constant = Table.from_arrays({"x": np.full(100, np.nan)})
        disk = write_table(constant, str(tmp_path / "c"), segment_rows=50)
        # All-null segments prune for '=' but never for '<>' (NaN rows
        # satisfy '<>').
        assert disk.segment_prunable(0, (col("x") == 1.0,))
        assert not disk.segment_prunable(0, (col("x") != 1.0,))

    def test_exact_selectivity_matches_numpy(self, disk, clustered_table):
        predicates = (col("k") < 2_500, col("v") >= 50)
        expected = np.count_nonzero(
            (clustered_table["k"] < 2_500) & (clustered_table["v"] >= 50)
        ) / 10_000
        assert disk.exact_selectivity(predicates) == pytest.approx(expected)

    def test_estimate_selectivity_bounded(self, disk):
        assert disk.estimate_selectivity(()) == pytest.approx(1.0)
        assert disk.estimate_selectivity((col("k") < 0,)) == 0.0


class TestRowGroups:
    def test_row_group_pins_aligned_segments(self, disk):
        with disk.row_group(3) as group:
            assert group.num_rows == 1000
            np.testing.assert_array_equal(
                np.asarray(group.arrays["k"]),
                np.arange(3_000, 4_000, dtype=np.int64),
            )
            assert group.nbytes > 0

    def test_cold_then_warm(self, disk):
        with disk.row_group(0) as group:
            assert group.cold_bytes > 0
        with disk.row_group(0) as group:
            assert group.cold_bytes == 0  # both columns buffered now

    def test_residency_tracks_buffered_fraction(self, disk):
        assert disk.buffer_residency() == 0.0
        for index in range(disk.num_segments):
            with disk.row_group(index):
                pass
        assert disk.buffer_residency() == pytest.approx(1.0)
        assert disk.memory_bytes() == disk.decoded_bytes()


class TestEncodingMix:
    def test_fractions_sum_to_one(self, disk):
        mix = disk.encoding_mix()
        assert mix
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_explicit_encoding_is_uniform(self, clustered_table, tmp_path):
        disk = write_table(
            clustered_table, str(tmp_path / "p"), segment_rows=1000,
            encoding="plain",
        )
        assert disk.encoding_mix() == {"plain": pytest.approx(1.0)}


class TestAppend:
    def test_append_bumps_statistics_version(self, disk, tmp_path):
        assert disk.statistics_version == 1
        extra = Table.from_arrays(
            {
                "k": np.arange(10_000, 10_500, dtype=np.int64),
                "v": np.zeros(500, dtype=np.int64),
            }
        )
        appended = append_table(str(tmp_path / "t"), extra)
        assert appended.statistics_version == 2
        assert appended.num_rows == 10_500
        assert appended.column("k").statistics.maximum == 10_499
        tail = np.asarray(appended.column_values("k"))[-500:]
        np.testing.assert_array_equal(tail, extra["k"])

    def test_append_schema_mismatch_raises(self, disk, tmp_path):
        wrong = Table.from_arrays({"z": np.zeros(10, dtype=np.int64)})
        with pytest.raises(StorageError, match="schema mismatch"):
            append_table(str(tmp_path / "t"), wrong)

    def test_new_segments_prune_independently(self, disk, tmp_path):
        extra = Table.from_arrays(
            {
                "k": np.arange(10_000, 11_000, dtype=np.int64),
                "v": np.zeros(1000, dtype=np.int64),
            }
        )
        appended = append_table(str(tmp_path / "t"), extra)
        estimate = appended.estimate_scan((col("k") >= 10_000,))
        assert estimate.segments_read == 1


class TestSpillAndCatalog:
    def test_spill_table_lands_in_spill_dir(
        self, small_table, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        disk = spill_table(small_table, "my table!")
        assert os.path.dirname(disk.directory) == str(tmp_path)
        assert disk.to_memory().equals(small_table)

    def test_catalog_autospills_under_disk_mode(
        self, small_table, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORAGE", "disk")
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        catalog = Catalog()
        catalog.register("t", small_table)
        registered = catalog.table("t")
        assert is_disk_table(registered)
        assert registered.to_memory().equals(small_table)

    def test_catalog_memory_mode_keeps_tables_in_memory(
        self, small_table, memory_storage
    ):
        catalog = Catalog()
        catalog.register("t", small_table)
        assert not is_disk_table(catalog.table("t"))

    def test_register_disk_opens_warm(self, disk, tmp_path):
        catalog = Catalog()
        catalog.register_disk("t", str(tmp_path / "t"))
        assert isinstance(catalog.table("t"), DiskTable)
        assert catalog.cardinality("t") == 10_000
        assert catalog.column_statistics("t", "k").maximum == 9_999

    def test_register_disk_duplicate_raises(self, disk, tmp_path):
        catalog = Catalog()
        catalog.register_disk("t", str(tmp_path / "t"))
        with pytest.raises(SchemaError):
            catalog.register_disk("t", str(tmp_path / "t"))

    def test_reregister_bumps_catalog_version(self, disk, tmp_path):
        catalog = Catalog()
        catalog.register_disk("t", str(tmp_path / "t"))
        before = catalog.fingerprint()
        catalog.register_disk("t", str(tmp_path / "t"), replace=True)
        assert catalog.fingerprint() != before
