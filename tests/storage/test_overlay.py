"""Statistics overlays: hypothetical stats without mutating the catalog.

The what-if layer's soundness rests on three properties checked here:
patched tables carry the fabricated statistics (invariants maintained)
while *sharing* the base catalog's backing arrays; unpatched tables are
shared by identity (the correlation memo stays valid); and the overlay
catalog mints a fresh fingerprint so its plans never cross-pollinate the
base catalog's plan cache.
"""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.storage import Catalog, StatisticsOverlay, Table
from repro.storage.overlay import OverlayCatalog


@pytest.fixture
def catalog():
    ids = np.arange(100, dtype=np.int64)
    cat = Catalog()
    cat.register(
        "T",
        Table.from_arrays({"ID": ids, "A": ids // 10}),
    )
    cat.register(
        "U",
        Table.from_arrays({"K": np.array([5, 3, 1, 4, 2], dtype=np.int64)}),
    )
    return cat


class TestBuilders:
    def test_chainable_and_introspectable(self):
        overlay = (
            StatisticsOverlay()
            .set_cardinality("T", 10)
            .set_sorted("T", "ID", False)
            .set_index("T", "ID", kind="btree")
        )
        assert not overlay.is_empty()
        assert overlay.tables() == ["T"]
        assert len(overlay.patches()) == 3  # index patches ride along
        assert len(overlay.index_patches()) == 1
        text = overlay.describe()
        assert "cardinality" in text and "sorted" in text
        assert overlay.to_dict()["patches"]

    def test_negative_cardinality_rejected(self):
        with pytest.raises(StatisticsError):
            StatisticsOverlay().set_cardinality("T", -1)

    def test_empty_overlay(self):
        assert StatisticsOverlay().is_empty()


class TestApply:
    def test_unknown_table_and_column_rejected(self, catalog):
        with pytest.raises(StatisticsError):
            StatisticsOverlay().set_cardinality("NOPE", 1).apply(catalog)
        with pytest.raises(StatisticsError):
            StatisticsOverlay().set_sorted("T", "NOPE", False).apply(catalog)

    def test_patched_table_shares_arrays_with_fresh_stats(self, memory_storage, catalog):
        over = StatisticsOverlay().set_sorted("T", "ID", False).apply(catalog)
        base_column = catalog.table("T").column("ID")
        over_column = over.table("T").column("ID")
        # Same backing memory, different column/statistics objects.
        assert over_column is not base_column
        assert over_column.statistics is not base_column.statistics
        assert np.shares_memory(
            np.asarray(over.table("T").column("ID").values),
            np.asarray(catalog.table("T").column("ID").values),
        )
        assert catalog.column_statistics("T", "ID").is_sorted
        assert not over.column_statistics("T", "ID").is_sorted

    def test_unpatched_tables_shared_by_identity(self, catalog):
        over = StatisticsOverlay().set_sorted("T", "ID", False).apply(catalog)
        assert over.table("U") is catalog.table("U")

    def test_sorted_implies_clustered_and_clear_cascades(self, catalog):
        over = StatisticsOverlay().set_sorted("U", "K", True).apply(catalog)
        stats = over.column_statistics("U", "K")
        assert stats.is_sorted and stats.is_clustered
        # Clearing clusteredness must clear sortedness too.
        over2 = StatisticsOverlay().set_clustered("T", "ID", False).apply(catalog)
        stats2 = over2.column_statistics("T", "ID")
        assert not stats2.is_clustered and not stats2.is_sorted

    def test_distinct_clamped_to_count(self, catalog):
        over = StatisticsOverlay().set_distinct("U", "K", 10_000).apply(catalog)
        stats = over.column_statistics("U", "K")
        assert stats.distinct <= stats.count

    def test_cardinality_override(self, catalog):
        over = StatisticsOverlay().set_cardinality("T", 1_000_000).apply(catalog)
        assert over.cardinality("T") == 1_000_000
        assert catalog.cardinality("T") == 100
        # The physical table is untouched; only the planner's view lies.
        assert over.table("T").num_rows == 100

    def test_shuffle_clears_sortedness_on_every_column(self, catalog):
        """`set_shuffled` exists because monotone correlations are facts
        about the data: patching one column unsorted while a correlated
        sibling stays sorted would be re-derived by the closure."""
        over = StatisticsOverlay().set_shuffled("T").apply(catalog)
        for name in ("ID", "A"):
            stats = over.column_statistics("T", name)
            assert not stats.is_sorted and not stats.is_clustered

    def test_later_explicit_patch_overrides_shuffle(self, catalog):
        over = (
            StatisticsOverlay()
            .set_shuffled("T")
            .set_sorted("T", "A", True)
            .apply(catalog)
        )
        assert not over.column_statistics("T", "ID").is_sorted
        assert over.column_statistics("T", "A").is_sorted

    def test_fresh_fingerprint_and_handles(self, catalog):
        over = StatisticsOverlay().set_cardinality("T", 10).apply(catalog)
        assert isinstance(over, OverlayCatalog)
        # Distinct identity token: plans cached for the base catalog can
        # never be served for the hypothetical one (or vice versa).
        assert over.fingerprint != catalog.fingerprint
        assert over.base is catalog
        assert over.overlay.tables() == ["T"]

    def test_foreign_keys_carried_over(self):
        from repro.datagen import make_join_scenario

        catalog = make_join_scenario(
            n_r=500, n_s=1_000, num_groups=50, seed=3
        ).build_catalog()
        over = StatisticsOverlay().set_shuffled("S").apply(catalog)
        assert len(over.foreign_keys()) == len(catalog.foreign_keys())
