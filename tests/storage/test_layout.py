"""Row / columnar / PAX layout conversions."""

import numpy as np
import pytest

from repro.errors import ColumnError
from repro.storage import Layout, PaxStore, RowStore, Table, convert


@pytest.fixture
def table():
    return Table.from_arrays(
        {"a": np.arange(10, dtype=np.int64), "b": np.arange(10, 20)}
    )


class TestRowStore:
    def test_roundtrip(self, table):
        store = RowStore(table)
        assert store.num_rows == 10
        assert store.to_table().equals(table)

    def test_row_access(self, table):
        assert RowStore(table).row(3) == (3, 13)


class TestPaxStore:
    def test_paging(self, table):
        store = PaxStore(table, rows_per_page=4)
        assert store.num_pages == 3
        assert [p.num_rows for p in store.pages()] == [4, 4, 2]
        assert [p.row_offset for p in store.pages()] == [0, 4, 8]

    def test_minipages_are_columnar_within_page(self, table):
        page = PaxStore(table, rows_per_page=4).pages()[1]
        assert list(page.minipages["a"]) == [4, 5, 6, 7]

    def test_roundtrip(self, table):
        assert PaxStore(table, rows_per_page=3).to_table().equals(table)

    def test_empty_table(self):
        empty = Table.from_arrays({"a": np.empty(0, dtype=np.int64)})
        store = PaxStore(empty)
        assert store.num_pages == 0
        assert store.to_table().equals(empty)

    def test_invalid_page_size(self, table):
        with pytest.raises(ColumnError):
            PaxStore(table, rows_per_page=0)


class TestConvert:
    def test_columnar_is_identity(self, table):
        assert convert(table, Layout.COLUMNAR) is table

    def test_dispatch(self, table):
        assert isinstance(convert(table, Layout.ROW), RowStore)
        assert isinstance(convert(table, Layout.PAX), PaxStore)
