"""Dictionary and run-length compression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ColumnError
from repro.storage import (
    Column,
    dictionary_encode,
    dictionary_encode_column,
    rle_encode,
)


class TestDictionary:
    def test_codes_are_dense_from_zero(self):
        encoded = dictionary_encode(np.array([100, 500, 100, 900]))
        assert set(encoded.codes.tolist()) == {0, 1, 2}
        assert encoded.cardinality == 3

    def test_order_preserving(self):
        values = np.array([50, 10, 90, 10])
        encoded = dictionary_encode(values)
        # codes compare exactly like the originals
        for i in range(len(values)):
            for j in range(len(values)):
                assert (values[i] < values[j]) == (
                    encoded.codes[i] < encoded.codes[j]
                )

    def test_decode_roundtrip(self):
        values = np.array([7, 3, 7, 9, 3])
        assert np.array_equal(dictionary_encode(values).decode(), values)

    def test_encode_values_unknown(self):
        encoded = dictionary_encode(np.array([1, 2, 3]))
        with pytest.raises(ColumnError):
            encoded.encode_values(np.array([99]))

    def test_column_encoding_manufactures_density(self):
        # A sparse sorted column becomes a dense sorted code column —
        # the §2.1 dictionary-compression-enables-SPH observation.
        column = Column("k", np.array([10, 10, 500, 9000]))
        code_column, __ = dictionary_encode_column(column)
        stats = code_column.statistics
        assert stats.is_dense
        assert stats.is_sorted
        assert stats.distinct == 3

    @given(st.lists(st.integers(-500, 500), min_size=1, max_size=100))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        encoded = dictionary_encode(array)
        assert np.array_equal(encoded.decode(), array)
        # dictionary is sorted & distinct
        d = encoded.dictionary
        assert np.all(d[:-1] < d[1:]) if d.size > 1 else True


class TestRLE:
    def test_basic_runs(self):
        encoded = rle_encode(np.array([3, 3, 5, 5, 5, 3]))
        assert list(encoded.values) == [3, 5, 3]
        assert list(encoded.lengths) == [2, 3, 1]
        assert encoded.num_runs == 3
        assert encoded.decoded_size == 6

    def test_empty(self):
        encoded = rle_encode(np.empty(0, dtype=np.int64))
        assert encoded.num_runs == 0
        assert encoded.decoded_size == 0
        assert encoded.compression_ratio == 1.0

    def test_compression_ratio(self):
        encoded = rle_encode(np.zeros(100, dtype=np.int64))
        assert encoded.compression_ratio == 100.0

    @given(st.lists(st.integers(0, 5), max_size=200))
    def test_roundtrip_property(self, values):
        array = np.array(values, dtype=np.int64)
        assert np.array_equal(rle_encode(array).decode(), array)
