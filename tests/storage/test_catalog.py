"""Catalog registration, statistics access, and foreign keys."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage import Catalog, ForeignKey, Table


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register("R", Table.from_arrays({"ID": np.arange(10), "A": np.arange(10) // 2}))
    cat.register("S", Table.from_arrays({"R_ID": np.array([0, 0, 5, 9])}))
    return cat


class TestRegistration:
    def test_lookup(self, catalog):
        assert catalog.table("R").num_rows == 10
        assert catalog.cardinality("S") == 4
        assert "R" in catalog
        assert catalog.names() == ["R", "S"]

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.register("R", catalog.table("S"))

    def test_replace(self, catalog):
        catalog.register("R", catalog.table("S"), replace=True)
        assert catalog.cardinality("R") == 4

    def test_unregister(self, catalog):
        catalog.unregister("S")
        assert "S" not in catalog
        with pytest.raises(SchemaError):
            catalog.unregister("S")

    def test_missing_lookup(self, catalog):
        with pytest.raises(SchemaError, match="no table"):
            catalog.table("T")


class TestStatistics:
    def test_column_statistics(self, catalog):
        stats = catalog.column_statistics("R", "ID")
        assert stats.distinct == 10
        assert stats.is_sorted and stats.is_dense


class TestForeignKeys:
    def test_add_and_find_both_directions(self, catalog):
        fk = ForeignKey("S", "R_ID", "R", "ID")
        catalog.add_foreign_key(fk)
        assert catalog.foreign_key_between("S", "R_ID", "R", "ID") is fk
        assert catalog.foreign_key_between("R", "ID", "S", "R_ID") is fk
        assert catalog.foreign_key_between("R", "A", "S", "R_ID") is None

    def test_unregistered_table_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.add_foreign_key(ForeignKey("X", "a", "R", "ID"))
