"""Statistics collection: the measurements DQO plan properties rest on."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.storage.statistics import ColumnStatistics, collect_statistics


class TestCollectStatistics:
    def test_empty_column(self):
        stats = collect_statistics(np.empty(0, dtype=np.int64))
        assert stats.count == 0
        assert stats.minimum is None
        assert stats.maximum is None
        assert stats.is_sorted
        assert stats.is_clustered
        assert not stats.is_dense

    def test_sorted_dense(self):
        stats = collect_statistics(np.array([0, 0, 1, 2, 2, 3]))
        assert stats.is_sorted
        assert stats.is_clustered
        assert stats.is_dense
        assert stats.distinct == 4
        assert stats.minimum == 0
        assert stats.maximum == 3

    def test_sorted_sparse(self):
        stats = collect_statistics(np.array([0, 10, 20, 30]))
        assert stats.is_sorted
        assert not stats.is_dense
        assert stats.domain_size == 31
        assert stats.density == pytest.approx(4 / 31)

    def test_unsorted_dense(self):
        stats = collect_statistics(np.array([2, 0, 1, 2, 0]))
        assert not stats.is_sorted
        assert stats.is_dense
        assert stats.distinct == 3

    def test_clustered_but_not_sorted(self):
        # Equal values contiguous, run order not ascending.
        stats = collect_statistics(np.array([5, 5, 1, 1, 1, 3]))
        assert not stats.is_sorted
        assert stats.is_clustered

    def test_not_clustered(self):
        stats = collect_statistics(np.array([1, 2, 1]))
        assert not stats.is_clustered

    def test_dense_offset_domain(self):
        # Density is about gaps, not about starting at zero.
        stats = collect_statistics(np.array([100, 101, 102]))
        assert stats.is_dense

    def test_float_column_never_dense(self):
        stats = collect_statistics(np.array([1.0, 2.0, 3.0]))
        assert not stats.is_dense
        assert stats.minimum == 1.0

    def test_rejects_2d(self):
        with pytest.raises(StatisticsError):
            collect_statistics(np.zeros((2, 2)))

    def test_single_value(self):
        stats = collect_statistics(np.array([42]))
        assert stats.is_sorted and stats.is_clustered and stats.is_dense
        assert stats.distinct == 1


class TestColumnStatisticsInvariants:
    def test_sorted_implies_clustered_enforced(self):
        with pytest.raises(StatisticsError):
            ColumnStatistics(
                count=2,
                minimum=0,
                maximum=1,
                distinct=2,
                is_sorted=True,
                is_clustered=False,
                is_dense=True,
            )

    def test_distinct_bounded_by_count(self):
        with pytest.raises(StatisticsError):
            ColumnStatistics(
                count=1,
                minimum=0,
                maximum=5,
                distinct=2,
                is_sorted=True,
                is_clustered=True,
                is_dense=False,
            )


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200)
)
def test_statistics_match_definitions(values):
    """Property: every collected statistic matches its first-principles
    definition on arbitrary integer data."""
    array = np.array(values, dtype=np.int64)
    stats = collect_statistics(array)
    assert stats.count == len(values)
    assert stats.distinct == len(set(values))
    if values:
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        assert stats.is_sorted == (sorted(values) == values)
        domain = max(values) - min(values) + 1
        assert stats.is_dense == (len(set(values)) == domain)
        # clustered: each value forms one contiguous run
        runs = 1 + sum(
            1 for a, b in zip(values, values[1:]) if a != b
        )
        assert stats.is_clustered == (runs == len(set(values)))
