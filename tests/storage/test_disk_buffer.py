"""The buffer manager: budget, eviction, pins, and concurrency.

The load-bearing invariant is *hard*: cached bytes never exceed the
budget, no matter how many threads are acquiring — oversized or
unplaceable loads are served transient instead of blowing the ceiling.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.disk.buffer import (
    BufferManager,
    get_buffer_manager,
    set_buffer_manager,
)

KIB = 1024


def loader_for(size_bytes: int, fill: int = 1):
    def load():
        return np.full(size_bytes // 8, fill, dtype=np.int64), size_bytes

    return load


class TestLeaseProtocol:
    def test_miss_then_hit(self):
        pool = BufferManager(budget_bytes=64 * KIB)
        with pool.lease(("t", "c", 0), loader_for(8 * KIB)) as lease:
            assert lease.cold
            assert lease.bytes_read == 8 * KIB
        with pool.lease(("t", "c", 0), loader_for(8 * KIB)) as lease:
            assert not lease.cold
            assert lease.bytes_read == 0
        stats = pool.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["resident_bytes"] == 8 * KIB

    def test_oversized_load_is_transient(self):
        pool = BufferManager(budget_bytes=4 * KIB)
        lease = pool.acquire(("t", "c", 0), loader_for(16 * KIB))
        assert lease.transient
        assert lease.array.size == 16 * KIB // 8
        pool.release(lease)
        assert pool.resident_bytes() == 0
        assert pool.stats()["transient_loads"] == 1

    def test_uncacheable_load_is_transient(self):
        pool = BufferManager(budget_bytes=64 * KIB)
        lease = pool.acquire(("t", "c", 0), loader_for(KIB), cacheable=False)
        assert lease.transient
        assert pool.resident_bytes() == 0

    def test_zero_budget_rejected(self):
        with pytest.raises(StorageError, match="budget"):
            BufferManager(budget_bytes=0)


class TestEviction:
    def test_clock_evicts_unpinned_under_pressure(self):
        pool = BufferManager(budget_bytes=32 * KIB)
        for index in range(8):  # 64 KiB of 8 KiB frames through a 32 KiB pool
            with pool.lease(("t", "c", index), loader_for(8 * KIB)):
                pass
            assert pool.resident_bytes() <= pool.budget_bytes
        stats = pool.stats()
        assert stats["evictions"] >= 4
        assert stats["resident_bytes"] <= pool.budget_bytes

    def test_pinned_frames_survive_pressure(self):
        pool = BufferManager(budget_bytes=32 * KIB)
        pinned = pool.acquire(("t", "c", 0), loader_for(8 * KIB, fill=7))
        for index in range(1, 10):
            with pool.lease(("t", "c", index), loader_for(8 * KIB)):
                pass
        # The pinned frame was never evicted: re-acquiring is a hit on
        # the very same array.
        again = pool.acquire(("t", "c", 0), loader_for(8 * KIB, fill=0))
        assert not again.cold
        assert again.array is pinned.array
        assert int(again.array[0]) == 7
        pool.release(again)
        pool.release(pinned)

    def test_all_pinned_pool_serves_transient(self):
        pool = BufferManager(budget_bytes=16 * KIB)
        held = [
            pool.acquire(("t", "c", index), loader_for(8 * KIB))
            for index in range(2)
        ]
        overflow = pool.acquire(("t", "c", 99), loader_for(8 * KIB))
        assert overflow.transient
        assert pool.resident_bytes() == 16 * KIB
        for lease in held:
            pool.release(lease)
        pool.release(overflow)

    def test_invalidate_by_prefix(self):
        pool = BufferManager(budget_bytes=64 * KIB)
        for table in ("a", "b"):
            with pool.lease((table, "c", 0), loader_for(8 * KIB)):
                pass
        assert pool.invalidate("a") == 1
        assert pool.resident_bytes_for("a") == 0
        assert pool.resident_bytes_for("b") == 8 * KIB
        assert pool.invalidate() == 1
        assert pool.resident_bytes() == 0

    def test_invalidate_skips_pinned(self):
        pool = BufferManager(budget_bytes=64 * KIB)
        lease = pool.acquire(("a", "c", 0), loader_for(8 * KIB))
        assert pool.invalidate("a") == 0
        pool.release(lease)
        assert pool.invalidate("a") == 1


class TestConcurrencyStress:
    def test_budget_holds_under_concurrent_load(self):
        pool = BufferManager(budget_bytes=48 * KIB)
        errors: list[str] = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for __ in range(120):
                key = ("t", "c", int(rng.integers(0, 24)))
                lease = pool.acquire(key, loader_for(8 * KIB))
                if pool.resident_bytes() > pool.budget_bytes:
                    errors.append(
                        f"over budget: {pool.resident_bytes()}"
                    )
                if int(lease.array.size) != KIB:
                    errors.append("lease array corrupted")
                pool.release(lease)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = pool.stats()
        assert stats["resident_bytes"] <= pool.budget_bytes
        assert stats["hits"] + stats["misses"] == 8 * 120

    def test_load_race_single_frame(self):
        # Two threads missing the same key concurrently must converge on
        # one cached frame without double-counting residency.
        pool = BufferManager(budget_bytes=64 * KIB)
        barrier = threading.Barrier(2)

        def slow_loader():
            barrier.wait(timeout=10)
            return np.zeros(KIB, dtype=np.int64), 8 * KIB

        leases: list = [None, None]

        def worker(slot: int) -> None:
            leases[slot] = pool.acquire(("t", "c", 0), slow_loader)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool.resident_bytes() == 8 * KIB
        assert leases[0].array is leases[1].array or (
            leases[0].transient or leases[1].transient
        )
        for lease in leases:
            pool.release(lease)


class TestProcessDefault:
    def test_get_set_roundtrip(self):
        original = get_buffer_manager()
        try:
            replacement = BufferManager(budget_bytes=KIB)
            set_buffer_manager(replacement)
            assert get_buffer_manager() is replacement
        finally:
            set_buffer_manager(original)
