"""The on-disk segment format: round trips, zone maps, recovery.

Every encoding must round-trip bit-exactly — including the edge shapes
(empty segments, all-null float segments, single-run RLE) — and every
column file must stay self-describing: :func:`scan_footers` walks the
trailer chain without the manifest and recovers the same metadata the
writer produced.
"""

from __future__ import annotations

import io
import json
import os
import struct

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.disk.format import (
    FORMAT_VERSION,
    MAGIC,
    choose_encoding,
    encode_segment,
    read_manifest,
    read_segment,
    scan_footers,
    write_manifest,
    write_segment,
)


def roundtrip(values: np.ndarray, encoding: str, tmp_path) -> np.ndarray:
    path = os.path.join(tmp_path, "col.col")
    with open(path, "wb") as handle:
        meta = write_segment(handle, values, encoding)
    return read_segment(path, meta, values.dtype)


class TestEncodingRoundTrips:
    @pytest.mark.parametrize("encoding", ["plain", "dictionary", "rle", "auto"])
    def test_int64(self, encoding, tmp_path, rng):
        values = rng.integers(0, 50, size=1000).astype(np.int64)
        decoded = roundtrip(values, encoding, tmp_path)
        np.testing.assert_array_equal(np.asarray(decoded), values)

    @pytest.mark.parametrize("encoding", ["plain", "dictionary", "rle", "auto"])
    def test_float64(self, encoding, tmp_path, rng):
        values = rng.normal(size=500).round(2)
        decoded = roundtrip(values, encoding, tmp_path)
        np.testing.assert_array_equal(np.asarray(decoded), values)

    @pytest.mark.parametrize("encoding", ["plain", "dictionary", "rle", "auto"])
    def test_empty_segment(self, encoding, tmp_path):
        values = np.array([], dtype=np.int64)
        decoded = roundtrip(values, encoding, tmp_path)
        assert decoded.size == 0
        assert decoded.dtype == np.int64

    @pytest.mark.parametrize("encoding", ["plain", "rle", "auto"])
    def test_all_null_segment(self, encoding, tmp_path):
        values = np.full(64, np.nan)
        decoded = roundtrip(values, encoding, tmp_path)
        assert np.isnan(np.asarray(decoded)).all()
        assert decoded.size == 64

    def test_dictionary_with_nans_falls_back_but_roundtrips(self, tmp_path):
        # NaN dictionaries are not value-stable; an explicit request must
        # still write a correct segment (silently as plain).
        values = np.array([1.0, np.nan, 2.0, np.nan])
        path = os.path.join(tmp_path, "col.col")
        with open(path, "wb") as handle:
            meta = write_segment(handle, values, "dictionary")
        assert meta["encoding"] == "plain"
        decoded = np.asarray(read_segment(path, meta, values.dtype))
        np.testing.assert_array_equal(np.isnan(decoded), np.isnan(values))
        np.testing.assert_array_equal(decoded[~np.isnan(decoded)], [1.0, 2.0])

    def test_single_run_rle(self, tmp_path):
        values = np.full(10_000, 7, dtype=np.int64)
        payload, meta = encode_segment(values, "rle")
        # one run: 8 bytes of value + 8 bytes of length
        assert meta["payload_bytes"] == 16
        decoded = roundtrip(values, "rle", tmp_path)
        np.testing.assert_array_equal(np.asarray(decoded), values)

    def test_decoded_segments_are_read_only(self, tmp_path):
        for encoding in ("plain", "dictionary", "rle"):
            decoded = roundtrip(
                np.arange(100, dtype=np.int64), encoding, tmp_path
            )
            with pytest.raises((ValueError, RuntimeError)):
                decoded[0] = 99


class TestChooseEncoding:
    def test_constant_column_prefers_rle(self):
        assert choose_encoding(np.full(5000, 3, dtype=np.int64)) == "rle"

    def test_low_cardinality_shuffled_prefers_dictionary(self, rng):
        values = rng.integers(0, 4, size=5000).astype(np.int64)
        assert choose_encoding(values) == "dictionary"

    def test_unique_values_prefer_plain(self):
        values = np.arange(5000, dtype=np.int64)
        np.random.default_rng(1).shuffle(values)
        assert choose_encoding(values) == "plain"

    def test_nan_floats_never_pick_dictionary(self):
        values = np.where(np.arange(5000) % 2 == 0, np.nan, 1.0)
        assert choose_encoding(values) != "dictionary"

    def test_empty_is_plain(self):
        assert choose_encoding(np.array([], dtype=np.int64)) == "plain"


class TestZoneMaps:
    def test_min_max_distinct(self):
        __, meta = encode_segment(np.array([5, 1, 9, 1, 5], dtype=np.int64))
        assert meta["min"] == 1
        assert meta["max"] == 9
        assert meta["distinct"] == 3
        assert meta["null_count"] == 0
        assert meta["rows"] == 5

    def test_nan_aware(self):
        __, meta = encode_segment(np.array([2.0, np.nan, 8.0]))
        assert meta["min"] == 2.0
        assert meta["max"] == 8.0
        assert meta["null_count"] == 1
        assert meta["distinct"] == 3  # 2.0, 8.0, and NaN

    def test_all_null_has_no_bounds(self):
        __, meta = encode_segment(np.full(3, np.nan))
        assert meta["min"] is None
        assert meta["max"] is None
        assert meta["null_count"] == 3


class TestFooterRecovery:
    def test_scan_footers_matches_writer_metas(self, tmp_path, rng):
        path = os.path.join(tmp_path, "col.col")
        written = []
        with open(path, "wb") as handle:
            for encoding, size in (("plain", 300), ("rle", 0), ("dictionary", 128)):
                values = rng.integers(0, 10, size=size).astype(np.int64)
                written.append(write_segment(handle, values, encoding))
        recovered = scan_footers(path)
        assert recovered == written

    def test_recovered_metas_decode(self, tmp_path):
        path = os.path.join(tmp_path, "col.col")
        values = np.arange(1000, dtype=np.int64)
        with open(path, "wb") as handle:
            write_segment(handle, values[:600], "auto")
            write_segment(handle, values[600:], "auto")
        parts = [
            np.asarray(read_segment(path, meta, values.dtype))
            for meta in scan_footers(path)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), values)

    def test_empty_file(self, tmp_path):
        path = os.path.join(tmp_path, "col.col")
        open(path, "wb").close()
        assert scan_footers(path) == []

    def test_bad_magic_raises(self, tmp_path):
        path = os.path.join(tmp_path, "col.col")
        with open(path, "wb") as handle:
            write_segment(handle, np.arange(10, dtype=np.int64))
            handle.write(b"JUNK")
        with pytest.raises(StorageError, match="magic"):
            scan_footers(path)

    def test_truncated_trailer_raises(self, tmp_path):
        path = os.path.join(tmp_path, "col.col")
        with open(path, "wb") as handle:
            handle.write(MAGIC)  # magic with no room for a trailer
        with pytest.raises(StorageError, match="truncated"):
            scan_footers(path)

    def test_overrunning_footer_raises(self, tmp_path):
        path = os.path.join(tmp_path, "col.col")
        with open(path, "wb") as handle:
            handle.write(b"{}")
            handle.write(struct.pack("<I", 999))  # footer larger than file
            handle.write(MAGIC)
        with pytest.raises(StorageError, match="overruns"):
            scan_footers(path)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = {
            "format_version": FORMAT_VERSION,
            "num_rows": 10,
            "segment_rows": 4,
            "statistics_version": 1,
            "columns": [],
        }
        write_manifest(str(tmp_path), manifest)
        assert read_manifest(str(tmp_path)) == manifest

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StorageError, match="MANIFEST"):
            read_manifest(str(tmp_path))

    def test_future_version_rejected(self, tmp_path):
        write_manifest(
            str(tmp_path),
            {"format_version": FORMAT_VERSION + 1, "columns": []},
        )
        with pytest.raises(StorageError, match="format version"):
            read_manifest(str(tmp_path))
