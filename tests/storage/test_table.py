"""Tables: construction, projection, sorting, equality."""

import numpy as np
import pytest

from repro.errors import ColumnError, SchemaError
from repro.storage import Column, DataType, Schema, Table


class TestConstruction:
    def test_from_arrays_preserves_order(self):
        table = Table.from_arrays({"b": [1, 2], "a": [3, 4]})
        assert table.schema.names == ("b", "a")

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ColumnError):
            Table.from_arrays({"a": [1, 2], "b": [1]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_from_rows_roundtrip(self):
        schema = Schema.of(x=DataType.INT64, y=DataType.INT64)
        rows = [(1, 10), (2, 20), (3, 30)]
        table = Table.from_rows(schema, rows)
        assert table.to_rows() == rows

    def test_empty(self):
        table = Table.empty(Schema.of(x=DataType.INT32))
        assert table.num_rows == 0
        assert table["x"].dtype == np.int32


class TestAccess:
    def test_column_lookup(self, small_table):
        assert list(small_table["k"]) == [3, 1, 2, 1, 3, 3]

    def test_missing_column(self, small_table):
        with pytest.raises(SchemaError, match="no column"):
            small_table.column("zzz")

    def test_len(self, small_table):
        assert len(small_table) == 6


class TestTransforms:
    def test_project(self, small_table):
        projected = small_table.project(["v"])
        assert projected.schema.names == ("v",)
        assert projected.num_rows == 6

    def test_rename(self, small_table):
        renamed = small_table.rename({"k": "key"})
        assert renamed.schema.names == ("key", "v")
        assert np.array_equal(renamed["key"], small_table["k"])

    def test_qualified(self, small_table):
        qualified = small_table.qualified("T")
        assert qualified.schema.names == ("T.k", "T.v")

    def test_take(self, small_table):
        taken = small_table.take(np.array([5, 0]))
        assert taken.to_rows() == [(3, 60), (3, 10)]

    def test_slice_is_zero_copy(self, small_table):
        sliced = small_table.slice(1, 3)
        assert sliced.to_rows() == [(1, 20), (2, 30)]
        assert sliced["k"].base is not None  # a view, not a copy

    def test_slice_clamps(self, small_table):
        assert small_table.slice(4, 100).num_rows == 2
        assert small_table.slice(-5, 2).num_rows == 2

    def test_sort_by_single(self, small_table):
        sorted_table = small_table.sort_by(["k"])
        assert list(sorted_table["k"]) == [1, 1, 2, 3, 3, 3]

    def test_sort_by_is_stable_lexicographic(self):
        table = Table.from_arrays(
            {"a": [2, 1, 2, 1], "b": [9, 8, 7, 6]}
        )
        result = table.sort_by(["a", "b"])
        assert result.to_rows() == [(1, 6), (1, 8), (2, 7), (2, 9)]


class TestEquality:
    def test_equals_exact(self, small_table):
        clone = Table.from_arrays(
            {"k": small_table["k"].copy(), "v": small_table["v"].copy()}
        )
        assert small_table.equals(clone)

    def test_equals_unordered(self, small_table):
        shuffled = small_table.take(np.array([5, 4, 3, 2, 1, 0]))
        assert not small_table.equals(shuffled)
        assert small_table.equals_unordered(shuffled)

    def test_unordered_detects_multiset_difference(self):
        a = Table.from_arrays({"x": [1, 1, 2]})
        b = Table.from_arrays({"x": [1, 2, 2]})
        assert not a.equals_unordered(b)


class TestPretty:
    def test_pretty_contains_data(self, small_table):
        text = small_table.pretty()
        assert "k" in text and "60" in text

    def test_pretty_truncates(self):
        table = Table.from_arrays({"x": np.arange(100)})
        text = table.pretty(limit=3)
        assert "97 more rows" in text
