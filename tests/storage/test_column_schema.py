"""Columns, schemas, and logical types."""

import numpy as np
import pytest

from repro.errors import ColumnError, SchemaError
from repro.storage import Column, ColumnSpec, DataType, Schema


class TestDataType:
    def test_numpy_mapping_roundtrip(self):
        for member in DataType:
            assert DataType.from_numpy(member.numpy_dtype) is member

    def test_promotion_of_exotic_widths(self):
        assert DataType.from_numpy(np.int8) is DataType.INT64
        assert DataType.from_numpy(np.float32) is DataType.FLOAT64
        assert DataType.from_numpy(np.uint16) is DataType.UINT32

    def test_unsupported_dtype(self):
        with pytest.raises(ColumnError):
            DataType.from_numpy(np.dtype("U5"))

    def test_byte_width(self):
        assert DataType.INT32.byte_width == 4
        assert DataType.INT64.byte_width == 8

    def test_is_integer(self):
        assert DataType.UINT32.is_integer
        assert not DataType.FLOAT64.is_integer
        assert not DataType.BOOL.is_integer


class TestColumn:
    def test_backing_array_is_readonly(self):
        column = Column("x", [1, 2, 3])
        with pytest.raises(ValueError):
            column.values[0] = 99

    def test_statistics_cached(self):
        column = Column("x", [3, 1, 2])
        assert column.statistics is column.statistics

    def test_renamed_shares_data(self):
        column = Column("x", [1, 2])
        renamed = column.renamed("y")
        assert renamed.name == "y"
        assert renamed.values is column.values

    def test_rejects_2d(self):
        with pytest.raises(ColumnError):
            Column("x", np.zeros((2, 2)))

    def test_rejects_empty_name(self):
        with pytest.raises(ColumnError):
            Column("", [1])

    def test_take(self):
        column = Column("x", [10, 20, 30])
        assert list(column.take(np.array([2, 0])).values) == [30, 10]

    def test_equals(self):
        assert Column("x", [1, 2]).equals(Column("x", [1, 2]))
        assert not Column("x", [1, 2]).equals(Column("y", [1, 2]))
        assert not Column("x", [1, 2]).equals(Column("x", [1, 3]))


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64)
        assert schema.names == ("a", "b")
        assert schema["b"].dtype is DataType.FLOAT64
        assert schema.position("b") == 1

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnSpec("a", DataType.INT64)] * 2)

    def test_missing_lookup(self):
        schema = Schema.of(a=DataType.INT64)
        with pytest.raises(SchemaError):
            schema["b"]
        with pytest.raises(SchemaError):
            schema.position("b")

    def test_project(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.INT64, c=DataType.INT64)
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_qualified(self):
        schema = Schema.of(a=DataType.INT64).qualified("T")
        assert schema.names == ("T.a",)

    def test_concat_conflict(self):
        a = Schema.of(x=DataType.INT64)
        with pytest.raises(SchemaError):
            a.concat(a)

    def test_equality_and_hash(self):
        a = Schema.of(x=DataType.INT64)
        b = Schema.of(x=DataType.INT64)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.of(x=DataType.INT32)
