"""Span tracing: nesting, misuse errors, and export round-trips."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import Span, Tracer


class TestNesting:
    def test_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration <= outer.duration
        assert inner.start >= outer.start


class TestMisuse:
    def test_end_unstarted_span_raises(self):
        span = Span("orphan")
        with pytest.raises(ObservabilityError, match="never started"):
            span.end()

    def test_double_end_raises(self):
        tracer = Tracer()
        span = tracer.span("s")
        span.end()
        with pytest.raises(ObservabilityError, match="already ended"):
            span.end()

    def test_exception_tags_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.tags["error"] == "ValueError"
        assert span.duration is not None  # still recorded


class TestExport:
    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("work", table="R", rows=42):
            pass
        spans = json.loads(tracer.export_json())["spans"]
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "work"
        assert record["tags"] == {"table": "R", "rows": 42}
        assert record["duration_s"] >= 0.0
        assert record["parent_id"] is None

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        document = json.loads(tracer.export_chrome_trace())
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        by_name = {event["name"]: event for event in events}
        # Microsecond timestamps preserve the nesting.
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_reset_clears(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.finished_spans == []
        with tracer.span("t") as span:
            pass
        assert span.span_id == 1  # ids restart


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.set_tag("k", "v")
        assert tracer.finished_spans == []
        assert json.loads(tracer.export_chrome_trace())["traceEvents"] == []
