"""Thread-safety stress: concurrent metrics and tracing must not lose
updates or corrupt span stacks.

Both :class:`MetricsRegistry` and :class:`Tracer` are advertised as
thread-safe (sharded execution and the optimiser report into the same
process-wide handles). These tests hammer them from many threads and
assert *exact* totals — a single lost increment or an unbalanced span
stack fails deterministically.
"""

import threading

from repro.obs import MetricsRegistry, Tracer

NUM_THREADS = 8
OPS_PER_THREAD = 2_000


def _run_in_threads(target) -> None:
    barrier = threading.Barrier(NUM_THREADS)

    def runner(index: int) -> None:
        barrier.wait()  # maximise interleaving: everyone starts together
        target(index)

    threads = [
        threading.Thread(target=runner, args=(index,))
        for index in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsUnderContention:
    def test_counter_increments_are_exact(self):
        metrics = MetricsRegistry(enabled=True)
        counter = metrics.counter("stress.ops")

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                counter.inc()

        _run_in_threads(work)
        assert counter.value == NUM_THREADS * OPS_PER_THREAD

    def test_concurrent_exist_ok_registration_shares_one_counter(self):
        metrics = MetricsRegistry(enabled=True)

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                metrics.counter("stress.shared", exist_ok=True).inc()

        _run_in_threads(work)
        assert metrics.get("stress.shared").value == (
            NUM_THREADS * OPS_PER_THREAD
        )

    def test_histogram_observation_count_is_exact(self):
        metrics = MetricsRegistry(enabled=True)
        histogram = metrics.histogram("stress.h", buckets=(1.0, 10.0, 100.0))

        def work(index: int) -> None:
            for op in range(OPS_PER_THREAD):
                histogram.observe(float(op % 200))

        _run_in_threads(work)
        total = NUM_THREADS * OPS_PER_THREAD
        assert histogram.count == total
        assert sum(histogram.bucket_counts) == total
        expected_sum = NUM_THREADS * sum(
            float(op % 200) for op in range(OPS_PER_THREAD)
        )
        assert histogram.sum == expected_sum

    def test_gauge_add_is_exact(self):
        metrics = MetricsRegistry(enabled=True)
        gauge = metrics.gauge("stress.g")

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                gauge.add(1.0)

        _run_in_threads(work)
        assert gauge.value == float(NUM_THREADS * OPS_PER_THREAD)


class TestTracerUnderContention:
    def test_spans_balance_per_thread(self):
        tracer = Tracer(enabled=True)
        depth = 4
        rounds = OPS_PER_THREAD // depth

        def work(index: int) -> None:
            for __ in range(rounds):
                with tracer.span(f"outer-{index}"):
                    for level in range(depth - 1):
                        with tracer.span(f"inner-{index}-{level}"):
                            pass

        _run_in_threads(work)
        spans = tracer.finished_spans
        assert len(spans) == NUM_THREADS * rounds * depth
        # Every span finished (no dangling stack) with a valid duration.
        assert all(span.duration is not None for span in spans)
        # Parentage never crosses threads: each span's parent, when
        # present, lives on the same thread.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id
        # Exactly the roots have no parent.
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == NUM_THREADS * rounds


class TestMorselSchedulerObservability:
    """The morsel scheduler reports into the same process-wide handles
    from pool worker threads: counts must stay exact and span stacks
    balanced when many batches run concurrently."""

    def test_morsel_counter_is_exact_across_concurrent_batches(self):
        from repro.engine.parallel import run_morsels
        from repro.obs import capture_observability

        batches = 16
        tasks_per_batch = 10
        with capture_observability() as (metrics, tracer):

            def submit_batch(index: int) -> None:
                run_morsels(
                    [(lambda i=i: i) for i in range(tasks_per_batch)],
                    workers=4,
                )

            threads = [
                threading.Thread(target=submit_batch, args=(index,))
                for index in range(batches)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert metrics.get("parallel.morsels").value == (
                batches * tasks_per_batch
            )
            spans = [
                span
                for span in tracer.finished_spans
                if span.name == "parallel.morsel"
            ]
            assert len(spans) == batches * tasks_per_batch
            assert all(span.duration is not None for span in spans)

    def test_worker_busy_time_attribution_is_consistent(self):
        from repro.engine.parallel import run_morsels
        from repro.obs import capture_observability

        with capture_observability() as (metrics, __):
            report = run_morsels(
                [(lambda i=i: sum(range(1000))) for i in range(20)], workers=4
            )
            total = metrics.get("worker.busy_seconds").value
            # The process-wide gauge equals the report's busy total, and
            # both decompose into the per-worker gauges exactly.
            assert total == report.busy_seconds
            per_worker = sum(
                value
                for name, value in metrics.snapshot().items()
                if name.startswith("worker.repro-worker")
            )
            assert per_worker == total
