"""Thread-safety stress: concurrent metrics and tracing must not lose
updates or corrupt span stacks.

Both :class:`MetricsRegistry` and :class:`Tracer` are advertised as
thread-safe (sharded execution and the optimiser report into the same
process-wide handles). These tests hammer them from many threads and
assert *exact* totals — a single lost increment or an unbalanced span
stack fails deterministically.
"""

import threading

from repro.obs import MetricsRegistry, Tracer

NUM_THREADS = 8
OPS_PER_THREAD = 2_000


def _run_in_threads(target) -> None:
    barrier = threading.Barrier(NUM_THREADS)

    def runner(index: int) -> None:
        barrier.wait()  # maximise interleaving: everyone starts together
        target(index)

    threads = [
        threading.Thread(target=runner, args=(index,))
        for index in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsUnderContention:
    def test_counter_increments_are_exact(self):
        metrics = MetricsRegistry(enabled=True)
        counter = metrics.counter("stress.ops")

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                counter.inc()

        _run_in_threads(work)
        assert counter.value == NUM_THREADS * OPS_PER_THREAD

    def test_concurrent_exist_ok_registration_shares_one_counter(self):
        metrics = MetricsRegistry(enabled=True)

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                metrics.counter("stress.shared", exist_ok=True).inc()

        _run_in_threads(work)
        assert metrics.get("stress.shared").value == (
            NUM_THREADS * OPS_PER_THREAD
        )

    def test_histogram_observation_count_is_exact(self):
        metrics = MetricsRegistry(enabled=True)
        histogram = metrics.histogram("stress.h", buckets=(1.0, 10.0, 100.0))

        def work(index: int) -> None:
            for op in range(OPS_PER_THREAD):
                histogram.observe(float(op % 200))

        _run_in_threads(work)
        total = NUM_THREADS * OPS_PER_THREAD
        assert histogram.count == total
        assert sum(histogram.bucket_counts) == total
        expected_sum = NUM_THREADS * sum(
            float(op % 200) for op in range(OPS_PER_THREAD)
        )
        assert histogram.sum == expected_sum

    def test_gauge_add_is_exact(self):
        metrics = MetricsRegistry(enabled=True)
        gauge = metrics.gauge("stress.g")

        def work(index: int) -> None:
            for __ in range(OPS_PER_THREAD):
                gauge.add(1.0)

        _run_in_threads(work)
        assert gauge.value == float(NUM_THREADS * OPS_PER_THREAD)


class TestTracerUnderContention:
    def test_spans_balance_per_thread(self):
        tracer = Tracer(enabled=True)
        depth = 4
        rounds = OPS_PER_THREAD // depth

        def work(index: int) -> None:
            for __ in range(rounds):
                with tracer.span(f"outer-{index}"):
                    for level in range(depth - 1):
                        with tracer.span(f"inner-{index}-{level}"):
                            pass

        _run_in_threads(work)
        spans = tracer.finished_spans
        assert len(spans) == NUM_THREADS * rounds * depth
        # Every span finished (no dangling stack) with a valid duration.
        assert all(span.duration is not None for span in spans)
        # Parentage never crosses threads: each span's parent, when
        # present, lives on the same thread.
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id
        # Exactly the roots have no parent.
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == NUM_THREADS * rounds


class TestMorselSchedulerObservability:
    """The morsel scheduler reports into the same process-wide handles
    from pool worker threads: counts must stay exact and span stacks
    balanced when many batches run concurrently."""

    def test_morsel_counter_is_exact_across_concurrent_batches(self):
        from repro.engine.parallel import run_morsels
        from repro.obs import capture_observability

        batches = 16
        tasks_per_batch = 10
        with capture_observability() as (metrics, tracer):

            def submit_batch(index: int) -> None:
                run_morsels(
                    [(lambda i=i: i) for i in range(tasks_per_batch)],
                    workers=4,
                )

            threads = [
                threading.Thread(target=submit_batch, args=(index,))
                for index in range(batches)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert metrics.get("parallel.morsels").value == (
                batches * tasks_per_batch
            )
            spans = [
                span
                for span in tracer.finished_spans
                if span.name == "parallel.morsel"
            ]
            assert len(spans) == batches * tasks_per_batch
            assert all(span.duration is not None for span in spans)

    def test_worker_busy_time_attribution_is_consistent(self):
        from repro.engine.parallel import run_morsels
        from repro.obs import capture_observability

        with capture_observability() as (metrics, __):
            report = run_morsels(
                [(lambda i=i: sum(range(1000))) for i in range(20)], workers=4
            )
            total = metrics.get("worker.busy_seconds").value
            # The process-wide gauge equals the report's busy total, and
            # both decompose into the per-worker gauges exactly.
            assert total == report.busy_seconds
            per_worker = sum(
                value
                for name, value in metrics.snapshot().items()
                if name.startswith("worker.repro-worker")
            )
            assert per_worker == total


class TestTracePropagationUnderContention:
    """N requests executing concurrently must each stamp *their own*
    trace id on every span and query-log row they produce — a single
    cross-request bleed (a span or row tagged with a neighbour's id)
    fails deterministically."""

    def test_no_trace_bleed_across_parallel_sessions(self, tmp_path):
        from repro.datagen import make_join_scenario
        from repro.obs import capture_observability
        from repro.obs.querylog import QueryLog, set_query_log
        from repro.service.session import QueryService, ServiceConfig
        from repro.service.admission import AdmissionConfig

        catalog = make_join_scenario(
            n_r=500, n_s=1_000, num_groups=50, seed=3
        ).build_catalog()
        service = QueryService(
            catalog,
            ServiceConfig(
                admission=AdmissionConfig(
                    max_concurrency=4, max_queue_depth=32
                )
            ),
        )
        log = QueryLog(tmp_path / "bleed.jsonl")
        set_query_log(log)
        requests = 12
        outcomes: dict[int, object] = {}
        try:
            with capture_observability() as (__, tracer):

                def run(index: int) -> None:
                    session = service.session()
                    outcomes[index] = session.execute(
                        # Distinct texts: no accidental dedup anywhere.
                        "SELECT R.A, COUNT(*) FROM R JOIN S "
                        "ON R.ID = S.R_ID "
                        f"WHERE R.A < {100 - index} GROUP BY R.A",
                        trace_id=f"trace-{index:04d}",
                        workers=2,
                    )

                threads = [
                    threading.Thread(target=run, args=(index,))
                    for index in range(requests)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                spans = tracer.finished_spans
        finally:
            set_query_log(None)
            service.shutdown()

        assert len(outcomes) == requests
        # Outcomes carry the ids they were given, one-to-one.
        for index, outcome in outcomes.items():
            assert outcome.trace_id == f"trace-{index:04d}"

        # Every request's lifecycle spans carry exactly its id; no span
        # carries an id that doesn't match its query_id pairing.
        id_pairs = {
            outcome.trace_id: outcome.query_id
            for outcome in outcomes.values()
        }
        lifecycle = ("service.parse", "service.optimize", "service.execute")
        seen: dict[str, set] = {}
        for span in spans:
            trace_id = span.tags.get("trace_id")
            if trace_id is None or not str(trace_id).startswith("trace-"):
                continue
            query_id = span.tags.get("query_id")
            if query_id is not None:
                assert id_pairs[trace_id] == query_id, (
                    f"span {span.name} pairs {trace_id} with {query_id}"
                )
            if span.name in lifecycle:
                seen.setdefault(trace_id, set()).add(span.name)
        for trace_id in id_pairs:
            assert seen[trace_id] == set(lifecycle)

        # Every service log row carries its own id and the row's
        # query_id agrees with the outcome that produced it.
        rows = [
            entry
            for entry in log.entries()
            if entry.get("kind") == "service"
        ]
        assert len(rows) == requests
        for row in rows:
            assert id_pairs[row["trace_id"]] == row["query_id"]
