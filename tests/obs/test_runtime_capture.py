"""Scoped observability: capture_observability must never leak globals."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    capture_observability,
    disable_observability,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    disable_observability()
    yield
    disable_observability()


class TestCaptureObservability:
    def test_yields_fresh_enabled_pair(self):
        with capture_observability() as (metrics, tracer):
            assert metrics.enabled and tracer.enabled
            assert get_metrics() is metrics
            assert get_tracer() is tracer
            metrics.counter("c").inc()
            assert metrics.snapshot() == {"c": 1}

    def test_restores_disabled_defaults_on_exit(self):
        before_metrics, before_tracer = get_metrics(), get_tracer()
        with capture_observability():
            pass
        assert get_metrics() is before_metrics
        assert get_tracer() is before_tracer
        assert not get_metrics().enabled

    def test_restores_previous_live_handles(self):
        mine = set_metrics(MetricsRegistry(enabled=True))
        my_tracer = set_tracer(Tracer(enabled=True))
        with capture_observability() as (inner, __):
            assert inner is not mine
        assert get_metrics() is mine
        assert get_tracer() is my_tracer

    def test_restores_on_exception(self):
        before = get_metrics()
        with pytest.raises(RuntimeError):
            with capture_observability():
                raise RuntimeError("boom")
        assert get_metrics() is before

    def test_nested_captures_unwind_in_order(self):
        with capture_observability() as (outer, __):
            with capture_observability() as (inner, __):
                assert get_metrics() is inner
            assert get_metrics() is outer

    def test_no_cross_capture_contamination(self):
        with capture_observability() as (first, __):
            first.counter("c").inc(5)
        with capture_observability() as (second, __):
            assert second.snapshot() == {}
