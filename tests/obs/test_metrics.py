"""The metrics registry: instruments, thread-safety, rendering."""

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, merge_snapshots


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_threaded_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for __ in range(10_000)]
            )
            for __ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7.0


class TestHistogram:
    def test_bucket_placement(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # 0.5 and 1.0 fall in the <=1.0 bucket; 5.0 in <=10.0; 100 in +Inf.
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.5)

    def test_snapshot_shape(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0])
        histogram.observe(2.0)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"]["+Inf"] == 1

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="increasing"):
            registry.histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(ObservabilityError, match="bucket"):
            registry.histogram("h2", buckets=[])


class TestRegistry:
    def test_double_register_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.counter("x")
        # ...even across kinds.
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("x")

    def test_exist_ok_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        assert registry.counter("x", exist_ok=True) is first
        # exist_ok does not bridge kinds.
        with pytest.raises(ObservabilityError):
            registry.gauge("x", exist_ok=True)

    def test_get_and_missing(self):
        registry = MetricsRegistry()
        counter = registry.counter("present")
        assert registry.get("present") is counter
        assert "present" in registry
        with pytest.raises(ObservabilityError, match="no metric"):
            registry.get("absent")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        assert snap == {"c": 3, "g": 1.5}
        registry.reset()
        assert registry.snapshot() == {"c": 0, "g": 0.0}
        assert registry.names() == ["c", "g"]  # registrations survive reset

    def test_render_text_and_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        text = registry.render_text()
        assert "c = 2" in text
        assert "count=1" in text
        record = json.loads(registry.render_json(run="r1"))
        assert record["metrics"]["c"] == 2
        assert record["run"] == "r1"

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(5)
        assert registry.snapshot() == {}
        assert registry.names() == []
        # Repeated registration never raises when disabled.
        registry.counter("c")


def test_merge_snapshots_sums_scalars():
    merged = merge_snapshots([{"a": 1, "b": 2.5}, {"a": 3, "c": 1}])
    assert merged == {"a": 4, "b": 2.5, "c": 1}


class TestHistogramQuantiles:
    """Approximate p50/p90/p99 by linear interpolation within buckets."""

    def test_uniform_fill_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 2.0, 4.0])
        for __ in range(10):
            histogram.observe(0.5)  # all land in the [0, 1.0] bucket
        # rank q*10 lands inside the first bucket: lower 0.0, upper 1.0.
        assert histogram.quantile(0.5) == pytest.approx(0.5)
        assert histogram.p50 == pytest.approx(0.5)
        assert histogram.p99 == pytest.approx(0.99)

    def test_quantile_spans_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in [0.5] * 5 + [1.5] * 5:
            histogram.observe(value)
        # p50 is the top of the first bucket, p90 interpolates the second.
        assert histogram.quantile(0.5) == pytest.approx(1.0)
        assert histogram.p90 == pytest.approx(1.0 + (9 - 5) / 5 * 1.0)

    def test_overflow_bucket_clamps_to_last_bound(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 2.0])
        histogram.observe(100.0)
        assert histogram.p50 == 2.0
        assert histogram.p99 == 2.0

    def test_empty_histogram_is_zero(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0])
        assert histogram.quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0])
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)
        with pytest.raises(ObservabilityError):
            histogram.quantile(-0.1)

    def test_snapshot_includes_quantiles(self):
        histogram = MetricsRegistry().histogram("h", buckets=[1.0, 2.0])
        histogram.observe(0.5)
        snapshot = histogram.snapshot()
        assert set(snapshot) >= {"count", "sum", "p50", "p90", "p99"}
        assert 0.0 < snapshot["p50"] <= 1.0

    def test_disabled_registry_quantile_is_zero(self):
        registry = MetricsRegistry(enabled=False)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.quantile(0.5) == 0.0
        assert histogram.p99 == 0.0
