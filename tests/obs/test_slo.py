"""SLO tracking: exact windowed percentiles, burn rates, objectives."""

import random
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    SLOTracker,
    percentile,
)
from repro.service.admission import Priority


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def brute_force_percentile(values, q):
    """The nearest-rank definition, written independently."""
    ordered = sorted(values)
    rank = int(round(q * (len(ordered) - 1)))
    rank = max(0, min(rank, len(ordered) - 1))
    return ordered[rank]


class TestObjective:
    def test_budget_is_one_minus_target(self):
        assert SLObjective(1.0, 0.95).budget == pytest.approx(0.05)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ObservabilityError, match="latency"):
            SLObjective(0.0, 0.95)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_targets(self, target):
        with pytest.raises(ObservabilityError, match="target"):
            SLObjective(1.0, target)

    def test_defaults_cover_every_priority(self):
        assert set(DEFAULT_OBJECTIVES) == set(Priority)


class TestPercentile:
    def test_matches_brute_force_on_random_samples(self):
        rng = random.Random(7)
        for size in (1, 2, 3, 10, 101, 999):
            values = [rng.expovariate(5.0) for __ in range(size)]
            for q in (0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0):
                assert percentile(values, q) == brute_force_percentile(
                    values, q
                )

    def test_empty_sample_set_is_typed(self):
        with pytest.raises(ObservabilityError, match="empty"):
            percentile([], 0.5)

    def test_quantile_out_of_range_is_typed(self):
        with pytest.raises(ObservabilityError, match="quantile"):
            percentile([1.0], 1.5)


class TestWindowing:
    def test_samples_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = SLOTracker(window_seconds=60.0, clock=clock)
        tracker.record(Priority.NORMAL, 0.1)
        clock.advance(30.0)
        tracker.record(Priority.NORMAL, 0.2)
        assert tracker.snapshot()["classes"]["NORMAL"]["count"] == 2
        clock.advance(45.0)  # first sample now 75s old, second 45s
        assert tracker.snapshot()["classes"]["NORMAL"]["count"] == 1
        clock.advance(60.0)
        assert tracker.snapshot()["classes"]["NORMAL"]["count"] == 0

    def test_max_samples_bounds_memory(self):
        tracker = SLOTracker(max_samples=10, clock=FakeClock())
        for index in range(100):
            tracker.record(Priority.LOW, float(index))
        assert tracker.snapshot()["classes"]["LOW"]["count"] == 10

    def test_window_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="window_seconds"):
            SLOTracker(window_seconds=0.0)


class TestTrackerPercentiles:
    def test_windowed_percentiles_match_brute_force(self):
        clock = FakeClock()
        tracker = SLOTracker(window_seconds=300.0, clock=clock)
        rng = random.Random(13)
        latencies = []
        for __ in range(500):
            latency = rng.expovariate(3.0)
            latencies.append(latency)
            tracker.record(Priority.NORMAL, latency)
            clock.advance(0.01)
        reported = tracker.percentiles(Priority.NORMAL)
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            assert reported[name] == brute_force_percentile(latencies, q)

    def test_pooled_percentiles_cover_all_classes(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(Priority.HIGH, 0.1)
        tracker.record(Priority.LOW, 0.9)
        pooled = tracker.percentiles()
        assert pooled["p50"] in (0.1, 0.9)
        assert pooled["p99"] == 0.9

    def test_empty_window_reports_zeros(self):
        tracker = SLOTracker(clock=FakeClock())
        assert tracker.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_accepts_wire_integers_for_priority(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(2, 0.01)  # Priority.HIGH over the wire
        assert tracker.snapshot()["classes"]["HIGH"]["count"] == 1


class TestBurnRate:
    def test_clean_window_burns_nothing(self):
        tracker = SLOTracker(clock=FakeClock())
        for __ in range(20):
            tracker.record(Priority.NORMAL, 0.01)
        assert tracker.burn_rate(Priority.NORMAL) == 0.0

    def test_burning_exactly_the_budget_is_rate_one(self):
        # NORMAL default: 95% under 1s — 1 violation in 20 is exactly
        # the 5% budget.
        tracker = SLOTracker(clock=FakeClock())
        for __ in range(19):
            tracker.record(Priority.NORMAL, 0.01)
        tracker.record(Priority.NORMAL, 5.0)
        assert tracker.burn_rate(Priority.NORMAL) == pytest.approx(1.0)

    def test_errors_burn_budget_even_when_fast(self):
        tracker = SLOTracker(clock=FakeClock())
        for __ in range(19):
            tracker.record(Priority.NORMAL, 0.01)
        tracker.record(Priority.NORMAL, 0.01, ok=False)
        assert tracker.burn_rate(Priority.NORMAL) == pytest.approx(1.0)

    def test_all_violations_burns_at_inverse_budget(self):
        tracker = SLOTracker(clock=FakeClock())
        for __ in range(10):
            tracker.record(Priority.NORMAL, 10.0)
        assert tracker.burn_rate(Priority.NORMAL) == pytest.approx(20.0)

    def test_unconfigured_class_is_typed(self):
        tracker = SLOTracker(objectives={}, clock=FakeClock())
        with pytest.raises(ObservabilityError, match="no SLO objective"):
            tracker.burn_rate(Priority.NORMAL)


class TestSnapshot:
    def test_shape_matches_health_consumers(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record(Priority.HIGH, 0.01)
        tracker.record(Priority.NORMAL, 2.0)  # violates the 1s bound
        snapshot = tracker.snapshot()
        assert snapshot["window_seconds"] == tracker.window_seconds
        assert snapshot["total_count"] == 2
        assert set(snapshot["classes"]) == {"HIGH", "NORMAL", "LOW"}
        normal = snapshot["classes"]["NORMAL"]
        assert normal["violations"] == 1
        assert normal["compliance"] == 0.0
        assert snapshot["worst_burn_rate"] == normal["burn_rate"]

    def test_concurrent_recording_is_safe(self):
        tracker = SLOTracker()
        threads = [
            threading.Thread(
                target=lambda: [
                    tracker.record(Priority.NORMAL, 0.01)
                    for __ in range(200)
                ]
            )
            for __ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracker.snapshot()["classes"]["NORMAL"]["count"] == 1600
