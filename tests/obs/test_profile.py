"""QueryProfile: capture, round-trip, folded stacks, and the HTML report."""

import json

import numpy as np
import pytest

from repro.engine.aggregates import count_star
from repro.engine.operators.grouping import GroupBy, GroupingAlgorithm
from repro.engine.operators.scan import TableScan
from repro.errors import ObservabilityError
from repro.obs import (
    PROFILE_SCHEMA_VERSION,
    QueryProfile,
    capture_profile,
    disable_observability,
    get_metrics,
)
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _clean_globals():
    disable_observability()
    yield
    disable_observability()


@pytest.fixture
def plan():
    table = Table.from_arrays(
        {"K": (np.arange(3_000, dtype=np.int64) % 30)}
    )
    return GroupBy(
        TableScan(table),
        key="K",
        aggregates=[count_star()],
        algorithm=GroupingAlgorithm.HG,
    )


class TestCaptureProfile:
    def test_bundles_actuals_spans_and_metrics(self, plan):
        profile = capture_profile(plan, query="SELECT ...")
        assert profile.query == "SELECT ..."
        assert profile.rows_out == 30
        assert profile.wall_seconds > 0
        assert profile.peak_memory_bytes > 0
        assert profile.operators["rows_out"] == 30
        assert profile.operators["children"][0]["rows_out"] == 3_000
        assert any(
            span["name"] == "profile.capture" for span in profile.spans
        )
        assert "query.peak_bytes" in profile.metrics

    def test_does_not_perturb_ambient_observability(self, plan):
        before = get_metrics()
        capture_profile(plan)
        assert get_metrics() is before
        assert not get_metrics().enabled


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, plan):
        profile = capture_profile(plan, query="q")
        clone = QueryProfile.from_dict(
            json.loads(profile.to_json())
        )
        assert clone.query == profile.query
        assert clone.rows_out == profile.rows_out
        assert clone.peak_memory_bytes == profile.peak_memory_bytes
        assert clone.operators == profile.operators
        assert len(clone.spans) == len(profile.spans)

    def test_to_dict_is_a_profile_log_entry(self, plan):
        record = capture_profile(plan).to_dict()
        assert record["kind"] == "profile"
        assert record["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ObservabilityError):
            QueryProfile.from_dict({"schema_version": 999})


class TestFoldedStacks:
    def test_span_stacks_are_semicolon_paths(self, plan):
        profile = capture_profile(plan)
        folded = profile.to_folded_stacks()
        for line in folded.splitlines():
            path, count = line.rsplit(" ", 1)
            assert path
            assert int(count) >= 1

    def test_spanless_profile_folds_the_operator_tree(self, plan):
        profile = capture_profile(plan)
        profile.spans = []
        folded = profile.to_folded_stacks()
        assert any(
            line.startswith("GroupBy;TableScan ")
            for line in folded.splitlines()
        )


class TestHtmlReport:
    def test_report_is_self_contained(self, plan):
        html = capture_profile(plan, query="SELECT 1 < 2").to_html()
        assert html.startswith("<!DOCTYPE html>")
        # No external assets: everything inline.
        assert "http://" not in html and "https://" not in html
        assert "<link" not in html and "src=" not in html
        # The query text is escaped, the operator table present.
        assert "SELECT 1 &lt; 2" in html
        assert "GroupBy" in html

    def test_report_embeds_the_profile_json(self, plan):
        profile = capture_profile(plan)
        html = profile.to_html()
        start = html.index('id="profile-json">') + len('id="profile-json">')
        stop = html.index("</script>", start)
        embedded = json.loads(html[start:stop].replace("<\\/", "</"))
        assert embedded["rows_out"] == profile.rows_out

    def test_render_mentions_memory_and_rows(self, plan):
        text = capture_profile(plan).render()
        assert "peak" in text
        assert "row(s)" in text
