"""The obs.top dashboard: rate computation and pure rendering."""

from repro.obs.top import STAGE_ORDER, poll, rates, render_dashboard


def sample(at, counts, busy=0.0, stage_counts=None, extra_metrics=None):
    metrics = {"worker.busy_seconds": busy}
    for stage, (count, p95) in (stage_counts or {}).items():
        metrics[f"service.stage_seconds.{stage}"] = {
            "count": count,
            "p95": p95,
            "sum": p95 * count,
            "buckets": {"+Inf": count},
        }
    metrics.update(extra_metrics or {})
    return {
        "at": at,
        "health": {
            "state": "accepting",
            "uptime_seconds": 12.0,
            "inflight": 1,
            "queue_depth": 0,
            "counts": counts,
            "plan_cache": {"hit_rate": 0.5, "entries": 2},
            "slo": {
                "window_seconds": 300.0,
                "classes": {
                    "NORMAL": {
                        "count": sum(counts.values()),
                        "p95": 0.02,
                        "compliance": 1.0,
                        "burn_rate": 0.0,
                    }
                },
                "total_count": sum(counts.values()),
                "worst_burn_rate": 0.0,
            },
        },
        "stats": {
            "service": {
                "top_queries": [
                    {
                        "sql": "SELECT 1",
                        "executions": 3,
                        "total_execute_seconds": 0.5,
                    }
                ]
            }
        },
        "metrics": {"metrics": metrics, "kinds": {}},
    }


class TestRates:
    def test_first_poll_reports_zeros(self):
        current = sample(10.0, {"completed": 5})
        assert rates(None, current)["qps"] == 0.0

    def test_qps_is_outcome_delta_over_elapsed(self):
        before = sample(10.0, {"completed": 10, "failed": 2})
        after = sample(12.0, {"completed": 16, "failed": 4})
        deltas = rates(before, after)
        assert deltas["completed"] == 3.0
        assert deltas["failed"] == 1.0
        assert deltas["qps"] == 4.0

    def test_worker_busy_is_busy_seconds_per_wall_second(self):
        before = sample(0.0, {}, busy=1.0)
        after = sample(2.0, {}, busy=4.0)
        assert rates(before, after)["worker_busy"] == 1.5

    def test_counter_reset_clamps_to_zero(self):
        before = sample(0.0, {"completed": 100})
        after = sample(1.0, {"completed": 5})
        assert rates(before, after)["completed"] == 0.0


class TestRender:
    def test_frame_contains_every_panel(self):
        current = sample(
            5.0,
            {"completed": 9, "failed": 1},
            busy=2.0,
            stage_counts={stage: (10, 0.001) for stage in STAGE_ORDER},
            extra_metrics={"worker.repro-worker-0.busy_seconds": 1.25},
        )
        frame = render_dashboard(current, rates(None, current))
        assert "state accepting" in frame
        assert "uptime 0:00:12" in frame
        for stage in STAGE_ORDER:
            assert stage in frame
        assert "NORMAL" in frame
        assert "worst burn rate" in frame
        assert "repro-worker-0" in frame
        assert "SELECT 1" in frame

    def test_empty_sample_renders_without_crashing(self):
        empty = {"health": {}, "stats": {}, "metrics": {}, "at": 0.0}
        frame = render_dashboard(empty, rates(None, empty))
        assert "repro top" in frame
        assert "(no stage samples yet)" in frame

    def test_long_sql_is_truncated(self):
        current = sample(0.0, {})
        current["stats"]["service"]["top_queries"][0]["sql"] = "X" * 200
        frame = render_dashboard(current, rates(None, current))
        line = next(l for l in frame.splitlines() if "XXX" in l)
        assert len(line) < 100
        assert "..." in line


class TestPollShape:
    def test_poll_uses_the_three_telemetry_ops(self):
        class FakeClient:
            def health(self):
                return {"state": "accepting"}

            def stats(self):
                return {"service": {}}

            def metrics(self):
                return {"metrics": {}, "kinds": {}}

        got = poll(FakeClient())
        assert set(got) == {"at", "health", "stats", "metrics"}
        assert got["health"]["state"] == "accepting"


class TestSentinelPane:
    def test_alerts_pane_renders_counts_and_recent(self):
        current = sample(0.0, {})
        current["health"]["sentinel"] = {
            "enabled": True,
            "total": 3,
            "plan_flip": 1,
            "latency_drift": 2,
            "qerror_drift": 0,
            "fingerprints": 4,
            "fresh_critical": True,
            "recent": [
                {
                    "kind": "plan_flip",
                    "severity": "critical",
                    "spec_fingerprint": "abcdef0123456789",
                    "message": "plan h1 -> h2 (catalog v1 -> v2, "
                    "cost 10.0 -> 50.0, x5.00)",
                }
            ],
        }
        frame = render_dashboard(current, rates(None, current))
        assert "sentinel" in frame
        assert "critical LIVE" in frame
        assert "plan_flip" in frame
        assert "abcdef0123" in frame

    def test_no_sentinel_section_renders_without_pane(self):
        current = sample(0.0, {})
        frame = render_dashboard(current, rates(None, current))
        assert "sentinel" not in frame


class TestOptimiserPane:
    OPTIMIZER_METRICS = {
        "optimizer.optimizations": 4.0,
        "optimizer.candidates_generated": 48.0,
        "optimizer.pruned_dominated": 20.0,
        "optimizer.closures": 6.0,
        "optimizer.search.displaced": 4.0,
        "optimizer.search.truncated": 2.0,
        "optimizer.search.traced": 1.0,
    }

    def test_rates_cover_search_metrics(self):
        before = sample(0.0, {"completed": 0}, extra_metrics={
            name: 0.0 for name in self.OPTIMIZER_METRICS
        })
        after = sample(2.0, {"completed": 4},
                       extra_metrics=self.OPTIMIZER_METRICS)
        deltas = rates(before, after)
        assert deltas["searches"] == 2.0
        assert deltas["candidates"] == 24.0
        assert deltas["traced"] == 0.5

    def test_pane_renders_rates_and_prune_share(self):
        current = sample(2.0, {"completed": 4},
                         extra_metrics=self.OPTIMIZER_METRICS)
        frame = render_dashboard(current, rates(None, current))
        assert "optimiser" in frame
        assert "searches/s" in frame
        # pruned share = (20 + 4 + 2) / 48 of generated candidates.
        assert "54.2%" in frame

    def test_no_pane_before_the_first_search(self):
        current = sample(2.0, {"completed": 4})
        frame = render_dashboard(current, rates(None, current))
        assert "optimiser" not in frame
