"""Prometheus exposition: render → parse round trips and validation."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs.exposition import (
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("service.completed").inc(7)
    registry.gauge("service.queue_depth").set(3)
    histogram = registry.histogram("service.query_seconds", DEFAULT_BUCKETS)
    histogram.observe(0.004, trace_id="abc123")
    histogram.observe(0.250)
    histogram.observe(30.0)
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert (
            sanitize_metric_name("service.queue_depth")
            == "repro_service_queue_depth"
        )

    def test_illegal_characters_dropped(self):
        name = sanitize_metric_name("weird metric!@#name")
        assert parse_prometheus(f"{name} 1\n") == {name: {(): 1.0}}

    def test_custom_prefix(self):
        assert sanitize_metric_name("x", prefix="dqo") == "dqo_x"


class TestRender:
    def test_counter_gets_total_suffix_and_type(self, registry):
        text = render_prometheus(registry.snapshot(), kinds=registry.kinds())
        assert "# TYPE repro_service_completed_total counter" in text
        assert "repro_service_completed_total 7" in text

    def test_gauge_without_kinds_stays_gauge(self, registry):
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative_with_inf(self, registry):
        parsed = parse_prometheus(
            render_prometheus(registry.snapshot(), kinds=registry.kinds())
        )
        buckets = parsed["repro_service_query_seconds_bucket"]
        inf = buckets[(("le", "+Inf"),)]
        assert inf == 3.0
        assert parsed["repro_service_query_seconds_count"][()] == 3.0
        values = [buckets[key] for key in sorted(buckets)]
        assert all(b >= 0 for b in values)

    def test_exemplar_rides_on_a_covering_bucket(self, registry):
        text = render_prometheus(registry.snapshot(), kinds=registry.kinds())
        exemplar_lines = [
            line for line in text.splitlines() if 'trace_id="abc123"' in line
        ]
        assert len(exemplar_lines) == 1
        assert "repro_service_query_seconds_bucket" in exemplar_lines[0]

    def test_disabled_snapshot_renders_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("ignored", exist_ok=True)
        assert render_prometheus(registry.snapshot()) == ""

    def test_round_trip_parses_clean(self, registry):
        text = render_prometheus(registry.snapshot(), kinds=registry.kinds())
        parsed = parse_prometheus(text)
        assert "repro_service_completed_total" in parsed
        assert "repro_service_queue_depth" in parsed


class TestParseRejectsMalformed:
    def test_bad_metric_name(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            parse_prometheus("9starts_with_digit 1\n")

    def test_non_numeric_value(self):
        with pytest.raises(ObservabilityError, match="non-numeric"):
            parse_prometheus("metric_name not_a_number\n")

    def test_unquoted_label(self):
        with pytest.raises(ObservabilityError, match="malformed labels"):
            parse_prometheus('m{le=bad} 1\n')

    def test_bad_type_comment(self):
        with pytest.raises(ObservabilityError, match="bad TYPE"):
            parse_prometheus("# TYPE m flavour\n")

    def test_non_cumulative_histogram_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ObservabilityError, match="not cumulative"):
            parse_prometheus(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n"
        )
        with pytest.raises(ObservabilityError, match="_count"):
            parse_prometheus(text)

    def test_comments_and_blank_lines_skipped(self):
        assert parse_prometheus("\n# just a comment\n\nm 1\n") == {
            "m": {(): 1.0}
        }


class TestCli:
    def test_snapshot_file_renders_and_validates(self, tmp_path, registry):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps(
                {"metrics": registry.snapshot(), "kinds": registry.kinds()}
            ),
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.exposition",
             "--snapshot", str(path)],
            capture_output=True,
            text=True,
            cwd=str(Path(__file__).resolve().parents[2]),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        parsed = parse_prometheus(result.stdout)
        assert "repro_service_completed_total" in parsed

    def test_missing_snapshot_file_fails_cleanly(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.obs.exposition",
             "--snapshot", str(tmp_path / "absent.json")],
            capture_output=True,
            text=True,
            cwd=str(Path(__file__).resolve().parents[2]),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
