"""The plan-regression sentinel: baselines, detectors, the live tail."""

import json
import threading

import pytest

from repro.obs import disable_observability
from repro.obs.querylog import QueryLog, set_query_log
from repro.obs.sentinel import (
    BASELINE_SCHEMA_VERSION,
    BaselineStore,
    Sentinel,
    SentinelConfig,
    SentinelThread,
    robust_mad,
    robust_median,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    disable_observability()
    set_query_log(None)
    yield
    set_query_log(None)
    disable_observability()


def optimize_row(
    spec_fp="fp-a",
    plan_hash="h1",
    cost=100.0,
    catalog_version=1,
    deep=True,
    workers=1,
    **extra,
):
    row = {
        "kind": "optimize",
        "spec_fingerprint": spec_fp,
        "plan_hash": plan_hash,
        "cost": cost,
        "catalog_version": catalog_version,
        "deep": deep,
        "workers": workers,
        "ts": 1000.0,
    }
    row.update(extra)
    return row


def service_row(
    spec_fp="fp-a",
    plan_hash="h1",
    execute_seconds=0.010,
    trace_id="",
    status="ok",
    **extra,
):
    row = {
        "kind": "service",
        "spec_fingerprint": spec_fp,
        "plan_hash": plan_hash,
        "execute_seconds": execute_seconds,
        "wall_seconds": execute_seconds + 0.001,
        "status": status,
        "trace_id": trace_id,
        "ts": 1000.0,
    }
    row.update(extra)
    return row


class TestRobustStats:
    def test_median_odd_and_even(self):
        assert robust_median([3.0, 1.0, 2.0]) == 2.0
        assert robust_median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_mad_is_robust_to_one_outlier(self):
        values = [1.0] * 10 + [100.0]
        assert robust_mad(values) == 0.0
        assert robust_median(values) == 1.0


class TestBaselineStore:
    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "baselines.json"
        store = BaselineStore(path)
        store.commit_plan("fp", "deep/w1", {"plan_hash": "h1", "cost": 5.0})
        store.absorb_latency("fp", [0.01, 0.02], alpha=0.2)
        store.absorb_qerrors("fp", "join", [1.5, 2.0])
        store.index_plan("h1", "fp")
        store.save()

        reloaded = BaselineStore(path)
        assert reloaded.peek("fp")["plans"]["deep/w1"]["plan_hash"] == "h1"
        median, mad, count = reloaded.latency_baseline("fp")
        assert count == 2 and median == pytest.approx(0.015)
        assert reloaded.spec_for_plan("h1") == "fp"
        assert reloaded.qerror_baseline("fp", "join") == (
            pytest.approx(1.75),
            2,
        )

    def test_schema_mismatch_loads_empty(self, tmp_path):
        path = tmp_path / "baselines.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": BASELINE_SCHEMA_VERSION + 1,
                    "fingerprints": {"fp": {}},
                }
            )
        )
        assert len(BaselineStore(path)) == 0

    def test_corrupt_file_loads_empty(self, tmp_path):
        path = tmp_path / "baselines.json"
        path.write_text("{not json")
        assert len(BaselineStore(path)) == 0

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "baselines.json"
        store = BaselineStore(path)
        store.absorb_latency("fp", [0.01], alpha=0.2)
        store.save()
        leftovers = [
            p for p in tmp_path.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []
        assert (
            json.loads(path.read_text())["schema_version"]
            == BASELINE_SCHEMA_VERSION
        )

    def test_reservoir_is_bounded(self):
        store = BaselineStore(reservoir=8)
        store.absorb_latency("fp", [float(i) for i in range(100)], alpha=0.2)
        record = store.peek("fp")
        assert len(record["latency"]["samples"]) == 8
        assert record["latency"]["count"] == 100

    def test_concurrent_writers_never_tear_the_file(self, tmp_path):
        path = tmp_path / "baselines.json"

        def writer(tag):
            store = BaselineStore(path)
            for i in range(20):
                store.absorb_latency(f"fp-{tag}", [0.01 * i], alpha=0.2)
                store.save()

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Whatever won, the file parses and carries the right schema.
        final = json.loads(path.read_text())
        assert final["schema_version"] == BASELINE_SCHEMA_VERSION


class TestPlanFlipDetection:
    def test_first_sighting_is_silent(self):
        sentinel = Sentinel()
        assert sentinel.observe([optimize_row()]) == []
        assert sentinel.counts()["plan_flip"] == 0

    def test_flip_alerts_once_with_both_hashes(self):
        sentinel = Sentinel()
        sentinel.observe([optimize_row(plan_hash="h1", catalog_version=1)])
        alerts = sentinel.observe(
            [
                optimize_row(
                    plan_hash="h2", catalog_version=2, cost=150.0
                )
            ]
        )
        assert [a.kind for a in alerts] == ["plan_flip"]
        alert = alerts[0]
        assert alert.old_plan_hash == "h1"
        assert alert.new_plan_hash == "h2"
        assert alert.old_catalog_version == 1
        assert alert.new_catalog_version == 2
        assert alert.severity == "critical"  # cost 100 -> 150 > 1.1x
        # Repetitions of the new plan do not re-alert.
        assert sentinel.observe([optimize_row(plan_hash="h2")]) == []

    def test_cheaper_flip_is_informational(self):
        sentinel = Sentinel()
        sentinel.observe([optimize_row(plan_hash="h1", cost=100.0)])
        alerts = sentinel.observe(
            [optimize_row(plan_hash="h2", cost=50.0)]
        )
        assert alerts[0].severity == "info"

    def test_mode_change_is_not_a_flip(self):
        """A degraded (shallow/serial) plan is a different lane, not a
        regression of the governed plan."""
        sentinel = Sentinel()
        sentinel.observe([optimize_row(plan_hash="h1", deep=True, workers=4)])
        alerts = sentinel.observe(
            [optimize_row(plan_hash="h9", deep=False, workers=1)]
        )
        assert alerts == []

    def test_alert_serialises(self):
        sentinel = Sentinel()
        sentinel.observe([optimize_row(plan_hash="h1")])
        (alert,) = sentinel.observe([optimize_row(plan_hash="h2")])
        payload = alert.to_dict()
        assert payload["kind"] == "plan_flip"
        json.dumps(payload)  # JSON-friendly end to end


class TestLatencyDrift:
    def make_baseline(self, sentinel, n=32, seconds=0.010):
        sentinel.observe(
            [service_row(execute_seconds=seconds) for _ in range(n)]
        )

    def test_stable_latency_never_alerts(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=8))
        for _ in range(6):
            alerts = sentinel.observe(
                [service_row(execute_seconds=0.010) for _ in range(16)]
            )
            assert alerts == []

    def test_shift_beyond_threshold_alerts_with_exemplars(self):
        config = SentinelConfig(min_samples=8, window=16)
        sentinel = Sentinel(config=config)
        self.make_baseline(sentinel, n=32)
        alerts = sentinel.observe(
            [
                service_row(execute_seconds=0.030, trace_id=f"t{i}")
                for i in range(16)
            ]
        )
        kinds = [a.kind for a in alerts]
        assert "latency_drift" in kinds
        drift = next(a for a in alerts if a.kind == "latency_drift")
        assert drift.ratio == pytest.approx(3.0, rel=0.1)
        assert drift.severity == "critical"  # 3x >= critical ratio
        assert 1 <= len(drift.trace_ids) <= 3

    def test_drift_does_not_poison_baseline(self):
        config = SentinelConfig(min_samples=8, window=16)
        sentinel = Sentinel(config=config)
        self.make_baseline(sentinel, n=32)
        sentinel.observe(
            [service_row(execute_seconds=0.030) for _ in range(16)]
        )
        median, __, __ = sentinel.store.latency_baseline("fp-a")
        assert median == pytest.approx(0.010, rel=0.05)

    def test_single_outlier_does_not_alert(self):
        config = SentinelConfig(min_samples=8, window=16)
        sentinel = Sentinel(config=config)
        self.make_baseline(sentinel, n=32)
        alerts = sentinel.observe(
            [service_row(execute_seconds=0.010) for _ in range(15)]
            + [service_row(execute_seconds=0.500)]
        )
        assert [a for a in alerts if a.kind == "latency_drift"] == []

    def test_failed_rows_are_ignored(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=4))
        alerts = sentinel.observe(
            [
                service_row(execute_seconds=9.0, status="DeadlineExceeded")
                for _ in range(20)
            ]
        )
        assert alerts == []
        assert sentinel.store.latency_baseline("fp-a") == (0.0, 0.0, 0)


class TestQErrorDrift:
    def profile_row(self, qerror, plan_hash="h1"):
        actual = 100
        estimated = actual * qerror
        return {
            "kind": "profile",
            "plan_hash": plan_hash,
            "operators": {
                "operator_kind": "join",
                "estimated_rows": estimated,
                "rows_out": actual,
                "children": [],
            },
            "ts": 1000.0,
        }

    def test_growth_past_envelope_alerts(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=8))
        # Index the plan so bare profile rows attribute to the spec.
        sentinel.observe([optimize_row(plan_hash="h1")])
        sentinel.observe([self.profile_row(1.5) for _ in range(12)])
        alerts = sentinel.observe([self.profile_row(8.0) for _ in range(4)])
        assert [a.kind for a in alerts] == ["qerror_drift"]
        alert = alerts[0]
        assert alert.operator_kind == "join"
        assert alert.spec_fingerprint == "fp-a"
        assert alert.observed == pytest.approx(8.0)

    def test_small_qerror_growth_is_ignored(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=8))
        sentinel.observe([optimize_row(plan_hash="h1")])
        sentinel.observe([self.profile_row(1.1) for _ in range(12)])
        # 2x growth but below the absolute floor: noise, not drift.
        alerts = sentinel.observe([self.profile_row(2.4) for _ in range(4)])
        assert alerts == []

    def test_unattributable_profiles_are_skipped(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=2))
        alerts = sentinel.observe(
            [self.profile_row(50.0, plan_hash="mystery")]
        )
        assert alerts == []


class TestEvaluateLog:
    def test_stable_history_replay_is_quiet(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=8))
        history = [optimize_row()] + [
            service_row(execute_seconds=0.010 + (i % 5) * 0.0002)
            for i in range(240)
        ]
        alerts = sentinel.evaluate_log(history, chunk=32)
        assert alerts == []
        assert sentinel.counts()["evaluated"] >= 240

    def test_seeded_regression_replay_alerts(self):
        sentinel = Sentinel(config=SentinelConfig(min_samples=8, window=16))
        history = (
            [optimize_row(plan_hash="h1", catalog_version=1)]
            + [service_row(execute_seconds=0.010) for _ in range(64)]
            + [
                optimize_row(
                    plan_hash="h2", catalog_version=2, cost=200.0
                )
            ]
            + [
                service_row(plan_hash="h2", execute_seconds=0.040)
                for _ in range(32)
            ]
        )
        alerts = sentinel.evaluate_log(history, chunk=16)
        kinds = {a.kind for a in alerts}
        assert "plan_flip" in kinds
        assert "latency_drift" in kinds

    def test_disabled_sentinel_observes_nothing(self):
        sentinel = Sentinel(config=SentinelConfig(enabled=False))
        assert sentinel.observe([optimize_row()]) == []
        assert len(sentinel.store) == 0


class TestSentinelThread:
    def test_tick_reads_incrementally_and_dispatches(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        received = []
        sentinel = Sentinel()
        thread = SentinelThread(
            log, sentinel, on_alerts=lambda alerts: received.extend(alerts)
        )
        log.append(optimize_row(plan_hash="h1"))
        assert thread.tick() == []
        log.append(optimize_row(plan_hash="h2"))
        alerts = thread.tick()
        assert [a.kind for a in alerts] == ["plan_flip"]
        assert [a.kind for a in received] == ["plan_flip"]
        # Nothing new: the cursor advanced past consumed rows.
        assert thread.tick() == []

    def test_start_stop_lifecycle(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        thread = SentinelThread(log, Sentinel(), interval_seconds=0.05)
        thread.start()
        assert thread.running
        thread.start()  # idempotent
        thread.stop()
        assert not thread.running

    def test_torn_trailing_line_is_deferred(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = QueryLog(path)
        log.append(optimize_row(plan_hash="h1"))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "optimize", "spec_fing')  # torn write
        sentinel = Sentinel()
        thread = SentinelThread(log, sentinel)
        thread.tick()
        assert len(sentinel.store) == 1
        # The writer finishes the line; the next tick picks it up whole.
        with path.open("a", encoding="utf-8") as handle:
            handle.write(
                'erprint": "fp-b", "plan_hash": "h9", "cost": 1.0, '
                '"catalog_version": 1, "deep": true, "workers": 1}\n'
            )
        thread.tick()
        assert sentinel.store.peek("fp-b") is not None
