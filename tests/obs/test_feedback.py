"""q-error math and the FeedbackStore estimate->actual->refit loop."""

import math

import numpy as np
import pytest

from repro.core.cost.calibrated import (
    CalibratedCostModel,
    Sample,
    _basis,
    fit_coefficients,
)
from repro.core.cost.cardinality import qerror
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.errors import CostModelError
from repro.obs.feedback import FeedbackSample, FeedbackStore
from repro.obs.instrument import OperatorStats


class TestQError:
    def test_perfect_estimate_is_one(self):
        assert qerror(1000.0, 1000) == 1.0

    def test_symmetric_in_direction(self):
        assert qerror(1000.0, 412) == pytest.approx(1000.0 / 412)
        assert qerror(412.0, 1000) == pytest.approx(1000.0 / 412)

    def test_both_zero_is_perfect(self):
        assert qerror(0.0, 0) == 1.0

    def test_one_side_zero_is_unbounded(self):
        assert qerror(0.0, 10) == math.inf
        assert qerror(10.0, 0) == math.inf

    def test_negative_inputs_clamped(self):
        # Negative cardinalities cannot occur; clamping keeps the metric
        # total rather than raising mid-report.
        assert qerror(-5.0, -3.0) == 1.0
        assert qerror(-5.0, 10.0) == math.inf

    def test_always_at_least_one(self):
        for est, act in [(1, 2), (7, 3), (1e6, 1e6), (0.5, 0.25)]:
            assert qerror(est, act) >= 1.0


def _stats(plan_op, algorithm, est, act, seconds=0.01, children=()):
    node = OperatorStats(
        name=plan_op,
        description=plan_op,
        rows_out=act,
        estimated_rows=est,
        plan_op=plan_op,
        plan_algorithm=algorithm,
        cumulative_seconds=seconds
        + sum(c.cumulative_seconds for c in children),
        children=list(children),
    )
    return node


class TestFeedbackStore:
    def test_record_plan_skips_estimate_free_nodes(self):
        scan = OperatorStats(name="TableScan", description="scan", rows_out=10)
        root = _stats("group_by", "HG", 5.0, 5, children=(scan,))
        store = FeedbackStore()
        assert store.record_plan(root) == 1
        assert len(store) == 1
        assert store.samples()[0].operator_kind == "group_by[HG]"

    def test_rows_in_comes_from_children(self):
        scan = _stats("scan", "", 100.0, 100)
        root = _stats("group_by", "SPHG", 20.0, 18, children=(scan,))
        store = FeedbackStore()
        store.record_plan(root)
        group_sample = [
            s for s in store.samples() if s.plan_op == "group_by"
        ][0]
        assert group_sample.rows_in == 100
        assert group_sample.actual_rows == 18

    def test_qerror_summary_by_kind(self):
        store = FeedbackStore()
        store.record(
            FeedbackSample("join[HJ]", "join", "HJ", 100.0, 50, 150, 50.0, 0.1)
        )
        store.record(
            FeedbackSample("join[HJ]", "join", "HJ", 100.0, 100, 200, 50.0, 0.1)
        )
        store.record(
            FeedbackSample("scan", "scan", "", 0.0, 7, 0, 0.0, 0.0)
        )
        summary = store.qerror_summary()
        assert summary["join[HJ]"]["count"] == 2
        assert summary["join[HJ]"]["mean"] == pytest.approx(1.5)
        assert summary["join[HJ]"]["max"] == pytest.approx(2.0)
        # The unbounded scan miss shows up in max but not the mean.
        assert summary["scan"]["max"] == math.inf
        assert len(store.render().splitlines()) == 3

    def test_grouping_samples_use_measured_groups(self):
        store = FeedbackStore()
        scan = _stats("scan", "", 1000.0, 1000)
        root = _stats(
            "group_by", "HG", 64.0, 80, seconds=0.25, children=(scan,)
        )
        store.record_plan(root)
        samples = store.grouping_samples()
        assert list(samples) == [GroupingAlgorithm.HG]
        (sample,) = samples[GroupingAlgorithm.HG]
        assert sample.rows == 1000  # measured input, not the estimate
        assert sample.groups == 80  # measured output groups
        assert sample.seconds == pytest.approx(0.25)

    def test_joins_not_converted_to_grouping_samples(self):
        store = FeedbackStore()
        store.record(
            FeedbackSample(
                "join[HJ]", "join", "HJ", 100.0, 100, 200, 50.0, 0.1
            )
        )
        assert store.grouping_samples() == {}

    def test_refit_requires_enough_samples(self):
        store = FeedbackStore()
        store.record(
            FeedbackSample(
                "group_by[HG]", "group_by", "HG", 10.0, 10, 100, 10.0, 0.1
            )
        )
        with pytest.raises(CostModelError):
            store.refit()

    def test_refit_roundtrip_into_fit_coefficients(self):
        """Samples generated from known coefficients refit to a model
        whose predictions match the generating ground truth."""
        rng = np.random.default_rng(7)
        true = np.array([0.0, 2e-8, 1e-9, 3e-9])
        store = FeedbackStore()
        grid = [(n, g) for n in (10_000, 50_000, 200_000, 800_000)
                for g in (16, 1024, 65_536)]
        for n, g in grid:
            seconds = float(true @ _basis(n, g)) * (1 + rng.normal(0, 0.01))
            scan = _stats("scan", "", float(n), n)
            store.record_plan(
                _stats(
                    "group_by", "HG", float(g), g,
                    seconds=seconds, children=(scan,),
                )
            )
        model = store.refit()
        assert isinstance(model, CalibratedCostModel)
        for n, g in [(100_000, 256), (400_000, 20_000)]:
            predicted = model.grouping_cost(GroupingAlgorithm.HG, n, g)
            truth = float(true @ _basis(n, g))
            assert predicted == pytest.approx(truth, rel=0.15)

    def test_refit_agrees_with_direct_fit(self):
        store = FeedbackStore()
        raw = []
        for i, (n, g) in enumerate(
            [(1000, 10), (5000, 100), (20000, 500), (80000, 4000), (160000, 8000)]
        ):
            seconds = 1e-8 * n + 2e-9 * n * math.log2(g)
            raw.append(Sample(n, g, seconds))
            scan = _stats("scan", "", float(n), n)
            store.record_plan(
                _stats(
                    "group_by", "SPHG", float(g), g,
                    seconds=seconds, children=(scan,),
                )
            )
        direct = fit_coefficients(raw)
        refit = store.refit().grouping_coefficients[GroupingAlgorithm.SPHG]
        np.testing.assert_allclose(refit, direct, rtol=1e-6, atol=1e-12)

    def test_clear(self):
        store = FeedbackStore()
        store.record(
            FeedbackSample("scan", "scan", "", 1.0, 1, 0, 0.0, 0.0)
        )
        store.clear()
        assert len(store) == 0
