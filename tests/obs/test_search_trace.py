"""The search-trace journal: rings, round-trips, replay, scoping.

The journal's contract has three legs checked here. Bounded memory:
per-class rings drop oldest events and *count* the drops, and the
replay downgrades its ``complete`` verdict accordingly. Fidelity: a
finished trace survives save -> load bit-for-bit, and :func:`replay`
reconstructs the optimiser's verdict (chosen plan, every runner-up's
cause of death) from the journal alone. Zero cost when off: a disabled
trace records nothing and leaves the optimiser's output untouched.
"""

import pytest

from repro import (
    disable_plan_cache,
    enable_plan_cache,
    optimize_dqo,
    plan_query,
)
from repro.core.cost.cardinality import RelationEstimate
from repro.core.optimizer.pruning import DPEntry
from repro.core.plan import PhysicalNode
from repro.core.properties import PropertyVector
from repro.errors import ObservabilityError
from repro.obs.search import (
    SearchTrace,
    TraceEvent,
    get_search_trace,
    load_trace,
    replay,
    set_search_trace,
    trace_search,
)
from repro.obs.search.trace import MAX_CLASSES


def make_entry(cost=1.0, rows=10.0):
    vector = PropertyVector()
    node = PhysicalNode(op="scan", cost=cost, properties=vector)
    return DPEntry(node, cost, vector, RelationEstimate(rows, {}))


@pytest.fixture
def traced_search(join_catalog, paper_query):
    """One real optimisation journalled end to end (plan cache off so
    the search actually runs)."""
    disable_plan_cache()
    try:
        with trace_search() as trace:
            result = optimize_dqo(
                plan_query(paper_query, join_catalog), join_catalog
            )
    finally:
        enable_plan_cache()
    return trace, result


class TestJournalBounds:
    def test_ring_overflow_counts_dropped(self):
        trace = SearchTrace(capacity_per_class=8)
        trace.begin("spec")
        for i in range(20):
            trace.generated("j", make_entry(float(i)))
        summary = trace.summary()
        assert summary["generated"] == 20
        assert summary["dropped"] == 12
        assert len(trace.events("j")) == 8
        # The survivors are the *latest* events (ring, not truncation).
        assert [event.cost for event in trace.events("j")] == [
            float(i) for i in range(12, 20)
        ]

    def test_capacity_floor(self):
        trace = SearchTrace(capacity_per_class=1)  # floored to 8
        trace.begin("spec")
        for i in range(8):
            trace.generated("j", make_entry(float(i)))
        assert trace.summary()["dropped"] == 0

    def test_class_table_is_capped(self):
        trace = SearchTrace(capacity_per_class=8)
        trace.begin("spec")
        for i in range(MAX_CLASSES):
            trace.generated(f"c{i}", make_entry())
        assert len(trace.classes()) == MAX_CLASSES
        trace.generated("one-too-many", make_entry())
        assert len(trace.classes()) == MAX_CLASSES
        assert trace.summary()["dropped"] >= 1

    def test_replay_flags_incomplete_journals(self):
        trace = SearchTrace(capacity_per_class=8)
        trace.begin("spec")
        for i in range(50):
            trace.generated("j", make_entry(float(i)))
        assert replay(trace)["complete"] is False

    def test_payload_is_lazy_until_read(self):
        """The hot loop records a reference; the human-readable strings
        are formatted at read time, never during the search."""
        trace = SearchTrace()
        trace.begin("spec")
        entry = make_entry()
        trace.generated("j", entry)
        raw = trace._pending[0]
        # Hot loop stores a capture tuple holding the entry reference,
        # not a TraceEvent with assigned ids and formatted strings.
        assert not isinstance(raw, TraceEvent)
        assert raw == ("generated", "j", entry)
        assert raw[2] is entry
        (event,) = trace.events("j")
        assert event.source is None
        assert "scan" in event.plan.lower()
        assert event.breakdown["op"] == "scan"
        assert "local_cost" in event.breakdown


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path, traced_search):
        trace, result = traced_search
        assert trace.summary()["chosen_fingerprint"] == result.plan_fingerprint
        path = trace.save(tmp_path / "trace.json")
        loaded = load_trace(path)
        assert loaded.to_dict() == trace.to_dict()
        assert loaded.summary() == trace.summary()

    def test_replay_reconstructs_the_verdict(self, traced_search):
        trace, result = traced_search
        rep = replay(trace)
        assert rep["complete"] is True
        assert rep["chosen"]["fingerprint"] == result.plan_fingerprint
        assert rep["candidates"]
        # Every death names its killer.
        for record in rep["deaths"].values():
            assert record["cause"] in ("dominated", "displaced", "truncated")
            assert record["by"] is not None
        # Replay works off the serialised form too.
        assert replay(trace.to_dict())["chosen"] == rep["chosen"]

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ObservabilityError, match="schema"):
            SearchTrace.from_dict({"schema_version": 99})
        with pytest.raises(ObservabilityError):
            SearchTrace.from_dict("not a dict")

    def test_unreadable_files_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError):
            load_trace(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            load_trace(bad)

    def test_finish_autosaves_with_save_dir(self, tmp_path):
        trace = SearchTrace(save_dir=tmp_path)
        trace.begin("spec")
        trace.generated("j", make_entry())
        stamp = trace.finish("abcd1234", 1.0)
        assert stamp["path"] is not None and stamp["path"].endswith(".json")
        assert load_trace(stamp["path"]).chosen_fingerprint == "abcd1234"
        assert stamp["summary"]["generated"] == 1


class TestScoping:
    def test_disabled_trace_is_ignored_by_the_optimiser(
        self, join_catalog, paper_query
    ):
        trace = SearchTrace()
        trace.enabled = False
        set_search_trace(trace)
        disable_plan_cache()
        try:
            result = optimize_dqo(
                plan_query(paper_query, join_catalog), join_catalog
            )
        finally:
            enable_plan_cache()
            set_search_trace(None)
        assert trace.summary()["events"] == 0
        assert result.search_trace is None

    def test_trace_search_restores_the_previous_handle(self):
        outer = SearchTrace()
        set_search_trace(outer)
        try:
            with trace_search() as inner:
                assert get_search_trace() is inner
            assert get_search_trace() is outer
        finally:
            set_search_trace(None)

    def test_live_trace_stamps_the_result(self, traced_search):
        trace, result = traced_search
        assert result.search_trace is not None
        assert result.search_trace["summary"]["generated"] > 0
        assert (
            result.search_trace["summary"]["chosen_fingerprint"]
            == result.plan_fingerprint
        )
