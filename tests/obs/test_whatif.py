"""What-if overlays, EXPLAIN WHY, and the CLI's overlay grammar.

The soundness claim under test: a hypothetical plan produced through an
overlay is exactly the plan direct re-optimisation over the patched
catalog would produce — the overlay is a lens, not a second optimiser.
"""

import pytest

from repro import optimize_dqo, plan_query
from repro.datagen import Sortedness, make_join_scenario
from repro.obs.search import (
    StatisticsOverlay,
    explain_why,
    render_frontier,
    sensitivity_frontier,
    whatif,
)
from repro.obs.search.__main__ import parse_overlay


class TestWhatIf:
    def test_report_structure(self, join_catalog, paper_query):
        report = whatif(
            paper_query, join_catalog, StatisticsOverlay().set_shuffled("S")
        )
        assert report.baseline["fingerprint"]
        assert report.hypothetical["fingerprint"]
        assert report.cost_ratio > 0
        assert "identical" in report.diff
        assert report.plan_changed == (
            report.baseline["fingerprint"] != report.hypothetical["fingerprint"]
        )
        payload = report.to_dict()
        assert payload["overlay"]["patches"]
        assert "WHAT IF" in report.render()

    def test_hypothetical_matches_direct_reoptimisation(
        self, join_catalog, paper_query
    ):
        overlay = StatisticsOverlay().set_shuffled("S")
        report = whatif(paper_query, join_catalog, overlay)
        hyp_catalog = overlay.apply(join_catalog)
        direct = optimize_dqo(
            plan_query(paper_query, hyp_catalog), hyp_catalog
        )
        assert report.hypothetical["fingerprint"] == direct.plan_fingerprint

    def test_sortedness_flip_matches_a_truly_unsorted_catalog(self, paper_query):
        """Patching S unsorted must pick the same plan a catalog built
        with genuinely unsorted S would get (acceptance criterion c)."""
        params = dict(n_r=800, n_s=2_000, num_groups=80, seed=3)
        sorted_cat = make_join_scenario(**params).build_catalog()
        unsorted_cat = make_join_scenario(
            s_sortedness=Sortedness.UNSORTED, **params
        ).build_catalog()
        report = whatif(
            paper_query,
            sorted_cat,
            StatisticsOverlay().set_sorted("S", "R_ID", False),
        )
        truth = optimize_dqo(
            plan_query(paper_query, unsorted_cat), unsorted_cat
        )
        assert report.plan_changed
        assert report.hypothetical["fingerprint"] == truth.plan_fingerprint

    def test_empty_overlay_changes_nothing(self, join_catalog, paper_query):
        report = whatif(paper_query, join_catalog, StatisticsOverlay())
        assert not report.plan_changed
        assert report.cost_ratio == pytest.approx(1.0)


class TestSensitivityFrontier:
    def test_probes_cover_key_columns(self, join_catalog, paper_query):
        probes = sensitivity_frontier(
            paper_query, join_catalog, max_scale=4.0
        )
        assert probes
        kinds = {probe.kind for probe in probes}
        assert "sortedness" in kinds and "density" in kinds
        for probe in probes:
            assert probe.baseline_fingerprint
            if probe.flips:
                assert probe.flipped_fingerprint
                assert probe.flipped_fingerprint != probe.baseline_fingerprint
            else:
                assert probe.flipped_fingerprint is None
                assert probe.diff_text == ""
        text = render_frontier(probes)
        assert "STATISTICS SENSITIVITY" in text


class TestExplainWhy:
    def test_names_the_decisive_term(self, join_catalog, paper_query):
        report = explain_why(paper_query, join_catalog)
        assert report.plan_fingerprint
        assert report.decisions
        for decision in report.decisions:
            assert decision.decisive_term
        rendered = report.render()
        assert "EXPLAIN WHY" in rendered


class TestParseOverlay:
    def test_full_grammar(self):
        overlay = parse_overlay(
            [
                "R.cardinality=500",
                "S.shuffled=true",
                "R.ID.sorted=false",
                "R.A.dense=false",
                "R.A.distinct=10",
                "R.ID.index=btree",
            ]
        )
        assert overlay.tables() == ["R", "S"]
        assert len(overlay.index_patches()) == 1
        assert "cardinality" in overlay.describe()

    @pytest.mark.parametrize(
        "spec",
        [
            "R.cardinality",          # no '='
            "R.bogus=1",              # unknown table-level field
            "A.B.C.D=1",              # too many parts
            "R.ID.sorted=maybe",      # not a boolean
            "R.ID.nonsense=true",     # unknown column-level field
        ],
    )
    def test_malformed_specs_exit(self, spec):
        with pytest.raises(SystemExit):
            parse_overlay([spec])
