"""The persistent query log: appends, env gating, and the CLI."""

import json

import numpy as np
import pytest

from repro.engine.aggregates import count_star
from repro.engine.executor import execute, explain_analyze
from repro.engine.operators.grouping import GroupBy, GroupingAlgorithm
from repro.engine.operators.scan import TableScan
from repro.errors import ObservabilityError
from repro.obs import disable_observability
from repro.obs.querylog import (
    ENV_QUERY_LOG,
    QueryLog,
    get_query_log,
    main,
    set_query_log,
    summarise,
)
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _clean_globals(monkeypatch):
    monkeypatch.delenv(ENV_QUERY_LOG, raising=False)
    disable_observability()
    set_query_log(None)
    yield
    set_query_log(None)
    disable_observability()


@pytest.fixture
def plan():
    table = Table.from_arrays(
        {"K": (np.arange(2_000, dtype=np.int64) % 20)}
    )
    return GroupBy(
        TableScan(table),
        key="K",
        aggregates=[count_star()],
        algorithm=GroupingAlgorithm.SPHG,
    )


class TestQueryLog:
    def test_append_assigns_ids_and_persists(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        first = log.append({"kind": "execute", "rows_out": 1})
        second = log.append({"kind": "execute", "rows_out": 2})
        assert first != second
        entries = log.entries()
        assert [e["rows_out"] for e in entries] == [1, 2]
        assert all("ts" in e and "log_schema_version" in e for e in entries)

    def test_entries_skip_malformed_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = QueryLog(path)
        log.append({"kind": "execute"})
        with path.open("a") as handle:
            handle.write('{"kind": "truncat\n')  # torn write
        log.append({"kind": "profile"})
        assert [e["kind"] for e in log.entries()] == ["execute", "profile"]

    def test_entry_lookup_supports_unique_prefixes(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        log.append({"kind": "execute", "id": "aaa-1"})
        log.append({"kind": "execute", "id": "abb-2"})
        assert log.entry("aaa")["id"] == "aaa-1"
        with pytest.raises(ObservabilityError):
            log.entry("a")  # ambiguous
        with pytest.raises(ObservabilityError):
            log.entry("zzz")  # absent

    def test_missing_file_reads_empty(self, tmp_path):
        assert QueryLog(tmp_path / "absent.jsonl").entries() == []


class TestProcessWideHandle:
    def test_disabled_by_default(self):
        assert get_query_log() is None

    def test_env_variable_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_QUERY_LOG, str(tmp_path / "env.jsonl"))
        log = get_query_log()
        assert log is not None
        assert log.path.name == "env.jsonl"
        assert get_query_log() is log  # cached per env value

    def test_explicit_set_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_QUERY_LOG, str(tmp_path / "env.jsonl"))
        set_query_log(tmp_path / "mine.jsonl")
        assert get_query_log().path.name == "mine.jsonl"
        set_query_log(None)
        assert get_query_log().path.name == "env.jsonl"


class TestEngineIntegration:
    def test_execute_appends_an_entry(self, tmp_path, plan):
        set_query_log(tmp_path / "log.jsonl")
        execute(plan)
        (entry,) = get_query_log().entries()
        assert entry["kind"] == "execute"
        assert entry["rows_out"] == 20
        assert entry["wall_seconds"] > 0

    def test_explain_analyze_appends_a_profile(self, tmp_path, plan):
        set_query_log(tmp_path / "log.jsonl")
        explain_analyze(plan)
        (entry,) = get_query_log().entries()
        assert entry["kind"] == "profile"
        assert entry["rows_out"] == 20
        assert entry["operators"]["peak_memory_bytes"] > 0

    def test_optimizer_appends_an_entry(self, tmp_path):
        from repro import optimize_dqo, plan_query
        from repro.datagen import DimensionSpec, make_star_scenario

        scenario = make_star_scenario(
            fact_rows=500,
            dimensions=[DimensionSpec(rows=50, num_groups=5)],
            seed=3,
        )
        catalog = scenario.build_catalog()
        set_query_log(tmp_path / "log.jsonl")
        optimize_dqo(plan_query(scenario.join_query(0), catalog), catalog)
        entries = get_query_log().entries()
        assert [e["kind"] for e in entries] == ["optimize"]
        assert entries[0]["cost"] > 0
        assert "search" in entries[0]

    def test_disabled_log_keeps_execute_on_fast_path(self, plan):
        # No log, no observability: nothing to write, nothing written.
        assert get_query_log() is None
        result = execute(plan)
        assert result.num_rows == 20


class TestCli:
    @pytest.fixture
    def populated(self, tmp_path, plan):
        path = tmp_path / "log.jsonl"
        set_query_log(path)
        explain_analyze(plan)
        explain_analyze(plan)
        execute(plan)
        set_query_log(None)
        return path

    def test_list(self, populated, capsys):
        assert main(["--log", str(populated), "list"]) == 0
        out = capsys.readouterr().out
        assert "profile" in out and "execute" in out

    def test_show_renders_a_profile(self, populated, capsys):
        log = QueryLog(populated)
        profile_id = next(
            e["id"] for e in log.entries() if e["kind"] == "profile"
        )
        assert main(["--log", str(populated), "show", profile_id]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out and "peak" in out

    def test_show_writes_html_and_flamegraph(
        self, populated, tmp_path, capsys
    ):
        log = QueryLog(populated)
        profile_id = next(
            e["id"] for e in log.entries() if e["kind"] == "profile"
        )
        html_path = tmp_path / "report.html"
        folded_path = tmp_path / "stacks.folded"
        assert (
            main(
                [
                    "--log",
                    str(populated),
                    "show",
                    profile_id,
                    "--html",
                    str(html_path),
                    "--flamegraph",
                    str(folded_path),
                ]
            )
            == 0
        )
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert "GroupBy" in folded_path.read_text()

    def test_diff_two_profiles(self, populated, capsys):
        ids = [
            e["id"]
            for e in QueryLog(populated).entries()
            if e["kind"] == "profile"
        ]
        assert main(["--log", str(populated), "diff", ids[0], ids[1]]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out
        assert "rows A" in out and "peak B" in out

    def test_summary_reports_qerror_and_latency(self, populated, capsys):
        assert main(["--log", str(populated), "summary"]) == 0
        out = capsys.readouterr().out
        assert "per-operator self-time percentiles" in out
        assert "query latency" in out
        assert "p99" in out

    def test_missing_log_is_a_clean_error(self, capsys):
        assert main(["list"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_show_unknown_id_is_a_clean_error(self, populated, capsys):
        assert main(["--log", str(populated), "show", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSummaryAcceptance:
    def test_summary_over_two_quickstart_style_runs(self, tmp_path, capsys):
        """The acceptance shape: optimise + execute + analyze twice,
        summary shows per-operator q-error and latency percentiles."""
        from repro import optimize_dqo, plan_query, to_operator
        from repro.datagen import DimensionSpec, make_star_scenario

        scenario = make_star_scenario(
            fact_rows=1_000,
            dimensions=[DimensionSpec(rows=100, num_groups=10)],
            seed=7,
        )
        catalog = scenario.build_catalog()
        path = tmp_path / "log.jsonl"
        set_query_log(path)
        for __ in range(2):
            result = optimize_dqo(
                plan_query(scenario.join_query(0), catalog), catalog
            )
            root = to_operator(result.plan, catalog)
            execute(root)
            explain_analyze(root)
        set_query_log(None)
        kinds = [e["kind"] for e in QueryLog(path).entries()]
        assert kinds.count("optimize") == 2
        assert kinds.count("execute") == 2
        assert kinds.count("profile") == 2
        assert main(["--log", str(path), "summary"]) == 0
        out = capsys.readouterr().out
        assert "per-operator cardinality q-error" in out
        assert "q" in out and "p50" in out


def test_log_entries_are_plain_json(tmp_path, plan):
    set_query_log(tmp_path / "log.jsonl")
    explain_analyze(plan)
    set_query_log(None)
    for line in (tmp_path / "log.jsonl").read_text().splitlines():
        json.loads(line)  # every line parses standalone


class TestWindowFilters:
    def test_parse_since_durations(self):
        from repro.obs.querylog import parse_since

        now = 10_000.0
        assert parse_since("30s", now=now) == pytest.approx(now - 30)
        assert parse_since("15m", now=now) == pytest.approx(now - 900)
        assert parse_since("2h", now=now) == pytest.approx(now - 7200)
        assert parse_since("1d", now=now) == pytest.approx(now - 86400)

    def test_parse_since_iso_timestamp(self):
        from datetime import datetime

        from repro.obs.querylog import parse_since

        stamp = "2026-08-07T12:00:00"
        assert parse_since(stamp) == pytest.approx(
            datetime.fromisoformat(stamp).timestamp()
        )

    def test_parse_since_rejects_garbage(self):
        from repro.obs.querylog import parse_since

        with pytest.raises(ObservabilityError):
            parse_since("soon-ish")

    def test_filter_window_since_and_last_compose(self):
        from repro.obs.querylog import filter_window

        entries = [{"ts": float(i), "n": i} for i in range(10)]
        assert [
            e["n"] for e in filter_window(entries, since_ts=6.0)
        ] == [6, 7, 8, 9]
        assert [e["n"] for e in filter_window(entries, last=3)] == [7, 8, 9]
        assert [
            e["n"] for e in filter_window(entries, since_ts=4.0, last=2)
        ] == [8, 9]

    def test_cli_list_honours_last(self, tmp_path, capsys):
        log = QueryLog(tmp_path / "log.jsonl")
        for i in range(5):
            log.append({"kind": "execute", "rows_out": i})
        assert main(["--log", str(log.path), "list", "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("execute") == 2

    def test_cli_summary_honours_since(self, tmp_path, capsys):
        log = QueryLog(tmp_path / "log.jsonl")
        log.append({"kind": "execute", "wall_seconds": 1.0, "ts": 100.0})
        log.append({"kind": "execute", "wall_seconds": 2.0})  # now
        assert main(["--log", str(log.path), "summary", "--since", "1h"]) == 0
        out = capsys.readouterr().out
        assert "1 entry" in out


class TestReadFrom:
    def test_incremental_cursor(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        log.append({"kind": "execute", "n": 1})
        entries, offset = log.read_from(0)
        assert [e["n"] for e in entries] == [1]
        assert log.read_from(offset) == ([], offset)
        log.append({"kind": "execute", "n": 2})
        entries, offset2 = log.read_from(offset)
        assert [e["n"] for e in entries] == [2]
        assert offset2 > offset

    def test_torn_trailing_line_is_not_consumed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = QueryLog(path)
        log.append({"kind": "execute", "n": 1})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "execu')  # no newline: torn write
        entries, offset = log.read_from(0)
        assert len(entries) == 1
        with path.open("a", encoding="utf-8") as handle:
            handle.write('te", "n": 2}\n')
        entries, __ = log.read_from(offset)
        assert [e["n"] for e in entries] == [2]

    def test_shrunk_log_resets_cursor(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = QueryLog(path)
        log.append({"kind": "execute", "n": 1})
        log.append({"kind": "execute", "n": 2})
        __, offset = log.read_from(0)
        path.write_text("")  # rotation/truncation
        log.append({"kind": "execute", "n": 3})
        entries, __ = log.read_from(offset)
        assert [e["n"] for e in entries] == [3]

    def test_missing_log_reads_empty(self, tmp_path):
        log = QueryLog(tmp_path / "nope.jsonl")
        assert log.read_from(123) == ([], 0)


class TestConcurrentAppenders:
    def test_multiprocess_appends_never_poison_the_reader(self, tmp_path):
        """Several processes hammer one log; every line stays parseable
        and the incremental reader sees every row exactly once."""
        import subprocess
        import sys

        path = tmp_path / "log.jsonl"
        writers, rows = 4, 120
        script = (
            "import sys\n"
            "from repro.obs.querylog import QueryLog\n"
            "log = QueryLog(sys.argv[1])\n"
            "for i in range(int(sys.argv[3])):\n"
            "    log.append({'kind': 'execute', 'writer': sys.argv[2],"
            " 'n': i})\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), str(w), str(rows)],
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                cwd="/root/repo",
            )
            for w in range(writers)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        entries = QueryLog(path).entries()
        assert len(entries) == writers * rows
        seen = {(e["writer"], e["n"]) for e in entries}
        assert len(seen) == writers * rows
        # The incremental reader drains the same total, chunk by chunk.
        log, offset, drained = QueryLog(path), 0, 0
        while True:
            chunk, offset = log.read_from(offset)
            if not chunk:
                break
            drained += len(chunk)
        assert drained == writers * rows


class TestRegressCli:
    def seed_log(self, path):
        log = QueryLog(path)
        log.append(
            {
                "kind": "optimize",
                "spec_fingerprint": "fp-cli",
                "plan_hash": "h1",
                "cost": 10.0,
                "catalog_version": 1,
                "deep": True,
                "workers": 1,
            }
        )
        for __ in range(24):
            log.append(
                {
                    "kind": "service",
                    "status": "ok",
                    "spec_fingerprint": "fp-cli",
                    "plan_hash": "h1",
                    "execute_seconds": 0.01,
                }
            )
        return log

    def test_quiet_history_exits_zero(self, tmp_path, capsys):
        log = self.seed_log(tmp_path / "log.jsonl")
        assert main(["--log", str(log.path), "regress"]) == 0
        out = capsys.readouterr().out
        assert "0 alert(s)" in out
        assert "1 fingerprint(s)" in out

    def test_regression_reports_and_gates(self, tmp_path, capsys):
        log = self.seed_log(tmp_path / "log.jsonl")
        log.append(
            {
                "kind": "optimize",
                "spec_fingerprint": "fp-cli",
                "plan_hash": "h2",
                "cost": 50.0,
                "catalog_version": 2,
                "deep": True,
                "workers": 1,
            }
        )
        assert (
            main(
                [
                    "--log",
                    str(log.path),
                    "regress",
                    "--fail-on-alert",
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "plan_flip" in out
        assert "h1" in out and "h2" in out

    def test_json_report_and_baseline_store(self, tmp_path, capsys):
        log = self.seed_log(tmp_path / "log.jsonl")
        store_path = tmp_path / "baselines.json"
        assert (
            main(
                [
                    "--log",
                    str(log.path),
                    "regress",
                    "--json",
                    "--baseline",
                    str(store_path),
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["total"] == 0
        assert report["store"]["fingerprints"] == 1
        assert store_path.exists()


class TestPlanHashSummary:
    def test_summary_breaks_down_plan_shapes(self, tmp_path, capsys):
        log = QueryLog(tmp_path / "log.jsonl")
        for cached in (False, True, True):
            log.append(
                {
                    "kind": "optimize",
                    "cached": cached,
                    "spec_fingerprint": "fp-x",
                    "plan_hash": "hash-x",
                    "cost": 1.0,
                }
            )
        assert main(["--log", str(log.path), "summary"]) == 0
        out = capsys.readouterr().out
        assert "plan shapes chosen" in out
        assert "hash-x" in out


class TestOptimiserEffortSummary:
    def optimize_row(self, *, deep, cached=False, search=None, traced=False):
        row = {
            "kind": "optimize",
            "deep": deep,
            "cached": cached,
            "spec_fingerprint": "abcd",
        }
        if search is not None:
            row["search"] = search
        if traced:
            row["search_trace"] = {"path": None, "summary": {"generated": 12}}
        return row

    def test_effort_section_breaks_down_by_mode(self):
        entries = [
            self.optimize_row(
                deep=True,
                search={"generated": 24, "pruned_dominated": 10,
                        "displaced": 2, "truncated": 0, "closures": 3},
                traced=True,
            ),
            self.optimize_row(
                deep=False,
                search={"generated": 8, "pruned_dominated": 4,
                        "displaced": 0, "truncated": 1, "closures": 0},
            ),
            # Cache hits never searched: excluded from effort.
            self.optimize_row(deep=True, cached=True,
                              search={"generated": 99}),
        ]
        report = summarise(entries)
        assert "optimiser effort (fresh searches)" in report
        assert "deep" in report and "shallow" in report
        # Deep: (10 + 2 + 0) / 24 pruned; one traced search.
        assert "50.0%" in report

    def test_no_fresh_searches_no_section(self):
        entries = [self.optimize_row(deep=True, cached=True)]
        assert "optimiser effort" not in summarise(entries)
