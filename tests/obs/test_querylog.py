"""The persistent query log: appends, env gating, and the CLI."""

import json

import numpy as np
import pytest

from repro.engine.aggregates import count_star
from repro.engine.executor import execute, explain_analyze
from repro.engine.operators.grouping import GroupBy, GroupingAlgorithm
from repro.engine.operators.scan import TableScan
from repro.errors import ObservabilityError
from repro.obs import disable_observability
from repro.obs.querylog import (
    ENV_QUERY_LOG,
    QueryLog,
    get_query_log,
    main,
    set_query_log,
)
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _clean_globals(monkeypatch):
    monkeypatch.delenv(ENV_QUERY_LOG, raising=False)
    disable_observability()
    set_query_log(None)
    yield
    set_query_log(None)
    disable_observability()


@pytest.fixture
def plan():
    table = Table.from_arrays(
        {"K": (np.arange(2_000, dtype=np.int64) % 20)}
    )
    return GroupBy(
        TableScan(table),
        key="K",
        aggregates=[count_star()],
        algorithm=GroupingAlgorithm.SPHG,
    )


class TestQueryLog:
    def test_append_assigns_ids_and_persists(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        first = log.append({"kind": "execute", "rows_out": 1})
        second = log.append({"kind": "execute", "rows_out": 2})
        assert first != second
        entries = log.entries()
        assert [e["rows_out"] for e in entries] == [1, 2]
        assert all("ts" in e and "log_schema_version" in e for e in entries)

    def test_entries_skip_malformed_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = QueryLog(path)
        log.append({"kind": "execute"})
        with path.open("a") as handle:
            handle.write('{"kind": "truncat\n')  # torn write
        log.append({"kind": "profile"})
        assert [e["kind"] for e in log.entries()] == ["execute", "profile"]

    def test_entry_lookup_supports_unique_prefixes(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        log.append({"kind": "execute", "id": "aaa-1"})
        log.append({"kind": "execute", "id": "abb-2"})
        assert log.entry("aaa")["id"] == "aaa-1"
        with pytest.raises(ObservabilityError):
            log.entry("a")  # ambiguous
        with pytest.raises(ObservabilityError):
            log.entry("zzz")  # absent

    def test_missing_file_reads_empty(self, tmp_path):
        assert QueryLog(tmp_path / "absent.jsonl").entries() == []


class TestProcessWideHandle:
    def test_disabled_by_default(self):
        assert get_query_log() is None

    def test_env_variable_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_QUERY_LOG, str(tmp_path / "env.jsonl"))
        log = get_query_log()
        assert log is not None
        assert log.path.name == "env.jsonl"
        assert get_query_log() is log  # cached per env value

    def test_explicit_set_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_QUERY_LOG, str(tmp_path / "env.jsonl"))
        set_query_log(tmp_path / "mine.jsonl")
        assert get_query_log().path.name == "mine.jsonl"
        set_query_log(None)
        assert get_query_log().path.name == "env.jsonl"


class TestEngineIntegration:
    def test_execute_appends_an_entry(self, tmp_path, plan):
        set_query_log(tmp_path / "log.jsonl")
        execute(plan)
        (entry,) = get_query_log().entries()
        assert entry["kind"] == "execute"
        assert entry["rows_out"] == 20
        assert entry["wall_seconds"] > 0

    def test_explain_analyze_appends_a_profile(self, tmp_path, plan):
        set_query_log(tmp_path / "log.jsonl")
        explain_analyze(plan)
        (entry,) = get_query_log().entries()
        assert entry["kind"] == "profile"
        assert entry["rows_out"] == 20
        assert entry["operators"]["peak_memory_bytes"] > 0

    def test_optimizer_appends_an_entry(self, tmp_path):
        from repro import optimize_dqo, plan_query
        from repro.datagen import DimensionSpec, make_star_scenario

        scenario = make_star_scenario(
            fact_rows=500,
            dimensions=[DimensionSpec(rows=50, num_groups=5)],
            seed=3,
        )
        catalog = scenario.build_catalog()
        set_query_log(tmp_path / "log.jsonl")
        optimize_dqo(plan_query(scenario.join_query(0), catalog), catalog)
        entries = get_query_log().entries()
        assert [e["kind"] for e in entries] == ["optimize"]
        assert entries[0]["cost"] > 0
        assert "search" in entries[0]

    def test_disabled_log_keeps_execute_on_fast_path(self, plan):
        # No log, no observability: nothing to write, nothing written.
        assert get_query_log() is None
        result = execute(plan)
        assert result.num_rows == 20


class TestCli:
    @pytest.fixture
    def populated(self, tmp_path, plan):
        path = tmp_path / "log.jsonl"
        set_query_log(path)
        explain_analyze(plan)
        explain_analyze(plan)
        execute(plan)
        set_query_log(None)
        return path

    def test_list(self, populated, capsys):
        assert main(["--log", str(populated), "list"]) == 0
        out = capsys.readouterr().out
        assert "profile" in out and "execute" in out

    def test_show_renders_a_profile(self, populated, capsys):
        log = QueryLog(populated)
        profile_id = next(
            e["id"] for e in log.entries() if e["kind"] == "profile"
        )
        assert main(["--log", str(populated), "show", profile_id]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out and "peak" in out

    def test_show_writes_html_and_flamegraph(
        self, populated, tmp_path, capsys
    ):
        log = QueryLog(populated)
        profile_id = next(
            e["id"] for e in log.entries() if e["kind"] == "profile"
        )
        html_path = tmp_path / "report.html"
        folded_path = tmp_path / "stacks.folded"
        assert (
            main(
                [
                    "--log",
                    str(populated),
                    "show",
                    profile_id,
                    "--html",
                    str(html_path),
                    "--flamegraph",
                    str(folded_path),
                ]
            )
            == 0
        )
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert "GroupBy" in folded_path.read_text()

    def test_diff_two_profiles(self, populated, capsys):
        ids = [
            e["id"]
            for e in QueryLog(populated).entries()
            if e["kind"] == "profile"
        ]
        assert main(["--log", str(populated), "diff", ids[0], ids[1]]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out
        assert "rows A" in out and "peak B" in out

    def test_summary_reports_qerror_and_latency(self, populated, capsys):
        assert main(["--log", str(populated), "summary"]) == 0
        out = capsys.readouterr().out
        assert "per-operator self-time percentiles" in out
        assert "query latency" in out
        assert "p99" in out

    def test_missing_log_is_a_clean_error(self, capsys):
        assert main(["list"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_show_unknown_id_is_a_clean_error(self, populated, capsys):
        assert main(["--log", str(populated), "show", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSummaryAcceptance:
    def test_summary_over_two_quickstart_style_runs(self, tmp_path, capsys):
        """The acceptance shape: optimise + execute + analyze twice,
        summary shows per-operator q-error and latency percentiles."""
        from repro import optimize_dqo, plan_query, to_operator
        from repro.datagen import DimensionSpec, make_star_scenario

        scenario = make_star_scenario(
            fact_rows=1_000,
            dimensions=[DimensionSpec(rows=100, num_groups=10)],
            seed=7,
        )
        catalog = scenario.build_catalog()
        path = tmp_path / "log.jsonl"
        set_query_log(path)
        for __ in range(2):
            result = optimize_dqo(
                plan_query(scenario.join_query(0), catalog), catalog
            )
            root = to_operator(result.plan, catalog)
            execute(root)
            explain_analyze(root)
        set_query_log(None)
        kinds = [e["kind"] for e in QueryLog(path).entries()]
        assert kinds.count("optimize") == 2
        assert kinds.count("execute") == 2
        assert kinds.count("profile") == 2
        assert main(["--log", str(path), "summary"]) == 0
        out = capsys.readouterr().out
        assert "per-operator cardinality q-error" in out
        assert "q" in out and "p50" in out


def test_log_entries_are_plain_json(tmp_path, plan):
    set_query_log(tmp_path / "log.jsonl")
    explain_analyze(plan)
    set_query_log(None)
    for line in (tmp_path / "log.jsonl").read_text().splitlines():
        json.loads(line)  # every line parses standalone
