"""Logical plan -> QuerySpec normalisation."""

import pytest

from repro.core.optimizer.query import extract_query
from repro.engine import col, count_star
from repro.errors import PlanError
from repro.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalProject,
    LogicalScan,
)


def paper_shape():
    return LogicalGroupBy(
        LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "S.R_ID"),
        "R.A",
        (count_star(),),
    )


class TestExtraction:
    def test_paper_query_shape(self):
        spec = extract_query(paper_shape())
        assert [scan.table_name for scan in spec.scans] == ["R", "S"]
        assert len(spec.joins) == 1
        edge = spec.joins[0]
        assert (edge.left_scan, edge.right_scan) == (0, 1)
        assert edge.left_column == "R.ID"
        assert spec.group_key == "R.A"
        assert spec.aggregates[0].alias == "count"

    def test_decoration_peeling(self):
        plan = LogicalLimit(
            LogicalOrderBy(
                LogicalProject(paper_shape(), (("grp", col("R.A")),)),
                ("grp",),
            ),
            7,
        )
        spec = extract_query(plan)
        assert spec.limit == 7
        assert spec.order_by == ("grp",)
        assert spec.final_outputs is not None
        assert spec.group_key == "R.A"

    def test_filter_above_group_child_pushes_to_owner(self):
        plan = LogicalGroupBy(
            LogicalFilter(
                LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "S.R_ID"),
                (col("R.A") > 3) & (col("S.B") < 9),
            ),
            "R.A",
            (count_star(),),
        )
        spec = extract_query(plan)
        assert len(spec.scans[0].filters) == 1  # R.A > 3 -> scan R
        assert len(spec.scans[1].filters) == 1  # S.B < 9 -> scan S

    def test_filter_below_join_pushes_down(self):
        plan = LogicalJoin(
            LogicalFilter(LogicalScan("R"), col("R.A") > 1),
            LogicalScan("S"),
            "R.ID",
            "S.R_ID",
        )
        spec = extract_query(plan)
        assert len(spec.scans[0].filters) == 1
        assert spec.group_key is None

    def test_cross_table_conjunct_rejected(self):
        plan = LogicalFilter(
            LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "S.R_ID"),
            col("R.A") < col("S.B"),
        )
        with pytest.raises(PlanError, match="single-table"):
            extract_query(plan)

    def test_self_join_within_one_scan_rejected(self):
        plan = LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "R.A")
        with pytest.raises(PlanError, match="self-join"):
            extract_query(plan)

    def test_group_by_under_join_rejected(self):
        plan = LogicalJoin(
            LogicalGroupBy(LogicalScan("R"), "R.A", (count_star(),)),
            LogicalScan("S"),
            "R.A",
            "S.R_ID",
        )
        with pytest.raises(PlanError, match="group-by under a join"):
            extract_query(plan)

    def test_scan_of_column_errors(self):
        spec = extract_query(paper_shape())
        assert spec.scan_of_column("S.B") == 1
        with pytest.raises(PlanError, match="no scan alias"):
            spec.scan_of_column("T.x")

    def test_aliased_scans(self):
        plan = LogicalJoin(
            LogicalScan("R", "x"), LogicalScan("R", "y"), "x.ID", "y.ID"
        )
        spec = extract_query(plan)
        assert [scan.alias for scan in spec.scans] == ["x", "y"]
        assert spec.scan_of_column("y.A") == 1
