"""The physiological algebra: unnesting lattice, recipes, requirements."""

import pytest

from repro.core import Granularity
from repro.core.physiological import (
    count_recipes,
    enumerate_recipes,
    logical_grouping,
    logical_join,
    recipe_algorithm,
    recipe_hash_function,
    recipe_join_algorithm,
    recipe_requirements,
    unnest,
)
from repro.engine import GroupingAlgorithm, JoinAlgorithm


class TestUnnesting:
    def test_gamma_unnests_to_partitioned_grouping(self):
        alternatives = unnest(logical_grouping())
        assert len(alternatives) == 1
        node = alternatives[0]
        assert node.kind == "partitioned_grouping"
        assert [child.kind for child in node.children] == [
            "partition_by",
            "aggregate_bundle",
        ]

    def test_partition_by_has_six_strategies(self):
        partition = unnest(logical_grouping())[0].children[0]
        alternatives = unnest(partition)
        assert len(alternatives) == 6
        assert "exchange_partition" in {a.kind for a in alternatives}

    def test_leaves_do_not_unnest(self):
        partition_alternatives = unnest(
            unnest(logical_grouping())[0].children[0]
        )
        for alternative in partition_alternatives:
            if alternative.kind in ("presorted_partition", "sort_partition"):
                assert unnest(alternative) == []


class TestEnumeration:
    def test_space_grows_with_depth(self):
        organelle = count_recipes(Granularity.ORGANELLE)
        macromolecule = count_recipes(Granularity.MACROMOLECULE)
        molecule = count_recipes(Granularity.MOLECULE)
        assert organelle < macromolecule < molecule
        assert organelle == 1  # the developer's single textbook default

    def test_organelle_default_is_textbook_hash(self):
        # The paper's SQO arrow: "translate to hash-based grouping".
        recipes = enumerate_recipes(logical_grouping(), Granularity.ORGANELLE)
        assert recipe_algorithm(recipes[0]) is GroupingAlgorithm.HG

    def test_macromolecule_covers_all_five_algorithms(self):
        recipes = enumerate_recipes(
            logical_grouping(), Granularity.MACROMOLECULE
        )
        algorithms = {recipe_algorithm(recipe) for recipe in recipes}
        assert algorithms == set(GroupingAlgorithm)

    def test_molecule_level_exposes_hash_function_choice(self):
        recipes = enumerate_recipes(logical_grouping(), Granularity.MOLECULE)
        hash_functions = {recipe_hash_function(recipe) for recipe in recipes}
        assert hash_functions == {"murmur3", "identity"}

    def test_join_lattice_mirrors_grouping(self):
        recipes = enumerate_recipes(logical_join(), Granularity.MACROMOLECULE)
        algorithms = {recipe_join_algorithm(recipe) for recipe in recipes}
        assert algorithms == set(JoinAlgorithm)

    def test_recipes_carry_levels(self):
        for recipe in enumerate_recipes(logical_grouping(), Granularity.MOLECULE):
            assert recipe.max_level() <= Granularity.MOLECULE
            assert recipe.level is Granularity.ORGANELLE


class TestRequirements:
    def _recipe_for(self, algorithm):
        for recipe in enumerate_recipes(
            logical_grouping(), Granularity.MACROMOLECULE
        ):
            if recipe_algorithm(recipe) is algorithm:
                return recipe
        raise AssertionError(f"no recipe for {algorithm}")

    def test_og_needs_clustered(self):
        requirements = recipe_requirements(self._recipe_for(GroupingAlgorithm.OG))
        assert requirements.needs_clustered

    def test_sphg_needs_dense(self):
        requirements = recipe_requirements(
            self._recipe_for(GroupingAlgorithm.SPHG)
        )
        assert requirements.needs_dense

    def test_hg_sog_bsg_unconditional(self):
        for algorithm in (
            GroupingAlgorithm.HG,
            GroupingAlgorithm.SOG,
            GroupingAlgorithm.BSG,
        ):
            requirements = recipe_requirements(self._recipe_for(algorithm))
            assert not requirements.needs_dense
            assert not requirements.needs_clustered


class TestExplain:
    def test_explain_shows_levels_and_bindings(self):
        recipes = enumerate_recipes(logical_grouping(), Granularity.MOLECULE)
        hash_recipes = [
            recipe
            for recipe in recipes
            if recipe_algorithm(recipe) is GroupingAlgorithm.HG
        ]
        text = hash_recipes[0].explain()
        assert "<MOLECULE>" in text
        assert "hash_function=" in text
        assert "partitioned_grouping" in text
