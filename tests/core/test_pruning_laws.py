"""Algebraic laws of dominance pruning and property vectors (hypothesis).

The DP's correctness rests on ``covers`` being a partial order and on
``pareto_insert`` maintaining an antichain that always contains a
cheapest entry. These laws are checked on arbitrary generated vectors.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost.cardinality import RelationEstimate
from repro.core.optimizer.base import SearchStats
from repro.core.optimizer.pruning import DPEntry, dominates, pareto_insert
from repro.core.plan import PhysicalNode
from repro.core.properties import Correlations, PropertyVector

COLUMNS = ("a", "b", "c")


def subsets():
    return st.frozensets(st.sampled_from(COLUMNS))


vectors = st.builds(
    PropertyVector, sorted_on=subsets(), clustered_on=subsets(), dense=subsets()
)


class TestCoversIsPartialOrder:
    @given(vectors)
    def test_reflexive(self, vector):
        assert vector.covers(vector)

    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(vectors, vectors)
    def test_antisymmetric(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(vectors, vectors)
    def test_union_is_upper_bound(self, a, b):
        union = a.union(b)
        assert union.covers(a) and union.covers(b)

    @given(vectors)
    def test_projection_is_weaker(self, vector):
        assert vector.covers(vector.restrict_to_orders())
        assert vector.covers(vector.restrict_to_columns(["a"]))

    @given(vectors)
    def test_correlation_closure_is_stronger_and_idempotent(self, vector):
        correlations = Correlations(frozenset({("a", "b"), ("b", "c")}))
        closed = correlations.close_sorted(vector)
        assert closed.covers(vector)
        assert correlations.close_sorted(closed) == closed


def entry(cost, vector):
    node = PhysicalNode(op="scan", cost=cost, properties=vector)
    return DPEntry(node, cost, vector, RelationEstimate(1.0, {}))


entries_strategy = st.lists(
    st.tuples(st.integers(0, 20), vectors), min_size=0, max_size=25
)


class TestParetoInsert:
    @settings(max_examples=100)
    @given(entries_strategy)
    def test_frontier_is_antichain_containing_minimum(self, raw):
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in raw:
            frontier = pareto_insert(frontier, entry(float(cost), vector), stats)
        # Antichain: no retained entry dominates another.
        for i, a in enumerate(frontier):
            for j, b in enumerate(frontier):
                if i != j:
                    assert not dominates(a, b)
        # A cheapest inserted entry survives (some entry of minimal cost).
        if raw:
            assert min(e.cost for e in frontier) == min(c for c, __ in raw)
        # Counters add up.
        assert stats.generated == len(raw)

    @settings(max_examples=100)
    @given(entries_strategy)
    def test_every_inserted_entry_is_covered_by_the_frontier(self, raw):
        """No information is lost: for every candidate there is a retained
        entry that is at least as cheap and at least as strong — the
        §2.2 'must not discard that information' guarantee."""
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in raw:
            frontier = pareto_insert(frontier, entry(float(cost), vector), stats)
        for cost, vector in raw:
            assert any(
                retained.cost <= cost and retained.properties.covers(vector)
                for retained in frontier
            )

    def test_no_prune_mode_keeps_everything(self):
        stats = SearchStats()
        frontier: list[DPEntry] = []
        duplicates = [entry(1.0, PropertyVector())] * 5
        for item in duplicates:
            frontier = pareto_insert(frontier, item, stats, prune=False)
        assert len(frontier) == 5
        assert stats.pruned_dominated == 0


SORTED_A = PropertyVector(sorted_on=frozenset({"a"}))
SORTED_B = PropertyVector(sorted_on=frozenset({"b"}))
SORTED_AB = PropertyVector(sorted_on=frozenset({"a", "b"}))


class TestDominanceEdgeCases:
    """Deterministic corner cases of the frontier policy: equal-cost
    ties, identical property vectors, dominated-vs-displaced asymmetry,
    and the prune=False ablation's parity with the pruned frontier."""

    def test_equal_cost_identical_vector_is_dominated_not_displaced(self):
        """A perfect tie (same cost, same properties) resolves first-wins:
        the incumbent dominates, the newcomer is pruned, nothing is
        displaced — the frontier never churns on ties."""
        stats = SearchStats()
        frontier = pareto_insert([], entry(5.0, SORTED_A), stats)
        incumbent = frontier[0]
        frontier = pareto_insert(frontier, entry(5.0, SORTED_A), stats)
        assert frontier == [incumbent]
        assert stats.pruned_dominated == 1
        assert stats.displaced == 0

    def test_equal_cost_incomparable_vectors_coexist(self):
        """An equal-cost tie between incomparable property vectors keeps
        both: neither covers the other, so neither is redundant."""
        stats = SearchStats()
        frontier = pareto_insert([], entry(5.0, SORTED_A), stats)
        frontier = pareto_insert(frontier, entry(5.0, SORTED_B), stats)
        assert len(frontier) == 2
        assert stats.pruned_dominated == 0
        assert stats.displaced == 0

    def test_equal_cost_stronger_vector_displaces(self):
        """At equal cost a strictly stronger vector evicts the weaker
        incumbent (dominates counts cost <=, not <)."""
        stats = SearchStats()
        frontier = pareto_insert([], entry(5.0, SORTED_A), stats)
        frontier = pareto_insert(frontier, entry(5.0, SORTED_AB), stats)
        assert len(frontier) == 1
        assert frontier[0].properties == SORTED_AB
        assert stats.displaced == 1
        assert stats.pruned_dominated == 0

    def test_identical_vector_cheaper_candidate_displaces(self):
        """Identical property vectors reduce dominance to a pure cost
        comparison: the cheaper entry wins whichever order they arrive."""
        stats = SearchStats()
        frontier = pareto_insert([], entry(9.0, SORTED_A), stats)
        frontier = pareto_insert(frontier, entry(3.0, SORTED_A), stats)
        assert [e.cost for e in frontier] == [3.0]
        assert stats.displaced == 1
        # ...and arriving costlier, the newcomer dies instead.
        frontier = pareto_insert(frontier, entry(9.0, SORTED_A), stats)
        assert [e.cost for e in frontier] == [3.0]
        assert stats.pruned_dominated == 1

    def test_one_candidate_displaces_many(self):
        """A single strong cheap candidate sweeps the whole frontier."""
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in [(4.0, SORTED_A), (4.0, SORTED_B)]:
            frontier = pareto_insert(frontier, entry(cost, vector), stats)
        frontier = pareto_insert(frontier, entry(1.0, SORTED_AB), stats)
        assert len(frontier) == 1
        assert frontier[0].cost == 1.0
        assert stats.displaced == 2

    @settings(max_examples=100)
    @given(entries_strategy)
    def test_accounting_invariant(self, raw):
        """Every generated candidate is exactly one of: dominated at
        entry, displaced later, or alive in the final frontier — the
        ledger the trace replay's ``complete`` verdict relies on."""
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in raw:
            frontier = pareto_insert(frontier, entry(float(cost), vector), stats)
        assert stats.generated == (
            stats.pruned_dominated + stats.displaced + len(frontier)
        )

    @settings(max_examples=100)
    @given(entries_strategy)
    def test_prune_false_ablation_parity(self, raw):
        """The no-pruning ablation changes state size, never the verdict:
        the pruned frontier covers every entry of the unpruned one (same
        reachable optima), and both contain the same minimal cost."""
        pruned_stats, naive_stats = SearchStats(), SearchStats()
        pruned: list[DPEntry] = []
        naive: list[DPEntry] = []
        for cost, vector in raw:
            pruned = pareto_insert(pruned, entry(float(cost), vector), pruned_stats)
            naive = pareto_insert(
                naive, entry(float(cost), vector), naive_stats, prune=False
            )
        assert len(naive) == len(raw)
        assert naive_stats.pruned_dominated == 0
        assert naive_stats.displaced == 0
        if raw:
            assert min(e.cost for e in pruned) == min(e.cost for e in naive)
        for item in naive:
            assert any(
                keeper.cost <= item.cost
                and keeper.properties.covers(item.properties)
                for keeper in pruned
            )

    def test_trace_journals_each_death_with_its_killer(self):
        """With a SearchTrace attached, every dominated/displaced event
        names the entry that killed it, and the journal's ledger matches
        the SearchStats counters."""
        from repro.obs.search import SearchTrace

        trace = SearchTrace()
        trace.begin("test-spec")
        stats = SearchStats()
        frontier: list[DPEntry] = []
        sequence = [
            (4.0, SORTED_A),   # kept
            (4.0, SORTED_B),   # kept (incomparable)
            (6.0, SORTED_A),   # dominated by the first
            (1.0, SORTED_AB),  # displaces both survivors
        ]
        for cost, vector in sequence:
            frontier = pareto_insert(
                frontier, entry(cost, vector), stats, trace=trace, cls="t"
            )
        summary = trace.summary()
        assert summary["generated"] == stats.generated == 4
        assert summary["dominated"] == stats.pruned_dominated == 1
        assert summary["displaced"] == stats.displaced == 2
        deaths = [
            event
            for event in trace.events("t")
            if event.kind in ("dominated", "displaced")
        ]
        assert len(deaths) == 3
        assert all(
            event.other_id is not None and event.other_id >= 0
            for event in deaths
        )
