"""Algebraic laws of dominance pruning and property vectors (hypothesis).

The DP's correctness rests on ``covers`` being a partial order and on
``pareto_insert`` maintaining an antichain that always contains a
cheapest entry. These laws are checked on arbitrary generated vectors.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost.cardinality import RelationEstimate
from repro.core.optimizer.base import SearchStats
from repro.core.optimizer.pruning import DPEntry, dominates, pareto_insert
from repro.core.plan import PhysicalNode
from repro.core.properties import Correlations, PropertyVector

COLUMNS = ("a", "b", "c")


def subsets():
    return st.frozensets(st.sampled_from(COLUMNS))


vectors = st.builds(
    PropertyVector, sorted_on=subsets(), clustered_on=subsets(), dense=subsets()
)


class TestCoversIsPartialOrder:
    @given(vectors)
    def test_reflexive(self, vector):
        assert vector.covers(vector)

    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(vectors, vectors)
    def test_antisymmetric(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(vectors, vectors)
    def test_union_is_upper_bound(self, a, b):
        union = a.union(b)
        assert union.covers(a) and union.covers(b)

    @given(vectors)
    def test_projection_is_weaker(self, vector):
        assert vector.covers(vector.restrict_to_orders())
        assert vector.covers(vector.restrict_to_columns(["a"]))

    @given(vectors)
    def test_correlation_closure_is_stronger_and_idempotent(self, vector):
        correlations = Correlations(frozenset({("a", "b"), ("b", "c")}))
        closed = correlations.close_sorted(vector)
        assert closed.covers(vector)
        assert correlations.close_sorted(closed) == closed


def entry(cost, vector):
    node = PhysicalNode(op="scan", cost=cost, properties=vector)
    return DPEntry(node, cost, vector, RelationEstimate(1.0, {}))


entries_strategy = st.lists(
    st.tuples(st.integers(0, 20), vectors), min_size=0, max_size=25
)


class TestParetoInsert:
    @settings(max_examples=100)
    @given(entries_strategy)
    def test_frontier_is_antichain_containing_minimum(self, raw):
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in raw:
            frontier = pareto_insert(frontier, entry(float(cost), vector), stats)
        # Antichain: no retained entry dominates another.
        for i, a in enumerate(frontier):
            for j, b in enumerate(frontier):
                if i != j:
                    assert not dominates(a, b)
        # A cheapest inserted entry survives (some entry of minimal cost).
        if raw:
            assert min(e.cost for e in frontier) == min(c for c, __ in raw)
        # Counters add up.
        assert stats.generated == len(raw)

    @settings(max_examples=100)
    @given(entries_strategy)
    def test_every_inserted_entry_is_covered_by_the_frontier(self, raw):
        """No information is lost: for every candidate there is a retained
        entry that is at least as cheap and at least as strong — the
        §2.2 'must not discard that information' guarantee."""
        stats = SearchStats()
        frontier: list[DPEntry] = []
        for cost, vector in raw:
            frontier = pareto_insert(frontier, entry(float(cost), vector), stats)
        for cost, vector in raw:
            assert any(
                retained.cost <= cost and retained.properties.covers(vector)
                for retained in frontier
            )

    def test_no_prune_mode_keeps_everything(self):
        stats = SearchStats()
        frontier: list[DPEntry] = []
        duplicates = [entry(1.0, PropertyVector())] * 5
        for item in duplicates:
            frontier = pareto_insert(frontier, item, stats, prune=False)
        assert len(frontier) == 5
        assert stats.pruned_dominated == 0
