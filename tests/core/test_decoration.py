"""Plan decoration: projections, renames, order-by, limit in the DP."""

import pytest

from repro.core import dqo_config, optimize_dqo, sqo_config, to_operator
from repro.core.optimizer.base import PropertyScope
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute
from repro.logical import evaluate_naive
from repro.sql import plan_query


@pytest.fixture(scope="module")
def catalog():
    return make_join_scenario(
        n_r=500,
        n_s=1_200,
        num_groups=60,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=3,
    ).build_catalog()


class TestProjectionRenames:
    def test_order_by_alias_of_sorted_key_is_free(self, catalog):
        # DQO picks SPHG whose output is sorted on R.A; the projection
        # renames R.A to grp; ORDER BY grp must recognise the guarantee
        # survived the rename and cost nothing.
        base = optimize_dqo(
            plan_query(
                "SELECT A AS grp, COUNT(*) AS c FROM R JOIN S ON ID = R_ID "
                "GROUP BY A",
                catalog,
            ),
            catalog,
        )
        ordered = optimize_dqo(
            plan_query(
                "SELECT A AS grp, COUNT(*) AS c FROM R JOIN S ON ID = R_ID "
                "GROUP BY A ORDER BY grp",
                catalog,
            ),
            catalog,
        )
        assert ordered.cost == pytest.approx(base.cost)
        assert not any(
            node.op == "sort"
            for node in ordered.plan.walk()
            if node.sort_keys == ("grp",)
        )

    def test_order_by_unsorted_output_pays_a_sort(self, catalog):
        # SQO's HG output is unordered, so ORDER BY costs a sort.
        base = optimize_dqo(
            plan_query(
                "SELECT A, COUNT(*) FROM R JOIN S ON ID = R_ID GROUP BY A",
                catalog,
            ),
            catalog,
            property_scope=PropertyScope.ORDERS,
            max_granularity=sqo_config().max_granularity,
        )
        ordered = optimize_dqo(
            plan_query(
                "SELECT A, COUNT(*) FROM R JOIN S ON ID = R_ID GROUP BY A "
                "ORDER BY A",
                catalog,
            ),
            catalog,
            property_scope=PropertyScope.ORDERS,
            max_granularity=sqo_config().max_granularity,
        )
        assert ordered.cost > base.cost

    def test_renamed_plans_execute(self, catalog):
        sql = (
            "SELECT A AS grp, COUNT(*) AS c FROM R JOIN S ON ID = R_ID "
            "GROUP BY A ORDER BY grp LIMIT 5"
        )
        logical = plan_query(sql, catalog)
        result = optimize_dqo(logical, catalog)
        output = execute(to_operator(result.plan, catalog))
        truth = evaluate_naive(logical, catalog)
        assert output.equals(truth)
        assert output.schema.names == ("grp", "c")


class TestConfigSurface:
    def test_is_deep(self):
        assert dqo_config().is_deep
        assert not sqo_config().is_deep

    def test_overrides(self):
        config = dqo_config(consider_commutation=True, prune_dominated=False)
        assert config.consider_commutation
        assert not config.prune_dominated
        assert config.property_scope is PropertyScope.FULL
