"""Large (multi-way) queries — the §6 "Revisit SQO Algorithms" extension.

The DP enumerates n-way join orders (DPsub over connected subsets) with
the same property-vector frontiers; these tests exercise 3- and 4-relation
star joins end-to-end and check the deep configuration still dominates.
"""

import pytest

from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.datagen import (
    Density,
    DimensionSpec,
    Sortedness,
    make_star_scenario,
)
from repro.engine import execute
from repro.logical import evaluate_naive
from repro.sql import plan_query


@pytest.fixture(scope="module")
def star():
    scenario = make_star_scenario(fact_rows=3_000, seed=2)
    return scenario, scenario.build_catalog()


class TestStarGenerator:
    def test_schema_and_fks(self, star):
        scenario, catalog = star
        assert scenario.num_dimensions == 3
        assert catalog.table("FACT").num_rows == 3_000
        for index in range(3):
            assert (
                catalog.foreign_key_between(
                    "FACT", f"D{index}_ID", f"D{index}", "ID"
                )
                is not None
            )

    def test_dimension_properties_respected(self, star):
        scenario, catalog = star
        # Default spec: D0 sorted+dense, D1 unsorted, D2 sparse.
        d0 = catalog.table("D0").column("ID").statistics
        assert d0.is_sorted and d0.is_dense
        d1 = catalog.table("D1").column("ID").statistics
        assert not d1.is_sorted
        d2 = catalog.table("D2").column("ID").statistics
        assert not d2.is_dense

    def test_fact_sorted_on_chosen_fk(self, star):
        scenario, catalog = star
        fk = catalog.table("FACT").column("D0_ID").statistics
        assert fk.is_sorted

    def test_query_text(self, star):
        scenario, __ = star
        query = scenario.join_query(1)
        assert "GROUP BY D1.A" in query
        assert query.count("JOIN") == 3

    def test_invalid_group_dimension(self, star):
        scenario, __ = star
        with pytest.raises(Exception):
            scenario.join_query(9)


class TestMultiWayOptimisation:
    @pytest.mark.parametrize("group_dimension", [0, 1, 2])
    def test_four_way_join_correct(self, star, group_dimension):
        scenario, catalog = star
        logical = plan_query(scenario.join_query(group_dimension), catalog)
        truth = evaluate_naive(logical, catalog)
        for optimizer in (optimize_sqo, optimize_dqo):
            result = optimizer(logical, catalog)
            output = execute(to_operator(result.plan, catalog, validate=True))
            assert output.equals_unordered(truth)

    def test_dqo_never_worse_and_wins_on_dense(self, star):
        scenario, catalog = star
        logical = plan_query(scenario.join_query(0), catalog)
        sqo = optimize_sqo(logical, catalog)
        dqo = optimize_dqo(logical, catalog)
        assert dqo.cost <= sqo.cost
        # D0 is dense: the deep plan should exploit SPH somewhere.
        deep_algorithms = {
            node.join_algorithm.name
            for node in dqo.plan.walk()
            if node.op == "join"
        } | {
            node.grouping_algorithm.name
            for node in dqo.plan.walk()
            if node.op == "group_by"
        }
        assert any(name.startswith("SPH") for name in deep_algorithms)

    def test_join_count_in_plan(self, star):
        scenario, catalog = star
        logical = plan_query(scenario.join_query(0), catalog)
        result = optimize_dqo(logical, catalog)
        joins = [n for n in result.plan.walk() if n.op == "join"]
        assert len(joins) == 3  # 4 relations -> 3 joins

    def test_search_effort_grows_with_relations(self):
        two_way = make_star_scenario(
            fact_rows=2_000,
            dimensions=[DimensionSpec(rows=1_000, num_groups=100)],
            seed=3,
        )
        four_way = make_star_scenario(fact_rows=2_000, seed=3)
        small_catalog = two_way.build_catalog()
        large_catalog = four_way.build_catalog()
        small = optimize_dqo(
            plan_query(two_way.join_query(0), small_catalog), small_catalog
        )
        large = optimize_dqo(
            plan_query(four_way.join_query(0), large_catalog), large_catalog
        )
        assert large.stats.generated > small.stats.generated


class TestFiveWay:
    def test_five_relations(self):
        scenario = make_star_scenario(
            fact_rows=2_000,
            dimensions=[
                DimensionSpec(rows=500, num_groups=50),
                DimensionSpec(
                    rows=600, num_groups=60, sortedness=Sortedness.UNSORTED
                ),
                DimensionSpec(rows=700, num_groups=70, density=Density.SPARSE),
                DimensionSpec(rows=800, num_groups=80),
            ],
            seed=4,
        )
        catalog = scenario.build_catalog()
        logical = plan_query(scenario.join_query(0), catalog)
        truth = evaluate_naive(logical, catalog)
        result = optimize_dqo(logical, catalog)
        output = execute(to_operator(result.plan, catalog, validate=True))
        assert output.equals_unordered(truth)
