"""Physical plan rendering and lowering to the engine."""

import pytest

from repro.core import Granularity, optimize_dqo, optimize_sqo, to_operator
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute
from repro.logical import evaluate_naive
from repro.sql import plan_query


@pytest.fixture
def optimized(join_catalog, paper_query):
    logical = plan_query(paper_query, join_catalog)
    return join_catalog, logical, optimize_dqo(logical, join_catalog)


class TestExplain:
    def test_explain_annotations(self, optimized):
        __, __, result = optimized
        text = result.explain()
        assert "cost=" in text and "rows=" in text and "props=" in text
        assert "GroupBy[" in text and "Join[" in text

    def test_deep_explain_shows_recipe(self, optimized):
        __, __, result = optimized
        deep_text = result.explain(deep=True)
        assert "partitioned_grouping" in deep_text
        assert "<ORGANELLE>" in deep_text

    def test_max_granularity(self, optimized):
        catalog, logical, dqo = optimized
        assert dqo.plan.max_granularity() >= Granularity.MACROMOLECULE
        sqo = optimize_sqo(logical, catalog)
        assert sqo.plan.max_granularity() is Granularity.ORGANELLE


class TestLowering:
    def test_lowered_plan_matches_naive(self, optimized):
        catalog, logical, result = optimized
        truth = evaluate_naive(logical, catalog)
        output = execute(to_operator(result.plan, catalog))
        assert output.equals_unordered(truth)

    @pytest.mark.parametrize("r_sort", list(Sortedness))
    @pytest.mark.parametrize("s_sort", list(Sortedness))
    @pytest.mark.parametrize("density", list(Density))
    def test_all_grid_plans_execute_with_validation(
        self, r_sort, s_sort, density, paper_query
    ):
        """Every chosen plan's property claims are *checked at runtime*:
        to_operator(validate=True) makes OG/OJ verify their preconditions,
        so a wrong sortedness claim would raise instead of mismatching."""
        catalog = make_join_scenario(
            n_r=600,
            n_s=1_500,
            num_groups=60,
            r_sortedness=r_sort,
            s_sortedness=s_sort,
            density=density,
            seed=9,
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        truth = evaluate_naive(logical, catalog)
        for optimizer in (optimize_sqo, optimize_dqo):
            result = optimizer(logical, catalog)
            output = execute(to_operator(result.plan, catalog, validate=True))
            assert output.equals_unordered(truth)

    def test_decorated_plans_execute(self, join_catalog):
        sql = (
            "SELECT A AS grp, COUNT(*) AS c FROM R JOIN S ON ID = R_ID "
            "WHERE B < 500 GROUP BY A ORDER BY grp LIMIT 7"
        )
        logical = plan_query(sql, join_catalog)
        truth = evaluate_naive(logical, join_catalog)
        result = optimize_dqo(logical, join_catalog)
        output = execute(to_operator(result.plan, join_catalog))
        assert output.equals(truth)  # ordered + limited: exact equality
