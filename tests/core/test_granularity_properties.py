"""Granularity hierarchy (Table 1) and DQO plan properties (§2.2)."""

import numpy as np
import pytest

from repro.core import (
    Correlations,
    Granularity,
    PropertyVector,
    correlations_from_table,
    detect_monotone_correlation,
    properties_from_table,
    render_table1,
)
from repro.core.granularity import TABLE1, dqo_reach, info_for, sqo_reach
from repro.storage import Table


class TestGranularity:
    def test_ordering_is_physicality(self):
        assert Granularity.CELL < Granularity.ORGANELLE < Granularity.ATOM

    def test_table1_has_five_rows(self):
        assert len(TABLE1) == 5
        assert [row.level for row in TABLE1] == list(Granularity)

    def test_reach(self):
        # Table 1: SQO's optimiser stops at operators; DQO descends to
        # molecules; atoms stay with the compiler for both.
        assert sqo_reach() is Granularity.ORGANELLE
        assert dqo_reach() is Granularity.MOLECULE

    def test_sqo_dqo_split_matches_paper(self):
        for row in TABLE1:
            if row.level <= Granularity.ORGANELLE:
                assert row.optimised_by_sqo == "query optimiser"
            elif row.level is Granularity.ATOM:
                assert row.optimised_by_dqo == "compiler"
            else:
                assert row.optimised_by_sqo == "developer"
                assert row.optimised_by_dqo == "query optimiser"

    def test_render(self):
        text = render_table1()
        assert "MACROMOLECULE" in text and "developer" in text

    def test_info_for(self):
        assert info_for(Granularity.MOLECULE).typical_loc == 10


class TestPropertyVector:
    def test_sorted_implies_clustered(self):
        vector = PropertyVector(sorted_on=frozenset({"a"}))
        assert vector.is_clustered_on("a")

    def test_covers_is_pointwise(self):
        strong = PropertyVector(
            sorted_on=frozenset({"a"}), dense=frozenset({"a", "b"})
        )
        weak = PropertyVector(dense=frozenset({"a"}))
        assert strong.covers(weak)
        assert not weak.covers(strong)
        assert strong.covers(strong)

    def test_incomparable_vectors(self):
        a = PropertyVector(sorted_on=frozenset({"x"}))
        b = PropertyVector(dense=frozenset({"y"}))
        assert not a.covers(b) and not b.covers(a)

    def test_restrict_to_orders_drops_density(self):
        vector = PropertyVector(
            sorted_on=frozenset({"a"}), dense=frozenset({"a"})
        )
        projected = vector.restrict_to_orders()
        assert projected.is_sorted_on("a")
        assert not projected.is_dense("a")

    def test_restrict_to_columns(self):
        vector = PropertyVector(
            sorted_on=frozenset({"a", "b"}), dense=frozenset({"b"})
        )
        kept = vector.restrict_to_columns(["b"])
        assert kept.sorted_on == frozenset({"b"})
        assert kept.dense == frozenset({"b"})

    def test_without_order_keeps_density(self):
        vector = PropertyVector(
            sorted_on=frozenset({"a"}), dense=frozenset({"a"})
        )
        shuffled = vector.without_order()
        assert not shuffled.is_sorted_on("a")
        assert shuffled.is_dense("a")

    def test_describe(self):
        assert PropertyVector().describe() == "{}"
        vector = PropertyVector(
            sorted_on=frozenset({"k"}), dense=frozenset({"k"})
        )
        assert "sorted(k)" in vector.describe()
        assert "dense(k)" in vector.describe()


class TestCorrelations:
    def test_transitive_closure(self):
        correlations = Correlations(frozenset({("a", "b"), ("b", "c")}))
        assert correlations.implied_by("a") == frozenset({"b", "c"})

    def test_close_sorted(self):
        correlations = Correlations(frozenset({("id", "a")}))
        vector = PropertyVector(sorted_on=frozenset({"id"}))
        closed = correlations.close_sorted(vector)
        assert closed.is_sorted_on("a")

    def test_detect_monotone(self):
        table = Table.from_arrays(
            {"x": np.array([3, 1, 2]), "y": np.array([30, 10, 20])}
        )
        assert detect_monotone_correlation(table, "x", "y")
        assert detect_monotone_correlation(table, "y", "x")
        anti = Table.from_arrays(
            {"x": np.array([1, 2]), "y": np.array([5, 1])}
        )
        assert not detect_monotone_correlation(anti, "x", "y")

    def test_correlations_from_table_qualified(self):
        table = Table.from_arrays(
            {"id": np.arange(10), "a": np.arange(10) // 2}
        )
        correlations = correlations_from_table(table, "R")
        assert ("R.id", "R.a") in correlations.pairs
        # a -> id is NOT monotone (ties in a leave id order ambiguous but
        # stable argsort keeps it; duplicates make it still monotone here).

    def test_properties_from_table(self):
        table = Table.from_arrays(
            {
                "sorted_dense": np.arange(5),
                "shuffled": np.array([4, 0, 3, 1, 2]),
            }
        )
        vector = properties_from_table(table, "T")
        assert vector.is_sorted_on("T.sorted_dense")
        assert vector.is_dense("T.sorted_dense")
        assert not vector.is_sorted_on("T.shuffled")
        assert vector.is_dense("T.shuffled")  # values 0..4, dense
