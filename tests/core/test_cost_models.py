"""Cost models: Table 2 exactness, calibration fitting, cardinalities."""

import math

import numpy as np
import pytest

from repro.core.cost import (
    CardinalityEstimator,
    PaperCostModel,
    Sample,
    calibrate_grouping,
    fit_coefficients,
)
from repro.datagen import make_join_scenario
from repro.engine import GroupingAlgorithm, JoinAlgorithm
from repro.errors import CostModelError


class TestPaperCostModel:
    """Every formula of Table 2, verbatim."""

    model = PaperCostModel()

    def test_grouping_formulas(self):
        n, g = 90_000, 20_000
        assert self.model.grouping_cost(GroupingAlgorithm.HG, n, g) == 4 * n
        assert self.model.grouping_cost(GroupingAlgorithm.OG, n, g) == n
        assert self.model.grouping_cost(GroupingAlgorithm.SPHG, n, g) == n
        assert self.model.grouping_cost(
            GroupingAlgorithm.SOG, n, g
        ) == pytest.approx(n * math.log2(n) + n)
        assert self.model.grouping_cost(
            GroupingAlgorithm.BSG, n, g
        ) == pytest.approx(n * math.log2(g))

    def test_join_formulas(self):
        r, s, g = 45_000, 90_000, 20_000
        assert self.model.join_cost(JoinAlgorithm.HJ, r, s, g) == 4 * (r + s)
        assert self.model.join_cost(JoinAlgorithm.OJ, r, s, g) == r + s
        assert self.model.join_cost(JoinAlgorithm.SPHJ, r, s, g) == r + s
        assert self.model.join_cost(
            JoinAlgorithm.SOJ, r, s, g
        ) == pytest.approx(r * math.log2(r) + s * math.log2(s) + r + s)
        assert self.model.join_cost(
            JoinAlgorithm.BSJ, r, s, g
        ) == pytest.approx((r + s) * math.log2(g))

    def test_figure5_arithmetic(self):
        """The reconstruction behind DESIGN.md substitution #4."""
        r, s, j, g = 45_000, 90_000, 90_000, 20_000
        sqo_unsorted = self.model.join_cost(
            JoinAlgorithm.HJ, r, s, g
        ) + self.model.grouping_cost(GroupingAlgorithm.HG, j, g)
        dqo = self.model.join_cost(
            JoinAlgorithm.SPHJ, r, s, g
        ) + self.model.grouping_cost(GroupingAlgorithm.SPHG, j, g)
        sqo_s_sorted = self.model.join_cost(
            JoinAlgorithm.HJ, r, s, g
        ) + self.model.grouping_cost(GroupingAlgorithm.OG, j, g)
        assert sqo_unsorted / dqo == pytest.approx(4.0)
        assert sqo_s_sorted / dqo == pytest.approx(2.8)

    def test_degenerate_cardinalities(self):
        assert self.model.grouping_cost(GroupingAlgorithm.SOG, 1, 1) == 1
        assert self.model.grouping_cost(GroupingAlgorithm.BSG, 10, 1) == 0
        assert self.model.sort_cost(1) == 0

    def test_scan_free(self):
        assert self.model.scan_cost(10**9) == 0.0

    def test_build_split_bounded_by_total(self):
        r, s, g = 10_000, 20_000, 500
        for algorithm in JoinAlgorithm:
            build = self.model.join_build_cost(algorithm, r, s, g)
            total = self.model.join_cost(algorithm, r, s, g)
            assert 0 <= build <= total


class TestCalibration:
    def test_fit_recovers_linear_model(self):
        # Synthetic samples from cost = 2n exactly.
        samples = [
            Sample(n, g, 2.0 * n)
            for n in (1_000, 2_000, 5_000, 10_000)
            for g in (10, 100)
        ]
        coefficients = fit_coefficients(samples)
        assert coefficients[1] == pytest.approx(2.0, abs=1e-6)

    def test_fit_recovers_nlogn_model(self):
        samples = [
            Sample(n, 10, n * math.log2(n) * 0.5)
            for n in (1_000, 2_000, 4_000, 8_000, 16_000)
        ]
        coefficients = fit_coefficients(samples)
        assert coefficients[2] == pytest.approx(0.5, rel=0.05)

    def test_fit_needs_four_samples(self):
        with pytest.raises(CostModelError):
            fit_coefficients([Sample(1, 1, 1.0)] * 3)

    def test_coefficients_nonnegative(self):
        rng = np.random.default_rng(0)
        samples = [
            Sample(n, 10, max(float(rng.normal(n, n / 10)), 1.0))
            for n in (1_000, 2_000, 4_000, 8_000, 16_000, 32_000)
        ]
        assert (fit_coefficients(samples) >= 0).all()

    def test_calibrated_model_costs(self):
        samples = {
            GroupingAlgorithm.HG: [
                Sample(n, g, 4.0 * n) for n in (1_000, 2_000, 4_000, 8_000)
                for g in (10, 100)
            ],
            GroupingAlgorithm.SPHG: [
                Sample(n, g, 1.0 * n) for n in (1_000, 2_000, 4_000, 8_000)
                for g in (10, 100)
            ],
        }
        model = calibrate_grouping(samples)
        hg = model.grouping_cost(GroupingAlgorithm.HG, 50_000, 100)
        sphg = model.grouping_cost(GroupingAlgorithm.SPHG, 50_000, 100)
        assert hg / sphg == pytest.approx(4.0, rel=0.01)
        # Joins reuse the grouping fit: build + probe.
        hj = model.join_cost(JoinAlgorithm.HJ, 10_000, 30_000, 100)
        assert hj == pytest.approx(4.0 * 40_000, rel=0.01)

    def test_uncalibrated_algorithm_rejected(self):
        model = calibrate_grouping({})
        with pytest.raises(CostModelError, match="no calibration"):
            model.grouping_cost(GroupingAlgorithm.HG, 10, 2)


class TestCardinality:
    def test_fk_join_output_is_child_side(self):
        scenario = make_join_scenario(n_r=500, n_s=1_500, num_groups=50)
        catalog = scenario.build_catalog()
        estimator = CardinalityEstimator(catalog)
        r = estimator.base_table("R", "R")
        s = estimator.base_table("S", "S")
        joined = estimator.join(r, s, "R.ID", "S.R_ID", is_foreign_key=True)
        assert joined.rows == 1_500
        # Grouping output bounded by R.A's NDV.
        grouped = estimator.group_by(joined, "R.A")
        assert grouped.rows == 50

    def test_non_fk_join_formula(self):
        scenario = make_join_scenario(n_r=500, n_s=1_500, num_groups=50)
        estimator = CardinalityEstimator(scenario.build_catalog())
        r = estimator.base_table("R", "R")
        s = estimator.base_table("S", "S")
        joined = estimator.join(r, s, "R.ID", "S.R_ID", is_foreign_key=False)
        # |R|*|S| / max(ndv) = 500*1500/500
        assert joined.rows == pytest.approx(1_500)

    def test_ndv_capped_by_rows(self):
        scenario = make_join_scenario(n_r=500, n_s=100, num_groups=50)
        estimator = CardinalityEstimator(scenario.build_catalog())
        r = estimator.base_table("R", "R")
        s = estimator.base_table("S", "S")
        joined = estimator.join(r, s, "R.ID", "S.R_ID", is_foreign_key=True)
        assert joined.rows == 100
        assert joined.ndv("R.ID") <= 100
