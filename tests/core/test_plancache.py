"""The optimiser plan cache: fingerprints, invalidation, LRU, metrics.

A cached plan may be reused only while everything it depended on is
unchanged: the normalised query, the catalog contents and statistics,
the optimiser configuration, the cost model instance, and the planned
worker count. Each of those dimensions gets an invalidation test here;
the tail of the file covers the parallel option space the worker
dimension exists for.
"""

import pytest

from repro.core import (
    DynamicProgrammingOptimizer,
    PlanCache,
    disable_plan_cache,
    dqo_config,
    enable_plan_cache,
    get_plan_cache,
    optimize_dqo,
    set_plan_cache,
    sqo_config,
)
from repro.core.optimizer import exhaustive_minimum, extract_query, spec_fingerprint
from repro.core.optimizer.plancache import config_fingerprint
from repro.core.optimizer.rules import grouping_options, join_options
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import GroupingAlgorithm, JoinAlgorithm, parallel_execution
from repro.engine.kernels.parallel import PARALLEL_PROBE_ALGORITHMS
from repro.obs import capture_observability
from repro.sql import plan_query
from repro.storage.catalog import ForeignKey


@pytest.fixture
def catalog():
    return make_join_scenario(
        n_r=800,
        n_s=2_000,
        num_groups=80,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=3,
    ).build_catalog()


@pytest.fixture
def spec(catalog, paper_query):
    return extract_query(plan_query(paper_query, catalog))


class TestSpecFingerprint:
    def test_stable_across_parses(self, catalog, paper_query):
        a = extract_query(plan_query(paper_query, catalog))
        b = extract_query(plan_query(paper_query, catalog))
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_conjunct_order_is_normalised(self, catalog):
        a = extract_query(
            plan_query(
                "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID "
                "WHERE R.A > 3 AND R.ID > 10 GROUP BY R.A",
                catalog,
            )
        )
        b = extract_query(
            plan_query(
                "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID "
                "WHERE R.ID > 10 AND R.A > 3 GROUP BY R.A",
                catalog,
            )
        )
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_different_queries_differ(self, catalog, paper_query):
        a = extract_query(plan_query(paper_query, catalog))
        b = extract_query(
            plan_query(
                "SELECT R.A, COUNT(*), SUM(S.B) FROM R JOIN S ON "
                "R.ID = S.R_ID GROUP BY R.A",
                catalog,
            )
        )
        assert spec_fingerprint(a) != spec_fingerprint(b)


class TestCatalogFingerprint:
    def test_register_replace_bumps_version(self, catalog):
        before = catalog.fingerprint()
        catalog.register("R", catalog.table("R"), replace=True)
        after = catalog.fingerprint()
        assert before != after
        assert after[0] == before[0]  # same catalog, new version

    def test_add_foreign_key_bumps_version(self, catalog):
        before = catalog.fingerprint()
        catalog.add_foreign_key(ForeignKey("S", "R_ID", "R", "ID"))
        assert catalog.fingerprint() != before

    def test_distinct_catalogs_never_collide(self):
        a = make_join_scenario(n_r=200, n_s=400, num_groups=20, seed=1)
        b = make_join_scenario(n_r=200, n_s=400, num_groups=20, seed=1)
        assert a.build_catalog().fingerprint() != b.build_catalog().fingerprint()


class TestPlanCacheUnit:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_miss_then_hit(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        first = optimizer.optimize_spec(spec)
        assert not first.cached
        assert cache.misses == 1 and cache.hits == 0
        second = optimizer.optimize_spec(spec)
        assert second.cached
        assert cache.hits == 1
        assert second.cost == first.cost
        assert second.explain(deep=True) == first.explain(deep=True)

    def test_cached_result_skips_the_search(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        first = optimizer.optimize_spec(spec)
        assert first.stats.generated > 0
        second = optimizer.optimize_spec(spec)
        assert second.stats.generated == 0
        assert second.stats.closures == 0
        assert second.stats.retained == 0

    def test_hit_does_not_expose_stored_alternatives(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        optimizer.optimize_spec(spec)
        hit = optimizer.optimize_spec(spec)
        hit.alternatives.clear()
        again = optimizer.optimize_spec(spec)
        assert again.cached
        assert len(again.alternatives) == len(
            optimizer.optimize_spec(spec).alternatives
        )

    def test_lru_eviction(self, catalog, paper_query):
        cache = PlanCache(capacity=2)
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        queries = [
            paper_query,
            "SELECT R.A, COUNT(*), SUM(S.B) FROM R JOIN S ON R.ID = S.R_ID "
            "GROUP BY R.A",
            "SELECT S.B, COUNT(*) FROM S GROUP BY S.B",
        ]
        specs = [extract_query(plan_query(q, catalog)) for q in queries]
        for spec in specs:
            optimizer.optimize_spec(spec)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The oldest entry is gone: re-optimising it is a miss...
        assert not optimizer.optimize_spec(specs[0]).cached
        # ...and the most recent two were still resident.
        assert cache.info()["evictions"] == 2

    def test_clear_keeps_counters(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        optimizer.optimize_spec(spec)
        optimizer.optimize_spec(spec)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert not optimizer.optimize_spec(spec).cached


class TestInvalidation:
    def test_stats_update_invalidates(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        optimizer.optimize_spec(spec)
        catalog.register("R", catalog.table("R"), replace=True)
        result = optimizer.optimize_spec(spec)
        assert not result.cached
        assert cache.misses == 2
        assert len(cache) == 2  # old entry retained under the old version

    def test_config_is_part_of_the_key(self, catalog, spec):
        cache = PlanCache()
        deep = DynamicProgrammingOptimizer(
            catalog, config=dqo_config(), plan_cache=cache
        )
        shallow = DynamicProgrammingOptimizer(
            catalog, config=sqo_config(), plan_cache=cache
        )
        deep.optimize_spec(spec)
        assert not shallow.optimize_spec(spec).cached
        assert len(cache) == 2
        assert config_fingerprint(dqo_config()) != config_fingerprint(sqo_config())

    def test_workers_are_part_of_the_key(self, catalog, spec):
        cache = PlanCache()
        serial = DynamicProgrammingOptimizer(
            catalog, config=dqo_config(workers=1), plan_cache=cache
        )
        wide = DynamicProgrammingOptimizer(
            catalog, config=dqo_config(workers=4), plan_cache=cache
        )
        serial.optimize_spec(spec)
        assert not wide.optimize_spec(spec).cached
        assert len(cache) == 2
        assert wide.optimize_spec(spec).cached

    def test_stateless_cost_models_share_entries(self, catalog, spec):
        from repro.core import PaperCostModel

        cache = PlanCache()
        a = DynamicProgrammingOptimizer(
            catalog, cost_model=PaperCostModel(), plan_cache=cache
        )
        b = DynamicProgrammingOptimizer(
            catalog, cost_model=PaperCostModel(), plan_cache=cache
        )
        a.optimize_spec(spec)
        # PaperCostModel is stateless: a different instance costs
        # identically, so its fingerprint carries no instance identity.
        assert b.optimize_spec(spec).cached

    def test_stateful_cost_models_keep_instance_identity(self):
        from repro.core import CalibratedCostModel

        a = CalibratedCostModel()
        b = CalibratedCostModel()
        assert a.cache_fingerprint() != b.cache_fingerprint()


class TestMetricsAndGlobalCache:
    def test_hit_miss_counters_in_snapshot(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        with capture_observability() as (metrics, __):
            optimizer.optimize_spec(spec)
            optimizer.optimize_spec(spec)
            snapshot = metrics.snapshot()
        assert snapshot["optimizer.plancache.miss"] == 1
        assert snapshot["optimizer.plancache.hit"] == 1

    def test_eviction_counter_in_snapshot(self, catalog, paper_query):
        cache = PlanCache(capacity=1)
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        specs = [
            extract_query(plan_query(q, catalog))
            for q in (
                paper_query,
                "SELECT S.B, COUNT(*) FROM S GROUP BY S.B",
            )
        ]
        with capture_observability() as (metrics, __):
            for spec in specs:
                optimizer.optimize_spec(spec)
            snapshot = metrics.snapshot()
        assert snapshot["optimizer.plancache.evictions"] == 1

    def test_process_wide_cache_serves_optimize_dqo(self, catalog, paper_query):
        previous = get_plan_cache()
        try:
            cache = enable_plan_cache()
            assert enable_plan_cache() is cache  # idempotent
            logical = plan_query(paper_query, catalog)
            first = optimize_dqo(logical, catalog)
            second = optimize_dqo(logical, catalog)
            assert not first.cached
            assert second.cached
            assert cache.hits >= 1
        finally:
            set_plan_cache(previous)

    def test_disable_plan_cache(self):
        previous = get_plan_cache()
        try:
            enable_plan_cache()
            disable_plan_cache()
            assert get_plan_cache() is None
        finally:
            set_plan_cache(previous)


class TestParallelOptionSpace:
    """The worker dimension the cache keys on: what it unlocks and what
    it must not disturb."""

    def test_serial_space_has_no_parallel_options(self):
        assert not any(o.parallel for o in grouping_options(dqo_config(), 1))
        assert not any(o.parallel for o in join_options(dqo_config(), 1))

    def test_deep_multiworker_space_adds_parallel_variants(self):
        grouping = grouping_options(dqo_config(), 4)
        parallel_algorithms = {o.algorithm for o in grouping if o.parallel}
        assert parallel_algorithms  # the lattice's parallel-loop recipes
        joins = join_options(dqo_config(), 4)
        assert {o.algorithm for o in joins if o.parallel} == set(
            PARALLEL_PROBE_ALGORITHMS
        )

    def test_sqo_never_sees_the_loop_granule(self):
        assert not any(o.parallel for o in grouping_options(sqo_config(), 4))
        assert not any(o.parallel for o in join_options(sqo_config(), 4))

    def test_optimizer_picks_parallel_plan_when_cheaper(
        self, catalog, paper_query
    ):
        logical = plan_query(paper_query, catalog)
        serial = optimize_dqo(logical, catalog, workers=1)
        wide = optimize_dqo(logical, catalog, workers=4)
        assert wide.cost < serial.cost
        assert any(node.parallel for node in wide.plan.walk())
        assert not any(node.parallel for node in serial.plan.walk())

    def test_oracle_agreement_with_workers(self, catalog, paper_query):
        logical = plan_query(paper_query, catalog)
        config = dqo_config(workers=4)
        dp = optimize_dqo(logical, catalog, workers=4)
        oracle = exhaustive_minimum(logical, catalog, config=config)
        assert dp.cost == pytest.approx(oracle.cost)

    def test_figure5_costs_invariant_to_ambient_workers(
        self, catalog, paper_query
    ):
        # The default config plans for one worker regardless of
        # REPRO_WORKERS, so published cost ratios never drift with the
        # runtime executor setting.
        logical = plan_query(paper_query, catalog)
        baseline = optimize_dqo(logical, catalog)
        with parallel_execution(4):
            under_ambient = optimize_dqo(logical, catalog)
        assert under_ambient.cost == baseline.cost
        # Opting in to the ambient setting is explicit:
        with parallel_execution(4):
            ambient_aware = optimize_dqo(logical, catalog, workers=None)
        assert ambient_aware.cost < baseline.cost


class TestBackendOptionSpace:
    """The execution-backend dimension: process options are opt-in,
    keyed into the cache, and costed per node."""

    def test_thread_config_excludes_process_options(self):
        for option in grouping_options(dqo_config(workers=4), 4):
            assert option.backend == "thread"
        for option in join_options(dqo_config(workers=4), 4):
            assert option.backend == "thread"

    def test_process_config_adds_backend_variants(self):
        config = dqo_config(workers=4, backend="process")
        grouping = grouping_options(config, 4)
        assert any(
            o.backend == "process" and o.parallel for o in grouping
        )
        assert any(
            o.backend == "process" and o.exchange for o in grouping
        )
        joins = join_options(config, 4)
        assert any(o.backend == "process" and o.parallel for o in joins)
        assert any(o.backend == "process" and o.exchange for o in joins)

    def test_exchange_needs_multiple_workers(self):
        config = dqo_config(backend="process")
        assert not any(o.exchange for o in grouping_options(config, 1))
        assert not any(o.exchange for o in join_options(config, 1))

    def test_backend_changes_config_fingerprint(self):
        thread = dqo_config(workers=4)
        process = dqo_config(workers=4, backend="process")
        assert config_fingerprint(thread) != config_fingerprint(process)

    def test_backend_is_part_of_the_cache_key(self, catalog, spec):
        cache = PlanCache()
        thread = DynamicProgrammingOptimizer(
            catalog, config=dqo_config(workers=4), plan_cache=cache
        )
        process = DynamicProgrammingOptimizer(
            catalog,
            config=dqo_config(workers=4, backend="process"),
            plan_cache=cache,
        )
        thread.optimize_spec(spec)
        assert not process.optimize_spec(spec).cached
        assert len(cache) == 2
        assert process.optimize_spec(spec).cached

    def test_process_backend_plans_stay_oracle_optimal(
        self, catalog, paper_query
    ):
        logical = plan_query(paper_query, catalog)
        config = dqo_config(workers=4, backend="process")
        dp = optimize_dqo(logical, catalog, workers=4, backend="process")
        oracle = exhaustive_minimum(logical, catalog, config=config)
        assert dp.cost == pytest.approx(oracle.cost)

    def test_thread_plans_keep_historical_fingerprints(
        self, catalog, paper_query
    ):
        # Sentinel baselines hash thread plans with the pre-backend
        # tokens; those hashes must not drift.
        logical = plan_query(paper_query, catalog)
        wide = optimize_dqo(logical, catalog, workers=4)
        for node in wide.plan.walk():
            assert node.backend == "thread"
        assert "@" not in wide.plan_fingerprint


class TestEntryStats:
    def test_entries_report_hits_age_and_identity(self, catalog, spec):
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        result = optimizer.optimize_spec(spec)
        for __ in range(3):
            optimizer.optimize_spec(spec)
        rows = cache.entry_stats()
        assert len(rows) == 1
        row = rows[0]
        assert row["spec_fingerprint"] == spec_fingerprint(spec)
        assert row["plan_hash"] == result.plan_fingerprint
        assert row["hits"] == 3
        assert row["age_seconds"] >= 0.0
        assert row["cost"] == pytest.approx(result.cost)
        assert row["workers"] == 1

    def test_hottest_first_and_limit(self, catalog, spec):
        cache = PlanCache()
        hot = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        hot.optimize_spec(spec)
        for __ in range(4):
            hot.optimize_spec(spec)
        cold = DynamicProgrammingOptimizer(
            catalog, plan_cache=cache, config=dqo_config(workers=2)
        )
        cold.optimize_spec(spec)
        rows = cache.entry_stats()
        assert len(rows) == 2
        assert rows[0]["hits"] == 4 and rows[1]["hits"] == 0
        limited = cache.entry_stats(limit=1)
        assert len(limited) == 1
        assert limited[0]["plan_hash"] == rows[0]["plan_hash"]

    def test_cached_hits_keep_fingerprints(self, catalog, spec):
        """dataclasses.replace on a hit must preserve the identity pair
        the sentinel correlates on."""
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        fresh = optimizer.optimize_spec(spec)
        hit = optimizer.optimize_spec(spec)
        assert hit.cached
        assert hit.plan_fingerprint == fresh.plan_fingerprint != ""
        assert hit.spec_fingerprint == fresh.spec_fingerprint != ""
