"""Optimiser search telemetry: SearchStats invariants and coverage."""

import pytest

from repro.core import SearchStats, optimize_dqo, optimize_sqo
from repro.core.optimizer.exhaustive import enumerate_exhaustive
from repro.core.optimizer.greedy import optimize_greedy
from repro.datagen import Density, Sortedness, make_join_scenario, make_star_scenario
from repro.sql import plan_query


@pytest.fixture(scope="module")
def star():
    scenario = make_star_scenario(fact_rows=2_000, seed=5)
    catalog = scenario.build_catalog()
    query = (
        "SELECT D0.A, COUNT(*) FROM FACT "
        "JOIN D0 ON FACT.D0_ID = D0.ID "
        "JOIN D1 ON FACT.D1_ID = D1.ID "
        "GROUP BY D0.A"
    )
    return catalog, plan_query(query, catalog)


@pytest.fixture(scope="module")
def pair():
    scenario = make_join_scenario(
        n_r=2_000,
        n_s=4_000,
        num_groups=500,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    query = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
    return catalog, plan_query(query, catalog)


class TestInvariants:
    def test_three_scan_query_counts(self, star):
        catalog, logical = star
        result = optimize_dqo(logical, catalog)
        stats = result.stats
        assert stats.generated > 0
        assert stats.pruned_dominated <= stats.generated
        assert stats.pruned_total <= stats.generated
        assert stats.retained >= 1
        assert stats.closures > 0
        # The DP table saw all three subset sizes of a 3-scan query.
        assert set(stats.table_entries_by_size) == {1, 2, 3}
        assert all(
            count >= 1 for count in stats.table_entries_by_size.values()
        )

    def test_multi_join_generates_candidates(self, pair):
        catalog, logical = pair
        result = optimize_dqo(logical, catalog)
        assert result.stats.generated > 0

    def test_sqo_and_greedy_also_count(self, star):
        catalog, logical = star
        for result in (
            optimize_sqo(logical, catalog),
            optimize_greedy(logical, catalog),
        ):
            assert result.stats.generated > 0
            assert result.stats.pruned_dominated <= result.stats.generated

    def test_greedy_explores_no_more_than_dp_retains_less(self, star):
        catalog, logical = star
        dqo = optimize_dqo(logical, catalog)
        greedy = optimize_greedy(logical, catalog)
        # Greedy truncates frontiers to one entry, so it can never keep
        # more alive per subset size than the Pareto DP.
        for size, kept in greedy.stats.table_entries_by_size.items():
            assert kept <= dqo.stats.table_entries_by_size[size]

    def test_stats_independent_across_runs(self, pair):
        catalog, logical = pair
        first = optimize_dqo(logical, catalog).stats
        second = optimize_dqo(logical, catalog).stats
        assert first.generated == second.generated
        assert first.table_entries_by_size == second.table_entries_by_size


class TestRendering:
    def test_as_dict_and_render(self, pair):
        catalog, logical = pair
        stats = optimize_dqo(logical, catalog).stats
        record = stats.as_dict()
        assert record["generated"] == stats.generated
        assert "1" in record["table_entries_by_size"]
        text = stats.render()
        assert "candidates generated" in text
        assert "|S|=1" in text

    def test_empty_stats_render(self):
        text = SearchStats().render()
        assert "(none)" in text


class TestExhaustiveStats:
    def test_oracle_counts_its_space(self, pair):
        catalog, logical = pair
        stats = SearchStats()
        plans = enumerate_exhaustive(logical, catalog, stats=stats)
        assert stats.generated == len(plans) > 0
        assert stats.retained == stats.generated  # the oracle never prunes
