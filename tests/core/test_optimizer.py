"""The unified SQO/DQO optimiser: Figure 5, oracle agreement, pruning."""

import pytest

from repro.core import (
    DynamicProgrammingOptimizer,
    dqo_config,
    optimize_dqo,
    optimize_greedy,
    optimize_sqo,
    sqo_config,
)
from repro.core.optimizer import (
    PropertyScope,
    enumerate_exhaustive,
    exhaustive_minimum,
    extract_query,
)
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import GroupingAlgorithm, JoinAlgorithm
from repro.errors import PlanError
from repro.sql import plan_query


def scenario_catalog(r_sort, s_sort, density, **kwargs):
    defaults = dict(n_r=800, n_s=2_000, num_groups=80, seed=3)
    defaults.update(kwargs)
    return make_join_scenario(
        r_sortedness=r_sort, s_sortedness=s_sort, density=density, **defaults
    ).build_catalog()


class TestFigure5Grid:
    """The paper's §4.3 experiment as an assertion, at full cardinality."""

    EXPECTED = {
        (Sortedness.SORTED, Sortedness.SORTED, Density.SPARSE): 1.0,
        (Sortedness.SORTED, Sortedness.SORTED, Density.DENSE): 1.0,
        (Sortedness.SORTED, Sortedness.UNSORTED, Density.SPARSE): 1.0,
        (Sortedness.SORTED, Sortedness.UNSORTED, Density.DENSE): 4.0,
        (Sortedness.UNSORTED, Sortedness.SORTED, Density.SPARSE): 1.0,
        (Sortedness.UNSORTED, Sortedness.SORTED, Density.DENSE): 2.8,
        (Sortedness.UNSORTED, Sortedness.UNSORTED, Density.SPARSE): 1.0,
        (Sortedness.UNSORTED, Sortedness.UNSORTED, Density.DENSE): 4.0,
    }

    @pytest.mark.parametrize("config,expected", list(EXPECTED.items()),
                             ids=lambda v: str(v))
    def test_improvement_factor(self, config, expected, paper_query, memory_storage):
        r_sort, s_sort, density = config
        catalog = make_join_scenario(
            r_sortedness=r_sort, s_sortedness=s_sort, density=density
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        sqo = optimize_sqo(logical, catalog)
        dqo = optimize_dqo(logical, catalog)
        assert sqo.cost / dqo.cost == pytest.approx(expected, rel=1e-6)

    def test_dense_unsorted_plans_use_sph(self, paper_query):
        catalog = make_join_scenario(
            r_sortedness=Sortedness.UNSORTED,
            s_sortedness=Sortedness.UNSORTED,
            density=Density.DENSE,
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        dqo = optimize_dqo(logical, catalog)
        algorithms = {
            node.op: node for node in dqo.plan.walk() if node.op in ("join", "group_by")
        }
        assert algorithms["join"].join_algorithm is JoinAlgorithm.SPHJ
        assert algorithms["group_by"].grouping_algorithm is GroupingAlgorithm.SPHG
        sqo = optimize_sqo(logical, catalog)
        sqo_algorithms = {
            node.op: node for node in sqo.plan.walk() if node.op in ("join", "group_by")
        }
        assert sqo_algorithms["join"].join_algorithm is JoinAlgorithm.HJ
        assert sqo_algorithms["group_by"].grouping_algorithm is GroupingAlgorithm.HG

    def test_both_sorted_plans_are_order_based(self, paper_query):
        catalog = make_join_scenario().build_catalog()  # sorted/sorted/dense
        logical = plan_query(paper_query, catalog)
        sqo = optimize_sqo(logical, catalog)
        join_node = next(n for n in sqo.plan.walk() if n.op == "join")
        assert join_node.join_algorithm is JoinAlgorithm.OJ

    def test_deep_plans_carry_recipes(self, paper_query):
        catalog = make_join_scenario().build_catalog()
        logical = plan_query(paper_query, catalog)
        dqo = optimize_dqo(logical, catalog)
        group_node = next(n for n in dqo.plan.walk() if n.op == "group_by")
        assert group_node.recipe is not None
        sqo = optimize_sqo(logical, catalog)
        group_node = next(n for n in sqo.plan.walk() if n.op == "group_by")
        assert group_node.recipe is None  # blackbox textbook operator


class TestOracleAgreement:
    @pytest.mark.parametrize("r_sort", list(Sortedness))
    @pytest.mark.parametrize("s_sort", list(Sortedness))
    @pytest.mark.parametrize("density", list(Density))
    def test_dp_matches_exhaustive(self, r_sort, s_sort, density, paper_query):
        catalog = scenario_catalog(r_sort, s_sort, density)
        logical = plan_query(paper_query, catalog)
        for config_factory, optimizer in (
            (sqo_config, optimize_sqo),
            (dqo_config, optimize_dqo),
        ):
            oracle = exhaustive_minimum(
                logical, catalog, config=config_factory()
            )
            result = optimizer(logical, catalog)
            assert result.cost == pytest.approx(oracle.cost)

    def test_exhaustive_space_is_nonempty_and_consistent(self, paper_query):
        catalog = scenario_catalog(
            Sortedness.UNSORTED, Sortedness.UNSORTED, Density.DENSE
        )
        logical = plan_query(paper_query, catalog)
        plans = enumerate_exhaustive(logical, catalog, config=dqo_config())
        assert len(plans) > 20
        assert min(p.cost for p in plans) > 0


class TestSearchBehaviour:
    def test_stats_populated(self, join_catalog, paper_query):
        result = optimize_dqo(plan_query(paper_query, join_catalog), join_catalog)
        assert result.stats.generated > 0
        assert result.stats.retained > 0

    def test_pruning_reduces_state(self, join_catalog, paper_query):
        logical = plan_query(paper_query, join_catalog)
        pruned = optimize_dqo(logical, join_catalog)
        unpruned = optimize_dqo(logical, join_catalog, prune_dominated=False)
        assert pruned.cost == pytest.approx(unpruned.cost)  # same optimum
        assert pruned.stats.pruned_dominated > 0
        assert unpruned.stats.pruned_dominated == 0

    def test_greedy_never_beats_dp(self, paper_query):
        for s_sort in Sortedness:
            catalog = scenario_catalog(
                Sortedness.UNSORTED, s_sort, Density.DENSE
            )
            logical = plan_query(paper_query, catalog)
            dp = optimize_dqo(logical, catalog)
            greedy = optimize_greedy(logical, catalog)
            assert greedy.cost >= dp.cost - 1e-9

    def test_alternatives_ranked(self, join_catalog, paper_query):
        result = optimize_dqo(plan_query(paper_query, join_catalog), join_catalog)
        costs = [result.cost] + [p.cost for p in result.alternatives]
        assert costs == sorted(costs)

    def test_commutation_changes_case2(self, paper_query, memory_storage):
        """Ablation: with commutation SQO can stream sorted R and the
        'R sorted, S unsorted, dense' factor drops from 4x to 2.8x."""
        catalog = make_join_scenario(
            r_sortedness=Sortedness.SORTED,
            s_sortedness=Sortedness.UNSORTED,
            density=Density.DENSE,
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        sqo = optimize_sqo(logical, catalog, consider_commutation=True)
        dqo = optimize_dqo(logical, catalog, consider_commutation=True)
        assert sqo.cost / dqo.cost == pytest.approx(2.8, rel=1e-6)


class TestQueryClasses:
    def test_single_table_grouping(self, memory_storage):
        catalog = scenario_catalog(
            Sortedness.SORTED, Sortedness.SORTED, Density.DENSE
        )
        logical = plan_query("SELECT A, COUNT(*) FROM R GROUP BY A", catalog)
        result = optimize_dqo(logical, catalog)
        group_node = next(n for n in result.plan.walk() if n.op == "group_by")
        # Sorted dense input: OG or SPHG, both at cost |R|.
        assert group_node.grouping_algorithm in (
            GroupingAlgorithm.OG,
            GroupingAlgorithm.SPHG,
        )
        assert result.cost == pytest.approx(800)

    def test_filters_disable_density(self):
        catalog = scenario_catalog(
            Sortedness.UNSORTED, Sortedness.UNSORTED, Density.DENSE
        )
        logical = plan_query(
            "SELECT A, COUNT(*) FROM R WHERE ID < 100 GROUP BY A", catalog
        )
        result = optimize_dqo(logical, catalog)
        group_node = next(n for n in result.plan.walk() if n.op == "group_by")
        # Density destroyed by the filter, so SPHG must not be chosen.
        assert group_node.grouping_algorithm is not GroupingAlgorithm.SPHG

    def test_order_by_free_when_sorted(self, paper_query):
        catalog = scenario_catalog(
            Sortedness.UNSORTED, Sortedness.UNSORTED, Density.DENSE
        )
        ordered = plan_query(paper_query + " ORDER BY R.A", catalog)
        plain = plan_query(paper_query, catalog)
        # DQO's SPHG output is sorted on R.A -> the order-by costs nothing.
        assert optimize_dqo(ordered, catalog).cost == pytest.approx(
            optimize_dqo(plain, catalog).cost
        )

    def test_unsupported_shape_rejected(self, join_catalog):
        from repro.engine import count_star
        from repro.logical import LogicalGroupBy, LogicalJoin, LogicalScan

        nested = LogicalJoin(
            LogicalGroupBy(LogicalScan("R"), "R.A", (count_star(),)),
            LogicalScan("S"),
            "R.A",
            "S.R_ID",
        )
        with pytest.raises(PlanError):
            extract_query(nested)
