"""Partial AVs and runtime-adaptive AVs (§6)."""

import numpy as np
import pytest

from repro.avs import (
    AdaptiveIndexView,
    AVRegistry,
    ViewKind,
    bind_offline,
    enumeration_savings,
)
from repro.core import Granularity
from repro.core.physiological import recipe_algorithm
from repro.engine import GroupingAlgorithm
from repro.errors import ViewError
from repro.storage import Catalog, Table


class TestPartialAV:
    def test_offline_binding_shrinks_query_time_space(self):
        partial = bind_offline(bound_level=Granularity.MACROMOLECULE)
        from_scratch, remaining = enumeration_savings(partial)
        assert from_scratch == 68
        assert remaining < from_scratch

    def test_completions_respect_offline_choice(self):
        # Offline pick 0 is the textbook hash path; every query-time
        # completion must still be hash-based grouping.
        partial = bind_offline(
            bound_level=Granularity.MACROMOLECULE, pick_index=0
        )
        for recipe in partial.query_time_recipes():
            assert recipe_algorithm(recipe) is GroupingAlgorithm.HG

    def test_full_binding_leaves_one_choice(self):
        partial = bind_offline(bound_level=Granularity.MOLECULE, pick_index=2)
        assert partial.query_time_choices() == 1

    def test_organelle_binding_keeps_space_open(self):
        partial = bind_offline(bound_level=Granularity.ORGANELLE)
        # Only the Γ -> partitioned form is fixed; all five algorithm
        # families remain query-time choices.
        algorithms = {
            recipe_algorithm(r) for r in partial.query_time_recipes()
        }
        assert len(algorithms) == 5

    def test_invalid_pick(self):
        with pytest.raises(ViewError):
            bind_offline(pick_index=999)

    def test_describe(self):
        partial = bind_offline(bound_level=Granularity.MACROMOLECULE)
        assert "PartialAV" in partial.describe()


class TestAdaptiveAV:
    @pytest.fixture
    def view(self):
        catalog = Catalog()
        catalog.register(
            "T",
            Table.from_arrays(
                {"v": np.random.default_rng(3).permutation(3_000)}
            ),
        )
        return AdaptiveIndexView(catalog, "T", "v")

    def test_queries_are_correct_and_adapt(self, view):
        result = view.range_query(100, 200)
        assert sorted(result.tolist()) == list(range(100, 201))
        assert view.crack_count > 0
        assert len(view.log) == 1
        assert view.log[0].result_rows == 101

    def test_convergence_logged(self, view):
        rng = np.random.default_rng(0)
        for __ in range(150):
            low = int(rng.integers(0, 2_900))
            view.range_query(low, low + 50)
        sortedness = [entry.sortedness_after for entry in view.log]
        assert sortedness[-1] > sortedness[0]

    def test_promotion_requires_convergence(self, view):
        registry = AVRegistry()
        view.range_query(0, 10)
        assert view.promote(registry) is None
        assert len(registry) == 0

    def test_promotion_after_full_workload(self, view):
        registry = AVRegistry()
        for pivot in range(0, 3_001, 1):
            view.range_query(pivot, pivot)
        assert view.is_converged()
        promoted = view.promote(registry)
        assert promoted is not None
        assert promoted.kind is ViewKind.SORTED_PROJECTION
        assert promoted.build_cost == 0.0  # paid for by the workload
        assert registry.has_view(ViewKind.SORTED_PROJECTION, "T", "v")
        # Promotion is idempotent.
        view.promote(registry)
        assert len(registry) == 1
