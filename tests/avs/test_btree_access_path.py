"""The §1 access-path decision: unclustered B-tree vs scan.

Under the paper's Table 2 model scans are free and the decision is moot;
:class:`~repro.core.cost.paper.AccessPathCostModel` prices scans at one
unit per row (and index gathers at 4 units, Table 2's random-access
factor), making it the classic selectivity crossover at 25%.
"""

import numpy as np
import pytest

from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.core import DynamicProgrammingOptimizer, dqo_config, to_operator
from repro.core.cost import AccessPathCostModel
from repro.engine import execute
from repro.engine.operators import IndexRangeScan, build_row_index
from repro.indexes import BPlusTree
from repro.logical import evaluate_naive
from repro.sql import plan_query
from repro.storage import Catalog, Table

ROWS = 20_000


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.register(
        "T",
        Table.from_arrays(
            {
                "k": rng.permutation(ROWS),
                "v": rng.integers(0, 100, ROWS),
            }
        ),
    )
    registry = AVRegistry([materialize_view(catalog, ViewKind.BTREE, "T", "k")])
    return catalog, registry


def optimizer_for(catalog, registry):
    return DynamicProgrammingOptimizer(
        catalog, AccessPathCostModel(), dqo_config(views=registry)
    )


class TestIndexRangeScanOperator:
    def test_matches_filter_semantics(self, setting, rng):
        catalog, registry = setting
        table = catalog.table("T")
        index = registry.get(ViewKind.BTREE, "T", "k").artifact
        assert isinstance(index, BPlusTree)
        scan = IndexRangeScan(table, "k", index, 500, 800)
        result = scan.to_table()
        assert sorted(result["k"].tolist()) == list(range(500, 801))

    def test_output_in_index_order(self, setting):
        catalog, registry = setting
        table = catalog.table("T")
        index = registry.get(ViewKind.BTREE, "T", "k").artifact
        result = IndexRangeScan(table, "k", index, 100, 5_000).to_table()
        values = result["k"]
        assert bool(np.all(values[:-1] <= values[1:]))

    def test_duplicate_values_all_fetched(self):
        table = Table.from_arrays({"k": np.array([5, 5, 1, 5]), "v": np.arange(4)})
        index = build_row_index(table, "k")
        result = IndexRangeScan(table, "k", index, 5, 5).to_table()
        assert sorted(result["v"].tolist()) == [0, 1, 3]


class TestAccessPathChoice:
    def test_selective_filter_uses_index(self, setting, paper_query):
        catalog, registry = setting
        logical = plan_query(
            "SELECT k, v FROM T WHERE k >= 100 AND k < 200", catalog
        )
        result = optimizer_for(catalog, registry).optimize(logical)
        scan = next(n for n in result.plan.walk() if n.op == "scan")
        assert scan.scan_view == ("btree", "k")
        assert scan.index_range == (100, 199)
        # cost ~ log2(20000) + 4 * 100 matches, far below a 20,000 scan
        assert result.cost < 1_000

    def test_unselective_filter_uses_full_scan(self, setting):
        catalog, registry = setting
        logical = plan_query("SELECT k, v FROM T WHERE k >= 100", catalog)
        result = optimizer_for(catalog, registry).optimize(logical)
        scan = next(n for n in result.plan.walk() if n.op == "scan")
        assert scan.scan_view == ("", "")  # plain scan wins at ~100% sel.

    def test_crossover_around_quarter_selectivity(self, setting):
        catalog, registry = setting
        optimizer = optimizer_for(catalog, registry)
        narrow = plan_query(
            f"SELECT k FROM T WHERE k < {ROWS // 5}", catalog
        )  # 20% selective -> index
        wide = plan_query(
            f"SELECT k FROM T WHERE k < {ROWS // 3}", catalog
        )  # 33% selective -> scan
        narrow_scan = next(
            n for n in optimizer.optimize(narrow).plan.walk() if n.op == "scan"
        )
        wide_scan = next(
            n for n in optimizer.optimize(wide).plan.walk() if n.op == "scan"
        )
        assert narrow_scan.scan_view[0] == "btree"
        assert wide_scan.scan_view[0] == ""

    def test_equality_predicate(self, setting):
        catalog, registry = setting
        logical = plan_query("SELECT v FROM T WHERE k = 42", catalog)
        result = optimizer_for(catalog, registry).optimize(logical)
        scan = next(n for n in result.plan.walk() if n.op == "scan")
        assert scan.scan_view[0] == "btree"
        assert scan.index_range == (42, 42)

    def test_unsupported_predicate_shape_falls_back(self, setting):
        catalog, registry = setting
        # k <> 5 cannot be served by a range; k + 1 < 10 neither.
        for sql in (
            "SELECT v FROM T WHERE k <> 5",
            "SELECT v FROM T WHERE k + 1 < 10",
        ):
            logical = plan_query(sql, catalog)
            result = optimizer_for(catalog, registry).optimize(logical)
            scan = next(n for n in result.plan.walk() if n.op == "scan")
            assert scan.scan_view[0] == ""

    def test_index_order_property_pays_downstream(self, setting):
        """The index emits k-sorted rows, so ORDER BY k after a selective
        filter is free — the access path's property side effect."""
        catalog, registry = setting
        optimizer = optimizer_for(catalog, registry)
        plain = optimizer.optimize(
            plan_query("SELECT k FROM T WHERE k < 500", catalog)
        )
        ordered = optimizer.optimize(
            plan_query("SELECT k FROM T WHERE k < 500 ORDER BY k", catalog)
        )
        assert ordered.cost == pytest.approx(plain.cost)


class TestExecution:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT k, v FROM T WHERE k >= 100 AND k < 200",
            "SELECT k, v FROM T WHERE k = 777",
            "SELECT k, v FROM T WHERE k < 300 AND v >= 50",
            "SELECT k, SUM(v) AS s FROM T WHERE k < 400 GROUP BY k ORDER BY k",
        ],
    )
    def test_index_plans_match_naive(self, setting, sql):
        catalog, registry = setting
        logical = plan_query(sql, catalog)
        result = optimizer_for(catalog, registry).optimize(logical)
        truth = evaluate_naive(logical, catalog)
        output = execute(
            to_operator(result.plan, catalog, validate=True, views=registry)
        )
        assert output.equals_unordered(truth)
