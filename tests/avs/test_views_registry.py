"""Algorithmic Views: materialisation, registry, optimiser integration."""

import numpy as np
import pytest

from repro.avs import (
    AVRegistry,
    AlgorithmicView,
    ViewKind,
    build_cost_of,
    materialize_view,
)
from repro.core import Granularity, optimize_dqo
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.errors import ViewError
from repro.indexes import OpenAddressingHashTable, SortedKeyIndex, StaticPerfectHash
from repro.sql import plan_query


@pytest.fixture
def catalog():
    return make_join_scenario(n_r=500, n_s=1_200, num_groups=50).build_catalog()


class TestMaterialisation:
    def test_hash_table_view(self, catalog):
        view = materialize_view(catalog, ViewKind.HASH_TABLE, "R", "ID")
        assert isinstance(view.artifact, OpenAddressingHashTable)
        assert view.artifact.num_keys == 500
        assert view.build_cost == 4 * 500
        assert view.granularity is Granularity.MACROMOLECULE

    def test_sph_view_dense(self, catalog):
        view = materialize_view(catalog, ViewKind.SPH_ARRAY, "R", "ID")
        assert isinstance(view.artifact, StaticPerfectHash)
        assert view.artifact.is_minimal

    def test_sph_view_sparse_rejected(self):
        catalog = make_join_scenario(
            n_r=500, n_s=800, num_groups=50, density=Density.SPARSE
        ).build_catalog()
        with pytest.raises(ViewError, match="SPH"):
            materialize_view(catalog, ViewKind.SPH_ARRAY, "R", "ID")

    def test_sorted_keys_view(self, catalog):
        view = materialize_view(catalog, ViewKind.SORTED_KEYS, "R", "A")
        assert isinstance(view.artifact, SortedKeyIndex)
        assert view.artifact.num_keys == 50

    def test_sorted_projection_view(self, catalog):
        view = materialize_view(catalog, ViewKind.SORTED_PROJECTION, "S", "R_ID")
        values = view.artifact["R_ID"]
        assert bool(np.all(values[:-1] <= values[1:]))

    def test_build_cost_formulas(self):
        assert build_cost_of(ViewKind.HASH_TABLE, 1_000, 100) == 4_000
        assert build_cost_of(ViewKind.SPH_ARRAY, 1_000, 100) == 1_000
        assert build_cost_of(ViewKind.SORTED_PROJECTION, 1_024, 100) == pytest.approx(
            1_024 * 10
        )


class TestRegistry:
    def test_add_lookup_remove(self):
        registry = AVRegistry()
        view = AlgorithmicView(ViewKind.HASH_TABLE, "R", "ID", 10.0)
        registry.add(view)
        assert registry.has_view(ViewKind.HASH_TABLE, "R", "ID")
        assert registry.has_view("hash_table", "R", "ID")  # string form
        assert not registry.has_view("sph_array", "R", "ID")
        assert registry.get("hash_table", "R", "ID") is view
        assert len(registry) == 1
        registry.remove(ViewKind.HASH_TABLE, "R", "ID")
        assert len(registry) == 0

    def test_duplicate_rejected(self):
        registry = AVRegistry()
        view = AlgorithmicView(ViewKind.SPH_ARRAY, "R", "ID", 1.0)
        registry.add(view)
        with pytest.raises(ViewError, match="duplicate"):
            registry.add(view)

    def test_missing_lookups(self):
        registry = AVRegistry()
        with pytest.raises(ViewError):
            registry.get("hash_table", "R", "ID")
        with pytest.raises(ViewError):
            registry.remove(ViewKind.HASH_TABLE, "R", "ID")

    def test_sorted_scan_columns(self):
        registry = AVRegistry(
            [
                AlgorithmicView(ViewKind.SORTED_PROJECTION, "R", "A", 1.0),
                AlgorithmicView(ViewKind.HASH_TABLE, "R", "ID", 1.0),
            ]
        )
        assert registry.sorted_scan_columns("R") == ["A"]
        assert registry.sorted_scan_columns("S") == []

    def test_total_build_cost_and_describe(self):
        registry = AVRegistry(
            [
                AlgorithmicView(ViewKind.SPH_ARRAY, "R", "ID", 5.0),
                AlgorithmicView(ViewKind.SORTED_KEYS, "S", "R_ID", 7.0),
            ]
        )
        assert registry.total_build_cost() == 12.0
        assert "sph_array" in registry.describe()


class TestOptimiserIntegration:
    def test_build_view_reduces_join_cost(self, paper_query):
        catalog = make_join_scenario(
            r_sortedness=Sortedness.UNSORTED,
            s_sortedness=Sortedness.UNSORTED,
            density=Density.DENSE,
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        baseline = optimize_dqo(logical, catalog)
        registry = AVRegistry(
            [AlgorithmicView(ViewKind.SPH_ARRAY, "R", "ID", 45_000.0)]
        )
        with_view = optimize_dqo(logical, catalog, views=registry)
        # SPHJ's build phase (|R| = 45,000) is waived.
        assert baseline.cost - with_view.cost == pytest.approx(45_000.0)

    def test_sorted_projection_view_replaces_sort(self, paper_query, memory_storage):
        catalog = make_join_scenario(
            r_sortedness=Sortedness.UNSORTED,
            s_sortedness=Sortedness.UNSORTED,
            density=Density.SPARSE,
        ).build_catalog()
        logical = plan_query(paper_query, catalog)
        baseline = optimize_dqo(logical, catalog)
        registry = AVRegistry(
            [
                AlgorithmicView(ViewKind.SORTED_PROJECTION, "R", "ID", 0.0),
                AlgorithmicView(ViewKind.SORTED_PROJECTION, "S", "R_ID", 0.0),
            ]
        )
        with_views = optimize_dqo(logical, catalog, views=registry)
        # Order for free unlocks OJ + OG: |R|+|S| + |J| = 225,000.
        assert with_views.cost == pytest.approx(225_000.0)
        assert with_views.cost < baseline.cost
