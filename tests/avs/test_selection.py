"""The AVSP: abstract costing, greedy vs exact solvers, budgets."""

import pytest

from repro.avs import (
    ViewKind,
    best_query_cost,
    enumerate_candidates,
    exhaustive_avsp,
    greedy_avsp,
    workload_cost,
)
from repro.datagen import make_workload
from repro.datagen.workload import (
    QueryShape,
    TableProfile,
    Workload,
    WorkloadQuery,
)
from repro.errors import ViewError


def table(name, rows=10_000, sorted_=False, dense=False, distinct=100):
    return TableProfile(
        name=name,
        rows=rows,
        key_sorted=sorted_,
        key_dense=dense,
        key_distinct=distinct,
    )


class TestAbstractCosting:
    def test_sorted_grouping_costs_one_pass(self):
        query = WorkloadQuery(QueryShape.GROUPING, table("T", sorted_=True), None)
        assert best_query_cost(query) == 10_000  # OG

    def test_dense_unsorted_grouping_uses_sph_only_when_deep(self):
        query = WorkloadQuery(QueryShape.GROUPING, table("T", dense=True), None)
        assert best_query_cost(query, deep=True) == 10_000  # SPHG
        assert best_query_cost(query, deep=False) == 40_000  # HG

    def test_join_grouping_matches_figure5_arithmetic(self):
        r = table("R", rows=45_000, distinct=20_000, dense=True)
        s = table("S", rows=90_000)
        query = WorkloadQuery(QueryShape.JOIN_GROUPING, r, s)
        assert best_query_cost(query, deep=True) == 225_000
        assert best_query_cost(query, deep=False) == 900_000

    def test_sorted_projection_view_lowers_cost(self):
        query = WorkloadQuery(QueryShape.GROUPING, table("T"), None)
        without = best_query_cost(query)
        with_view = best_query_cost(
            query, frozenset({(ViewKind.SORTED_PROJECTION, "T")})
        )
        assert with_view == 10_000  # scan sorted view, OG
        assert with_view < without

    def test_workload_cost_weights_frequencies(self):
        q = WorkloadQuery(
            QueryShape.GROUPING, table("T", sorted_=True), None, frequency=3.0
        )
        workload = Workload(tables=[q.left], queries=[q])
        assert workload_cost(workload) == 30_000


class TestSolvers:
    @pytest.fixture
    def workload(self):
        return make_workload(num_tables=3, num_queries=15, seed=4)

    def test_candidates_respect_density(self, workload):
        candidates = enumerate_candidates(workload)
        for candidate in candidates:
            if candidate.kind is ViewKind.SPH_ARRAY:
                assert candidate.table.key_dense

    def test_greedy_respects_budget(self, workload):
        budget = 2_000_000.0
        result = greedy_avsp(workload, budget=budget)
        assert result.build_cost <= budget
        assert result.cost_with_views <= result.cost_without_views

    def test_zero_budget_selects_nothing(self, workload):
        result = greedy_avsp(workload, budget=0.0)
        assert result.selected == []
        assert result.benefit == 0.0

    def test_exact_dominates_greedy(self, workload):
        budget = 3_000_000.0
        greedy = greedy_avsp(workload, budget=budget)
        exact = exhaustive_avsp(workload, budget=budget)
        assert exact.benefit >= greedy.benefit - 1e-9
        assert exact.build_cost <= budget

    def test_exact_candidate_cap(self, workload):
        with pytest.raises(ViewError, match="limited"):
            exhaustive_avsp(workload, budget=1.0, max_candidates=2)

    def test_describe(self, workload):
        result = greedy_avsp(workload, budget=2_000_000.0)
        text = result.describe()
        assert "workload cost" in text

    def test_benefit_monotone_in_budget(self, workload):
        small = greedy_avsp(workload, budget=500_000.0)
        large = greedy_avsp(workload, budget=5_000_000.0)
        assert large.benefit >= small.benefit - 1e-9
