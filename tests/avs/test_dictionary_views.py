"""Dictionary Algorithmic Views (§2.1): density as a precomputed property.

*"The keys of a dictionary-compressed column are a natural candidate for
[static perfect hashing] and can directly be used for SPH."* A dictionary
view re-encodes a sparse column into dense codes offline; the deep
optimiser may then pick SPH variants, and the plan decodes the group keys
on the way out.
"""

import numpy as np
import pytest

from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.avs.view import DictionaryViewArtifact
from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine import GroupingAlgorithm, execute
from repro.errors import PlanError
from repro.logical import evaluate_naive
from repro.sql import plan_query
from repro.storage import Catalog


@pytest.fixture
def sparse_catalog():
    dataset = make_grouping_dataset(
        8_000, 200, Sortedness.UNSORTED, Density.SPARSE, seed=5
    )
    catalog = Catalog()
    catalog.register("T", dataset.to_table())
    return catalog


@pytest.fixture
def sparse_join_catalog():
    return make_join_scenario(
        n_r=600,
        n_s=1_400,
        num_groups=80,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.SPARSE,
        seed=6,
    ).build_catalog()


class TestArtifact:
    def test_encoded_table_is_dense_and_order_preserving(self, sparse_catalog):
        view = materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")
        artifact = view.artifact
        assert isinstance(artifact, DictionaryViewArtifact)
        stats = artifact.encoded_table.column("key").statistics
        assert stats.is_dense
        assert stats.distinct == 200
        # Order-preserving: decode of sorted codes is sorted.
        decoded = artifact.encoding.decode_codes(
            np.arange(artifact.encoding.cardinality)
        )
        assert bool(np.all(decoded[:-1] < decoded[1:]))

    def test_other_columns_untouched(self, sparse_catalog):
        view = materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")
        original = sparse_catalog.table("T")
        assert np.array_equal(
            view.artifact.encoded_table["value"], original["value"]
        )

    def test_build_cost_is_sort_plus_pass(self, sparse_catalog):
        view = materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")
        assert view.build_cost > 8_000  # more than one pass


class TestGroupingWithDictionaryView:
    def test_optimiser_switches_to_sphg(self, sparse_catalog):
        logical = plan_query(
            "SELECT key, COUNT(*) AS c FROM T GROUP BY key", sparse_catalog
        )
        baseline = optimize_dqo(logical, sparse_catalog)
        registry = AVRegistry(
            [materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")]
        )
        with_view = optimize_dqo(logical, sparse_catalog, views=registry)
        base_algorithm = next(
            n.grouping_algorithm for n in baseline.plan.walk() if n.op == "group_by"
        )
        view_algorithm = next(
            n.grouping_algorithm for n in with_view.plan.walk() if n.op == "group_by"
        )
        assert base_algorithm is not GroupingAlgorithm.SPHG
        assert view_algorithm is GroupingAlgorithm.SPHG
        assert with_view.cost < baseline.cost

    def test_execution_decodes_group_keys(self, sparse_catalog):
        logical = plan_query(
            "SELECT key, COUNT(*) AS c, SUM(value) AS s FROM T GROUP BY key",
            sparse_catalog,
        )
        registry = AVRegistry(
            [materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")]
        )
        result = optimize_dqo(logical, sparse_catalog, views=registry)
        truth = evaluate_naive(logical, sparse_catalog)
        output = execute(
            to_operator(result.plan, sparse_catalog, validate=True, views=registry)
        )
        assert output.equals_unordered(truth)

    def test_lowering_without_registry_fails_loudly(self, sparse_catalog):
        logical = plan_query(
            "SELECT key, COUNT(*) FROM T GROUP BY key", sparse_catalog
        )
        registry = AVRegistry(
            [materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")]
        )
        result = optimize_dqo(logical, sparse_catalog, views=registry)
        with pytest.raises(PlanError, match="view"):
            to_operator(result.plan, sparse_catalog)

    def test_sqo_cannot_use_the_view(self, sparse_catalog):
        # Density is invisible to the shallow configuration even when
        # manufactured: a dictionary view must not change SQO's plan.
        logical = plan_query(
            "SELECT key, COUNT(*) FROM T GROUP BY key", sparse_catalog
        )
        registry = AVRegistry(
            [materialize_view(sparse_catalog, ViewKind.DICTIONARY, "T", "key")]
        )
        baseline = optimize_sqo(logical, sparse_catalog)
        with_view = optimize_sqo(logical, sparse_catalog, views=registry)
        assert with_view.cost == baseline.cost


class TestJoinQueryWithDictionaryView:
    def test_sparse_figure5_cell_lifts(self, sparse_join_catalog, paper_query):
        logical = plan_query(paper_query, sparse_join_catalog)
        sqo = optimize_sqo(logical, sparse_join_catalog)
        dqo_plain = optimize_dqo(logical, sparse_join_catalog)
        registry = AVRegistry(
            [
                materialize_view(
                    sparse_join_catalog, ViewKind.DICTIONARY, "R", "A"
                )
            ]
        )
        dqo_view = optimize_dqo(logical, sparse_join_catalog, views=registry)
        # Plain DQO cannot beat SQO on sparse data (the paper's 1x cells);
        # a dictionary view on the grouping attribute re-opens the gap.
        assert dqo_plain.cost == pytest.approx(sqo.cost)
        assert dqo_view.cost < sqo.cost

    def test_execution_through_join_and_decode(self, sparse_join_catalog, paper_query):
        logical = plan_query(paper_query, sparse_join_catalog)
        registry = AVRegistry(
            [
                materialize_view(
                    sparse_join_catalog, ViewKind.DICTIONARY, "R", "A"
                )
            ]
        )
        result = optimize_dqo(logical, sparse_join_catalog, views=registry)
        truth = evaluate_naive(logical, sparse_join_catalog)
        output = execute(
            to_operator(
                result.plan, sparse_join_catalog, validate=True, views=registry
            )
        )
        assert output.equals_unordered(truth)

    def test_join_keys_never_encoded(self, sparse_join_catalog, paper_query):
        # A dictionary view on the JOIN key must be ignored: codes cannot
        # join against the other side's raw values.
        logical = plan_query(paper_query, sparse_join_catalog)
        registry = AVRegistry(
            [
                materialize_view(
                    sparse_join_catalog, ViewKind.DICTIONARY, "R", "ID"
                )
            ]
        )
        baseline = optimize_dqo(logical, sparse_join_catalog)
        with_view = optimize_dqo(logical, sparse_join_catalog, views=registry)
        assert with_view.cost == pytest.approx(baseline.cost)
        for node in with_view.plan.walk():
            if node.op == "scan":
                assert node.scan_view[0] != "dictionary"
