"""The §4.1 dataset generators: exact group counts, property grid."""

import numpy as np
import pytest

from repro.datagen import (
    FIGURE4_GRID,
    Density,
    Sortedness,
    figure4_datasets,
    make_grouping_dataset,
)
from repro.errors import DataGenError
from repro.storage.statistics import collect_statistics


class TestGroupingDataset:
    @pytest.mark.parametrize("sortedness,density", FIGURE4_GRID)
    def test_properties_match_configuration(self, sortedness, density):
        dataset = make_grouping_dataset(
            5_000, 40, sortedness=sortedness, density=density, seed=3
        )
        stats = collect_statistics(dataset.keys)
        assert stats.distinct == 40  # exact group count
        assert stats.is_sorted == (sortedness is Sortedness.SORTED)
        assert stats.is_dense == (density is Density.DENSE)
        assert dataset.num_rows == 5_000

    def test_deterministic_by_seed(self):
        a = make_grouping_dataset(1000, 10, seed=9)
        b = make_grouping_dataset(1000, 10, seed=9)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.payload, b.payload)

    def test_different_seeds_differ(self):
        a = make_grouping_dataset(1000, 10, seed=1)
        b = make_grouping_dataset(1000, 10, seed=2)
        assert not np.array_equal(a.keys, b.keys)

    def test_sparse_respects_sortedness_independence(self):
        # Sparsification must not destroy sortedness (the 2x2 grid is
        # orthogonal by construction).
        dataset = make_grouping_dataset(
            2_000,
            25,
            sortedness=Sortedness.SORTED,
            density=Density.SPARSE,
            seed=4,
        )
        stats = collect_statistics(dataset.keys)
        assert stats.is_sorted
        assert not stats.is_dense

    def test_roughly_uniform(self):
        dataset = make_grouping_dataset(100_000, 10, seed=6)
        counts = np.bincount(dataset.keys)
        # Uniform: each group ~10k; allow generous tolerance.
        assert counts.min() > 8_000
        assert counts.max() < 12_000

    def test_to_table(self):
        table = make_grouping_dataset(100, 5, seed=0).to_table()
        assert table.schema.names == ("key", "value")
        assert table.num_rows == 100

    def test_invalid_parameters(self):
        with pytest.raises(DataGenError):
            make_grouping_dataset(10, 11)
        with pytest.raises(DataGenError):
            make_grouping_dataset(10, 0)

    def test_figure4_datasets_covers_grid(self):
        datasets = figure4_datasets(500, 8, seed=1)
        assert set(datasets) == set(FIGURE4_GRID)
