"""Distribution primitives and the AVSP workload generator."""

import numpy as np
import pytest

from repro.datagen import (
    QueryShape,
    clustered_keys,
    make_workload,
    sparsify,
    uniform_keys,
    zipf_keys,
)
from repro.errors import DataGenError
from repro.storage.statistics import collect_statistics


class TestDistributions:
    def test_uniform_exact_ndv(self):
        rng = np.random.default_rng(0)
        keys = uniform_keys(1_000, 37, rng)
        assert np.unique(keys).size == 37

    def test_uniform_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DataGenError):
            uniform_keys(10, 11, rng)
        with pytest.raises(DataGenError):
            uniform_keys(0, 1, rng)

    def test_zipf_skew_concentrates(self):
        rng = np.random.default_rng(0)
        keys = zipf_keys(20_000, 100, skew=1.5, rng=rng)
        counts = np.bincount(keys, minlength=100)
        # Rank-0 value should dominate under heavy skew.
        assert counts[0] > 5 * counts[50]

    def test_zipf_zero_skew_is_uniformish(self):
        rng = np.random.default_rng(0)
        keys = zipf_keys(50_000, 10, skew=0.0, rng=rng)
        counts = np.bincount(keys, minlength=10)
        assert counts.min() > 3_500

    def test_clustered_is_clustered_not_sorted(self):
        rng = np.random.default_rng(3)
        keys = clustered_keys(5_000, 50, rng)
        stats = collect_statistics(keys)
        assert stats.is_clustered
        assert stats.distinct == 50

    def test_sparsify_preserves_order_and_creates_gaps(self):
        rng = np.random.default_rng(0)
        dense = np.sort(uniform_keys(1_000, 20, rng))
        sparse = sparsify(dense, spread=100, rng=rng)
        stats = collect_statistics(sparse)
        assert stats.is_sorted
        assert not stats.is_dense
        assert stats.distinct == 20

    def test_sparsify_invalid_spread(self):
        with pytest.raises(DataGenError):
            sparsify(np.array([1, 2]), spread=1, rng=np.random.default_rng(0))


class TestWorkload:
    def test_shapes_and_pool_sharing(self):
        workload = make_workload(num_tables=4, num_queries=40, seed=2)
        assert len(workload.tables) == 4
        assert len(workload) == 40
        names = {t.name for t in workload.tables}
        for query in workload:
            assert query.left.name in names
            if query.shape is QueryShape.JOIN_GROUPING:
                assert query.right is not None
                assert query.right.name in names
                assert query.right.name != query.left.name

    def test_frequencies_positive_and_sum(self):
        workload = make_workload(num_queries=25, seed=1)
        assert all(q.frequency > 0 for q in workload)
        assert workload.total_frequency == pytest.approx(25.0)

    def test_deterministic(self):
        a = make_workload(seed=7)
        b = make_workload(seed=7)
        assert [q.left.name for q in a] == [q.left.name for q in b]

    def test_join_fraction_zero(self):
        workload = make_workload(num_queries=20, join_fraction=0.0, seed=0)
        assert all(q.shape is QueryShape.GROUPING for q in workload)

    def test_invalid_parameters(self):
        with pytest.raises(DataGenError):
            make_workload(num_queries=0)
        with pytest.raises(DataGenError):
            make_workload(min_rows=100, max_rows=10)
