"""The §4.3 join scenario generator: FK integrity, correlation, grid."""

import numpy as np
import pytest

from repro.core.properties import detect_monotone_correlation
from repro.datagen import (
    PAPER_NUM_GROUPS,
    PAPER_R_ROWS,
    PAPER_S_ROWS,
    Density,
    Sortedness,
    make_join_scenario,
)
from repro.errors import DataGenError


class TestJoinScenario:
    def test_paper_defaults(self):
        scenario = make_join_scenario()
        assert scenario.r.num_rows == PAPER_R_ROWS == 45_000
        assert scenario.s.num_rows == PAPER_S_ROWS == 90_000
        assert scenario.r.column("A").statistics.distinct == PAPER_NUM_GROUPS

    def test_foreign_key_integrity(self):
        scenario = make_join_scenario(n_r=500, n_s=1_000, num_groups=50)
        r_ids = set(scenario.r["ID"].tolist())
        assert set(scenario.s["R_ID"].tolist()) <= r_ids

    def test_r_id_unique(self):
        scenario = make_join_scenario(n_r=500, n_s=800, num_groups=50)
        ids = scenario.r["ID"]
        assert np.unique(ids).size == ids.size

    def test_a_monotone_in_id(self):
        # The FK-correlation assumption (DESIGN.md #5b) must hold in the
        # generated data regardless of storage order.
        for r_sort in Sortedness:
            scenario = make_join_scenario(
                n_r=800, n_s=1_000, num_groups=40, r_sortedness=r_sort
            )
            assert detect_monotone_correlation(scenario.r, "ID", "A")

    @pytest.mark.parametrize("sortedness", list(Sortedness))
    def test_r_storage_order(self, sortedness):
        scenario = make_join_scenario(
            n_r=700, n_s=900, num_groups=30, r_sortedness=sortedness
        )
        assert scenario.r.column("ID").statistics.is_sorted == (
            sortedness is Sortedness.SORTED
        )

    @pytest.mark.parametrize("sortedness", list(Sortedness))
    def test_s_storage_order(self, sortedness):
        scenario = make_join_scenario(
            n_r=700, n_s=900, num_groups=30, s_sortedness=sortedness
        )
        assert scenario.s.column("R_ID").statistics.is_sorted == (
            sortedness is Sortedness.SORTED
        )

    @pytest.mark.parametrize("density", list(Density))
    def test_density_of_both_key_columns(self, density):
        scenario = make_join_scenario(
            n_r=700, n_s=900, num_groups=30, density=density
        )
        expected = density is Density.DENSE
        assert scenario.r.column("ID").statistics.is_dense == expected
        assert scenario.r.column("A").statistics.is_dense == expected

    def test_catalog_contains_fk(self):
        catalog = make_join_scenario(n_r=100, n_s=200, num_groups=10).build_catalog()
        assert catalog.foreign_key_between("S", "R_ID", "R", "ID") is not None

    def test_invalid_parameters(self):
        with pytest.raises(DataGenError):
            make_join_scenario(n_r=10, num_groups=11)
