"""Error paths through the SQL front-end (tokeniser, parser, planner).

Every malformed input must surface as a *typed* error from
:mod:`repro.errors` — never a bare ``KeyError`` / ``IndexError`` /
``TypeError`` — and the message should locate the problem.
"""

import pytest

from repro.errors import ParseError, PlanError, ReproError, SchemaError
from repro.sql import parse, plan_query


class TestTokenizerErrors:
    def test_illegal_character(self):
        with pytest.raises(ParseError, match="unexpected character '@'"):
            parse("SELECT R.@ FROM R")

    def test_statement_separator_rejected(self):
        with pytest.raises(ParseError, match="';'"):
            parse("SELECT R.A FROM R; DROP TABLE R")


class TestParserErrors:
    @pytest.mark.parametrize(
        ("sql", "fragment"),
        [
            ("", "expected SELECT"),
            ("SELEC R.A FROM R", "expected SELECT"),
            ("SELECT", "expected identifier"),
            ("SELECT * FROM", "expected identifier"),
            ("SELECT R.A FROM R JOIN S", "expected ON"),
            ("SELECT R.A FROM R GROUP", "expected BY"),
            ("SELECT R.A FROM R WHERE", "expected a value"),
        ],
        ids=[
            "empty",
            "typo-keyword",
            "truncated-select",
            "truncated-from",
            "join-missing-on",
            "group-missing-by",
            "truncated-where",
        ],
    )
    def test_malformed_statement(self, sql, fragment):
        with pytest.raises(ParseError, match=fragment):
            parse(sql)

    def test_unsupported_clause_is_trailing_input(self):
        with pytest.raises(ParseError, match="trailing input 'HAVING'"):
            parse(
                "SELECT R.A, COUNT(*) FROM R GROUP BY R.A "
                "HAVING COUNT(*) > 1"
            )

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match="position 9"):
            parse("SELECT R.@ FROM R")


class TestPlannerErrors:
    def test_unknown_table(self, join_catalog):
        with pytest.raises(SchemaError, match="no table named 'T'"):
            plan_query(
                "SELECT R.A, COUNT(*) FROM T JOIN S ON T.ID = S.R_ID "
                "GROUP BY R.A",
                join_catalog,
            )

    def test_unknown_table_lists_catalog(self, join_catalog):
        with pytest.raises(SchemaError, match=r"\['R', 'S'\]"):
            plan_query("SELECT T.A FROM T", join_catalog)

    def test_unknown_column(self, join_catalog):
        with pytest.raises(PlanError, match="unknown column 'R.ZZZ'"):
            plan_query(
                "SELECT R.ZZZ, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID "
                "GROUP BY R.ZZZ",
                join_catalog,
            )

    def test_unknown_qualifier(self, join_catalog):
        with pytest.raises(PlanError, match="unknown column 'X.A'"):
            plan_query(
                "SELECT X.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID "
                "GROUP BY X.A",
                join_catalog,
            )

    def test_aggregate_over_unknown_column(self, join_catalog):
        with pytest.raises(PlanError, match="unknown column 'S.V'"):
            plan_query(
                "SELECT R.A, SUM(S.V) FROM R JOIN S ON R.ID = S.R_ID "
                "GROUP BY R.A",
                join_catalog,
            )

    def test_multi_column_group_by_unsupported(self, join_catalog):
        with pytest.raises(PlanError, match="exactly one GROUP BY column"):
            plan_query(
                "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID "
                "GROUP BY R.A, R.ID",
                join_catalog,
            )


class TestErrorsAreTyped:
    """Nothing below the public entrypoints may leak untyped exceptions."""

    BAD_INPUTS = [
        "",
        "SELECT",
        "GARBAGE",
        "SELECT FROM WHERE",
        "SELECT R.A FROM R JOIN",
        "SELECT COUNT(,) FROM R",
        "SELECT R.A FROM R GROUP BY",
        "SELECT R..A FROM R",
        "SELECT 'unterminated FROM R",
    ]

    @pytest.mark.parametrize("sql", BAD_INPUTS)
    def test_parse_raises_only_repro_errors(self, sql):
        with pytest.raises(ReproError):
            parse(sql)

    @pytest.mark.parametrize("sql", BAD_INPUTS)
    def test_plan_query_raises_only_repro_errors(self, sql, join_catalog):
        with pytest.raises(ReproError):
            plan_query(sql, join_catalog)

    def test_plan_query_with_unplannable_shape(self, join_catalog):
        # Parses fine, but references nothing in the catalog.
        with pytest.raises((SchemaError, PlanError)):
            plan_query("SELECT NOPE.X FROM NOPE", join_catalog)
