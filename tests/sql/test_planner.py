"""SQL planning: name resolution and logical tree shape."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.logical import (
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    evaluate_naive,
)
from repro.sql import plan_query
from repro.storage import Catalog, Table


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        "R", Table.from_arrays({"ID": np.arange(8), "A": np.arange(8) % 3})
    )
    cat.register(
        "S", Table.from_arrays({"R_ID": np.array([1, 1, 7]), "A": np.array([4, 5, 6])})
    )
    return cat


class TestResolution:
    def test_unqualified_unique_name(self, catalog):
        plan = plan_query("SELECT ID FROM R", catalog)
        assert isinstance(plan, LogicalProject)
        assert plan.outputs[0][0] == "R.ID"

    def test_ambiguous_name_rejected(self, catalog):
        with pytest.raises(PlanError, match="ambiguous"):
            plan_query("SELECT A FROM R JOIN S ON ID = R_ID", catalog)

    def test_unknown_name_rejected(self, catalog):
        with pytest.raises(PlanError, match="unknown column"):
            plan_query("SELECT Z FROM R", catalog)

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(PlanError, match="duplicate table alias"):
            plan_query("SELECT R.ID FROM R JOIN R ON R.ID = R.ID", catalog)

    def test_alias_resolution(self, catalog):
        plan = plan_query(
            "SELECT x.ID FROM R AS x JOIN S ON x.ID = S.R_ID", catalog
        )
        scan_aliases = [
            node.alias for node in plan.walk() if isinstance(node, LogicalScan)
        ]
        assert scan_aliases == ["x", "S"]


class TestShapes:
    def test_paper_query_shape(self, catalog, paper_query):
        plan = plan_query(paper_query, catalog)
        assert isinstance(plan, LogicalGroupBy)
        assert isinstance(plan.child, LogicalJoin)
        assert plan.key == "R.A"
        assert plan.aggregates[0].alias == "count"

    def test_group_key_alias_adds_projection(self, catalog):
        plan = plan_query("SELECT A AS grp, COUNT(*) FROM R GROUP BY A", catalog)
        assert isinstance(plan, LogicalProject)
        result = evaluate_naive(plan, catalog)
        assert result.schema.names == ("grp", "count")

    def test_non_key_bare_column_rejected(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY key"):
            plan_query("SELECT ID, COUNT(*) FROM R GROUP BY A", catalog)

    def test_multi_key_group_by_rejected(self, catalog):
        with pytest.raises(PlanError, match="exactly one"):
            plan_query("SELECT COUNT(*) FROM R GROUP BY ID, A", catalog)

    def test_desc_rejected(self, catalog):
        with pytest.raises(PlanError, match="DESC"):
            plan_query("SELECT ID FROM R ORDER BY ID DESC", catalog)

    def test_end_to_end_with_where(self, catalog):
        result = evaluate_naive(
            plan_query(
                "SELECT A, SUM(ID) AS s FROM R WHERE ID >= 2 GROUP BY A "
                "ORDER BY A",
                catalog,
            ),
            catalog,
        )
        # IDs 2..7, A = ID % 3
        assert result.to_rows() == [(0, 9), (1, 11), (2, 7)]
