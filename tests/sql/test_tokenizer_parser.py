"""SQL tokenizer and parser."""

import pytest

from repro.errors import ParseError
from repro.sql import parse, tokenize
from repro.sql.ast import AggregateItem, ColumnItem
from repro.sql.tokenizer import TokenType


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Join")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "JOIN"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("R_id myTable")
        assert [t.value for t in tokens[:-1]] == ["R_id", "myTable"]

    def test_symbols_and_numbers(self):
        tokens = tokenize("a >= 10 <> != <=")
        values = [t.value for t in tokens[:-1]]
        assert values == ["a", ">=", "10", "<>", "<>", "<="]

    def test_positions(self):
        tokens = tokenize("ab  cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 4

    def test_end_token(self):
        assert tokenize("x")[-1].type is TokenType.END

    def test_invalid_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a ? b")


class TestParser:
    def test_paper_query(self, paper_query):
        statement = parse(paper_query)
        assert statement.from_table.name == "R"
        assert len(statement.joins) == 1
        assert statement.joins[0].left_key == "R.ID"
        assert statement.joins[0].right_key == "S.R_ID"
        assert statement.group_by == ("R.A",)
        items = statement.items
        assert isinstance(items[0], ColumnItem) and items[0].column == "R.A"
        assert isinstance(items[1], AggregateItem)
        assert items[1].function == "COUNT" and items[1].column is None

    def test_aliases(self):
        statement = parse("SELECT a AS x, SUM(b) AS s FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "s"
        assert statement.from_table.alias == "u"

    def test_implicit_table_alias(self):
        assert parse("SELECT a FROM t u").from_table.alias == "u"

    def test_where_precedence(self):
        statement = parse("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3")
        # OR binds loosest: (a>1 AND b<2) OR c=3
        assert repr(statement.where) == "(((a > 1) AND (b < 2)) OR (c = 3))"

    def test_where_parentheses_and_not(self):
        statement = parse("SELECT a FROM t WHERE NOT (a = 1 OR b = 2)")
        assert repr(statement.where) == "(NOT ((a = 1) OR (b = 2)))"

    def test_arithmetic_in_predicate(self):
        statement = parse("SELECT a FROM t WHERE a + 2 * b >= 10")
        assert repr(statement.where) == "((a + (2 * b)) >= 10)"

    def test_order_by_and_limit(self):
        statement = parse("SELECT a FROM t ORDER BY a, b DESC LIMIT 5")
        assert statement.order_by[0].ascending
        assert not statement.order_by[1].ascending
        assert statement.limit == 5

    def test_count_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse("SELECT SUM(*) FROM t")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT a FROM t extra extra")

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse("SELECT a")

    def test_error_positions(self):
        with pytest.raises(ParseError) as info:
            parse("SELECT FROM t")
        assert info.value.position == 7
