"""Per-operator memory accounting and the per-execution counter reset.

The ``memory_bytes()`` protocol runs through every layer: storage
structures and indexes report their resident footprint, kernels report
the auxiliary structures they build (the Table 1 contrast), operators
report their peak working set, and ``explain_analyze`` surfaces all of
it per plan node.
"""

import numpy as np
import pytest

from repro.engine.aggregates import count_star
from repro.engine.kernels.grouping import hash_slots, perfect_hash_slots
from repro.engine.operators.grouping import GroupBy, GroupingAlgorithm
from repro.engine.operators.scan import TableScan
from repro.engine.executor import explain_analyze
from repro.storage.table import Table


def make_table(values, name="K"):
    return Table.from_arrays({name: np.asarray(values, dtype=np.int64)})


class TestStorageAndIndexFootprints:
    def test_table_footprint_is_sum_of_columns(self):
        table = Table.from_arrays(
            {
                "A": np.arange(100, dtype=np.int64),
                "B": np.arange(100, dtype=np.int64),
            }
        )
        assert table.memory_bytes() == 2 * 100 * 8

    def test_btree_footprint_grows_with_keys(self):
        from repro.indexes.btree import BPlusTree

        small, large = BPlusTree(order=8), BPlusTree(order=8)
        for key in range(16):
            small.insert(key, key)
        for key in range(512):
            large.insert(key, key)
        assert 0 < small.memory_bytes() < large.memory_bytes()

    def test_sorted_array_footprint_is_key_bytes(self):
        from repro.indexes.sorted_array import SortedKeyIndex

        index = SortedKeyIndex(np.arange(1_000, dtype=np.int64))
        assert index.memory_bytes() == 1_000 * 8

    def test_sph_is_denser_than_hash_table_on_dense_keys(self):
        """Table 1: SPH's dense array beats a general hash table."""
        from repro.indexes.hash_table import OpenAddressingHashTable
        from repro.indexes.perfect_hash import StaticPerfectHash

        keys = np.arange(10_000, dtype=np.int64)
        sph = StaticPerfectHash.for_keys(keys)
        table = OpenAddressingHashTable(capacity_hint=keys.size)
        table.build(keys)
        assert 0 < sph.memory_bytes() < table.memory_bytes()


class TestKernelStructureBytes:
    def test_hash_grouping_carries_table_footprint(self):
        keys = np.arange(5_000, dtype=np.int64)
        assignment = hash_slots(keys)
        assert assignment.structure_bytes > 0
        assert assignment.memory_bytes() > assignment.structure_bytes

    def test_sphg_structure_is_smaller_than_hg_on_dense_keys(self):
        """The Table 1 footprint contrast, at the kernel level."""
        keys = np.arange(5_000, dtype=np.int64)
        assert (
            perfect_hash_slots(keys).structure_bytes
            < hash_slots(keys).structure_bytes
        )

    def test_empty_input_reports_zero_structure(self):
        from repro.engine.kernels.joins import hash_join

        empty = np.empty(0, dtype=np.int64)
        assert hash_join(empty, empty).memory_bytes() == 0


class TestOperatorPeaks:
    def test_uninstrumented_operator_reports_peak_after_run(self):
        table = make_table(np.arange(4_000) % 16)
        operator = GroupBy(
            TableScan(table),
            key="K",
            aggregates=[count_star()],
            algorithm=GroupingAlgorithm.HG,
        )
        operator.reset_memory_accounting()
        assert operator.memory_bytes() == 0
        operator.to_table()
        assert operator.memory_bytes() > 0

    def test_grouping_footprint_contrast_between_algorithms(self):
        """SPHG's grouping operator holds less than HG's on dense keys —
        the Table 1 difference observable end-to-end."""
        table = make_table(np.arange(20_000, dtype=np.int64) % 5_000)
        peaks = {}
        for algorithm in (GroupingAlgorithm.SPHG, GroupingAlgorithm.HG):
            operator = GroupBy(
                TableScan(table),
                key="K",
                aggregates=[count_star()],
                algorithm=algorithm,
            )
            operator.reset_memory_accounting()
            operator.to_table()
            peaks[algorithm] = operator.memory_bytes()
        assert 0 < peaks[GroupingAlgorithm.SPHG] < peaks[GroupingAlgorithm.HG]


@pytest.fixture
def optimised_two_join_plan():
    from repro import optimize_dqo, plan_query, to_operator
    from repro.datagen import DimensionSpec, make_star_scenario

    scenario = make_star_scenario(
        fact_rows=4_000,
        dimensions=[
            DimensionSpec(rows=500, num_groups=50),
            DimensionSpec(rows=800, num_groups=80),
        ],
        seed=11,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(scenario.join_query(0), catalog)
    return to_operator(optimize_dqo(logical, catalog).plan, catalog)


class TestExplainAnalyzeMemory:
    def test_every_node_reports_nonzero_peak(self, optimised_two_join_plan):
        analyzed = explain_analyze(optimised_two_join_plan)
        for node in analyzed.root.walk():
            assert node.peak_memory_bytes > 0, node.description
        assert analyzed.peak_memory_bytes == sum(
            node.peak_memory_bytes for node in analyzed.root.walk()
        )

    def test_render_shows_peak_column(self, optimised_two_join_plan):
        rendered = explain_analyze(optimised_two_join_plan).render()
        assert "peak " in rendered
        assert "Peak operator memory:" in rendered

    def test_memory_metrics_observed_when_enabled(
        self, optimised_two_join_plan
    ):
        from repro.obs import capture_observability

        with capture_observability() as (metrics, __):
            explain_analyze(optimised_two_join_plan)
            snapshot = metrics.snapshot()
        assert snapshot["operator.bytes"]["count"] == 6
        assert snapshot["query.peak_bytes"]["count"] == 1
        assert snapshot["query.peak_bytes"]["sum"] > 0


class TestReExecutionResets:
    """Satellite: a re-executed instrumented tree must not double-count."""

    def test_two_analyses_report_identical_counters(
        self, optimised_two_join_plan
    ):
        first = explain_analyze(optimised_two_join_plan)
        second = explain_analyze(optimised_two_join_plan)
        for a, b in zip(first.root.walk(), second.root.walk()):
            assert a.rows_out == b.rows_out, b.description
            assert a.chunks_out == b.chunks_out, b.description

    def test_repulling_the_root_inside_one_context_resets(self):
        from repro.obs import instrumented

        table = make_table(np.arange(1_000) % 10)
        operator = GroupBy(
            TableScan(table),
            key="K",
            aggregates=[count_star()],
            algorithm=GroupingAlgorithm.HG,
        )
        with instrumented(operator) as stats:
            operator.to_table()
            first = (stats.rows_out, stats.cumulative_seconds)
            operator.to_table()
            assert stats.rows_out == first[0]  # reset, not doubled
        assert stats.children[0].rows_out == 1_000
