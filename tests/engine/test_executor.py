"""Executor entry points."""

import numpy as np

from repro.engine import TableScan, execute, execute_timed, explain
from repro.storage import Table


def test_execute_timed_returns_result_and_duration():
    table = Table.from_arrays({"x": np.arange(1_000)})
    result, seconds = execute_timed(TableScan(table))
    assert result.equals(table)
    assert seconds >= 0.0


def test_explain_matches_operator_explain():
    table = Table.from_arrays({"x": np.arange(3)})
    scan = TableScan(table)
    assert explain(scan) == scan.explain()
    assert "TableScan(rows=3)" in explain(scan)


def test_execute_is_to_table():
    table = Table.from_arrays({"x": np.arange(5)})
    assert execute(TableScan(table)).equals(table)
