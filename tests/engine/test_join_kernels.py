"""The five Table 2 join kernels: correctness, order guarantees, agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels.joins import (
    JoinAlgorithm,
    JoinOutputOrder,
    binary_search_join,
    hash_join,
    join,
    merge_join,
    perfect_hash_join,
    sort_merge_join,
)
from repro.errors import PreconditionError


def naive_pairs(build, probe):
    return sorted(
        (i, j)
        for i in range(len(build))
        for j in range(len(probe))
        if build[i] == probe[j]
    )


class TestHashJoin:
    def test_duplicates_both_sides(self):
        build = np.array([1, 2, 1])
        probe = np.array([1, 3, 1])
        result = hash_join(build, probe)
        assert result.canonical_pairs() == naive_pairs(build, probe)
        assert result.num_rows == 4

    def test_preserves_probe_order(self, rng):
        build = rng.integers(0, 20, 50)
        probe = rng.integers(0, 20, 80)
        result = hash_join(build, probe)
        assert result.output_order is JoinOutputOrder.PROBE_ORDER
        assert np.all(np.diff(result.right_indices) >= 0)

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        assert hash_join(empty, np.array([1])).num_rows == 0
        assert hash_join(np.array([1]), empty).num_rows == 0


class TestPerfectHashJoin:
    def test_dense_build(self):
        build = np.array([10, 11, 12])
        probe = np.array([12, 9, 10, 13])
        result = perfect_hash_join(build, probe)
        assert result.canonical_pairs() == naive_pairs(build, probe)
        assert result.output_order is JoinOutputOrder.PROBE_ORDER

    def test_sparse_build_rejected(self):
        with pytest.raises(PreconditionError, match="dense"):
            perfect_hash_join(np.array([0, 10_000]), np.array([0]))

    def test_out_of_domain_probes_miss(self):
        result = perfect_hash_join(np.array([5, 6]), np.array([4, 7, 5]))
        assert result.canonical_pairs() == [(0, 2)]


class TestMergeJoin:
    def test_sorted_inputs(self):
        build = np.array([1, 2, 2, 5])
        probe = np.array([2, 2, 5, 6])
        result = merge_join(build, probe)
        assert result.canonical_pairs() == naive_pairs(build, probe)
        assert result.output_order is JoinOutputOrder.KEY_SORTED

    def test_output_key_sorted(self):
        build = np.array([1, 3, 5])
        probe = np.array([1, 3, 5])
        result = merge_join(build, probe)
        keys = build[result.left_indices]
        assert np.all(np.diff(keys) >= 0)

    def test_validation(self):
        with pytest.raises(PreconditionError, match="unsorted"):
            merge_join(np.array([2, 1]), np.array([1]), validate=True)
        # Without validation the caller is on their own; no raise.
        merge_join(np.array([2, 1]), np.array([1]))


class TestSortMergeAndBinarySearch:
    def test_sort_merge_unsorted_inputs(self, rng):
        build = rng.integers(0, 15, 40)
        probe = rng.integers(0, 15, 60)
        result = sort_merge_join(build, probe)
        assert result.canonical_pairs() == naive_pairs(build, probe)

    def test_binary_search_preserves_probe_order(self, rng):
        build = rng.integers(0, 15, 40)
        probe = rng.integers(0, 15, 60)
        result = binary_search_join(build, probe)
        assert result.canonical_pairs() == naive_pairs(build, probe)
        assert np.all(np.diff(result.right_indices) >= 0)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 12), max_size=60),
    st.lists(st.integers(0, 12), max_size=60),
)
def test_all_join_kernels_agree(build_values, probe_values):
    """Property (Table 2 / footnote 1): every applicable join kernel
    produces exactly the same match multiset."""
    build = np.array(build_values, dtype=np.int64)
    probe = np.array(probe_values, dtype=np.int64)
    expected = naive_pairs(build_values, probe_values)
    for algorithm in JoinAlgorithm:
        if algorithm is JoinAlgorithm.OJ:
            # OJ requires sorted inputs; sorting permutes row identities,
            # so compare against the naive pairs of the sorted inputs.
            sorted_build = np.sort(build)
            sorted_probe = np.sort(probe)
            result = join(sorted_build, sorted_probe, algorithm)
            assert result.canonical_pairs() == naive_pairs(
                sorted_build.tolist(), sorted_probe.tolist()
            )
            continue
        try:
            result = join(build, probe, algorithm)
        except PreconditionError:
            assert algorithm is JoinAlgorithm.SPHJ
            continue
        assert result.canonical_pairs() == expected, algorithm
