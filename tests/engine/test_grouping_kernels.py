"""The five §4.1 grouping kernels: correctness, preconditions, agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine.kernels.grouping import (
    GroupingAlgorithm,
    KeyOrder,
    binary_search_slots,
    group_by,
    hash_slots,
    order_slots,
    perfect_hash_slots,
    sort_order_slots,
)
from repro.errors import PreconditionError


def naive_group(keys, values):
    """Ground truth: dict-based COUNT and SUM."""
    counts: dict[int, int] = {}
    sums: dict[int, int] = {}
    for key, value in zip(keys.tolist(), values.tolist()):
        counts[key] = counts.get(key, 0) + 1
        sums[key] = sums.get(key, 0) + value
    return counts, sums


def check_result(result, keys, values):
    counts, sums = naive_group(keys, values)
    canonical = result.sorted_by_key()
    assert canonical.keys.tolist() == sorted(counts)
    assert canonical.counts.tolist() == [counts[k] for k in sorted(counts)]
    assert canonical.sums.tolist() == [sums[k] for k in sorted(sums)]


class TestIndividualKernels:
    def test_hash_slots_first_occurrence_grouping(self):
        keys = np.array([7, 3, 7, 9, 3, 7])
        assignment = hash_slots(keys)
        assert assignment.num_groups == 3
        assert assignment.key_order is KeyOrder.UNSPECIFIED
        assert np.array_equal(assignment.group_keys[assignment.slots], keys)

    def test_perfect_hash_minimal_dense(self):
        keys = np.array([2, 0, 1, 2])
        assignment = perfect_hash_slots(keys)
        assert assignment.key_order is KeyOrder.SORTED
        assert list(assignment.group_keys) == [0, 1, 2]
        assert list(assignment.slots) == [2, 0, 1, 2]

    def test_perfect_hash_offset_domain(self):
        keys = np.array([1000, 1001, 1000])
        assignment = perfect_hash_slots(keys)
        assert list(assignment.group_keys) == [1000, 1001]

    def test_perfect_hash_nonminimal_compacts(self):
        # 3 of 4 domain values used: density 0.75 passes, slots compact.
        keys = np.array([0, 1, 3, 3])
        assignment = perfect_hash_slots(keys)
        assert list(assignment.group_keys) == [0, 1, 3]
        assert assignment.num_groups == 3

    def test_perfect_hash_sparse_rejected(self):
        with pytest.raises(PreconditionError, match="dense"):
            perfect_hash_slots(np.array([0, 1000]))

    def test_perfect_hash_empty_needs_domain(self):
        with pytest.raises(PreconditionError):
            perfect_hash_slots(np.empty(0, dtype=np.int64))

    def test_order_slots_on_sorted(self):
        keys = np.array([1, 1, 2, 5, 5, 5])
        assignment = order_slots(keys)
        assert assignment.key_order is KeyOrder.SORTED
        assert list(assignment.group_keys) == [1, 2, 5]
        assert list(assignment.slots) == [0, 0, 1, 2, 2, 2]

    def test_order_slots_on_clustered(self):
        keys = np.array([5, 5, 1, 1, 3])
        assignment = order_slots(keys, validate=True)
        assert assignment.key_order is KeyOrder.FIRST_OCCURRENCE
        assert list(assignment.group_keys) == [5, 1, 3]

    def test_order_slots_validation_catches_unclustered(self):
        with pytest.raises(PreconditionError, match="clustered"):
            order_slots(np.array([1, 2, 1]), validate=True)

    def test_order_slots_silent_wrong_without_validation(self):
        # Documented hazard: violating the precondition silently yields
        # one group per run.
        assignment = order_slots(np.array([1, 2, 1]))
        assert assignment.num_groups == 3

    def test_sort_order_slots_reference_original_rows(self):
        keys = np.array([9, 1, 9, 4])
        assignment = sort_order_slots(keys)
        assert assignment.key_order is KeyOrder.SORTED
        assert list(assignment.group_keys) == [1, 4, 9]
        assert list(assignment.slots) == [2, 0, 2, 1]

    def test_binary_search_slots(self):
        keys = np.array([30, 10, 30])
        assignment = binary_search_slots(keys)
        assert list(assignment.group_keys) == [10, 30]
        assert list(assignment.slots) == [1, 0, 1]

    def test_binary_search_with_known_directory(self):
        directory = np.array([10, 20, 30])
        assignment = binary_search_slots(np.array([20, 10]), directory)
        assert list(assignment.slots) == [1, 0]
        assert assignment.num_groups == 3  # directory keys are the groups

    def test_binary_search_rejects_bad_directory(self):
        with pytest.raises(PreconditionError):
            binary_search_slots(np.array([1]), np.array([2, 1]))
        with pytest.raises(PreconditionError, match="not present"):
            binary_search_slots(np.array([99]), np.array([1, 2]))


class TestGroupByDispatch:
    @pytest.mark.parametrize("algorithm", list(GroupingAlgorithm))
    def test_counts_and_sums(self, algorithm, rng):
        keys = np.sort(rng.integers(0, 50, 2_000))
        values = rng.integers(0, 100, 2_000)
        result = group_by(keys, values, algorithm, num_distinct_hint=50)
        check_result(result, keys, values)

    def test_count_only(self):
        result = group_by(np.array([1, 1, 2]), None, GroupingAlgorithm.SOG)
        assert list(result.counts) == [2, 1]
        assert list(result.sums) == [0, 0]

    def test_length_mismatch(self):
        with pytest.raises(PreconditionError):
            group_by(np.array([1, 2]), np.array([1]), GroupingAlgorithm.SOG)

    def test_float_sums(self):
        result = group_by(
            np.array([0, 0, 1]),
            np.array([0.5, 0.25, 1.0]),
            GroupingAlgorithm.SOG,
        )
        assert result.sums.tolist() == [0.75, 1.0]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=300),
    st.randoms(use_true_random=False),
)
def test_all_applicable_kernels_agree(key_values, _random):
    """Property (§4.1): every applicable implementation computes the same
    groups, counts, and sums on arbitrary input."""
    keys = np.array(key_values, dtype=np.int64)
    values = np.arange(keys.size, dtype=np.int64)
    counts, sums = naive_group(keys, values)
    results = {}
    for algorithm in GroupingAlgorithm:
        if algorithm is GroupingAlgorithm.OG:
            # Respect OG's precondition: feed it the sorted input (the
            # agreement claim is about the groups, which sorting keeps).
            order = np.argsort(keys, kind="stable")
            result = group_by(keys[order], values[order], algorithm)
        else:
            try:
                result = group_by(keys, values, algorithm)
            except PreconditionError:
                assert algorithm is GroupingAlgorithm.SPHG  # sparse domain
                continue
        results[algorithm] = result.sorted_by_key()
    reference = results[GroupingAlgorithm.SOG]
    assert reference.keys.tolist() == sorted(counts)
    for algorithm, result in results.items():
        assert result.keys.tolist() == reference.keys.tolist(), algorithm
        assert result.counts.tolist() == reference.counts.tolist(), algorithm
        assert result.sums.tolist() == reference.sums.tolist(), algorithm


@pytest.mark.parametrize("sortedness", list(Sortedness))
@pytest.mark.parametrize("density", list(Density))
def test_kernels_agree_on_figure4_datasets(sortedness, density):
    """All applicable kernels agree on each §4.1 dataset configuration."""
    dataset = make_grouping_dataset(
        3_000, 64, sortedness=sortedness, density=density, seed=11
    )
    reference = group_by(
        dataset.keys, dataset.payload, GroupingAlgorithm.SOG
    ).sorted_by_key()
    for algorithm in GroupingAlgorithm:
        if algorithm is GroupingAlgorithm.SPHG and density is Density.SPARSE:
            continue
        if algorithm is GroupingAlgorithm.OG and sortedness is Sortedness.UNSORTED:
            continue
        result = group_by(
            dataset.keys, dataset.payload, algorithm, num_distinct_hint=64
        ).sorted_by_key()
        assert np.array_equal(result.keys, reference.keys)
        assert np.array_equal(result.counts, reference.counts)
        assert np.array_equal(result.sums, reference.sums)
