"""Physical operators: streaming semantics, pipeline breakers, schemas."""

import numpy as np
import pytest

from repro.engine import (
    Filter,
    GroupBy,
    GroupingAlgorithm,
    Join,
    JoinAlgorithm,
    Limit,
    PartitionBy,
    Project,
    Sort,
    TableScan,
    col,
    count_star,
    execute,
    sum_of,
)
from repro.engine.operators.base import Chunk, table_to_chunks
from repro.errors import ExecutionError, PreconditionError
from repro.storage import Table


@pytest.fixture
def table():
    return Table.from_arrays(
        {
            "k": np.array([2, 0, 1, 0, 2, 2], dtype=np.int64),
            "v": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        }
    )


class TestChunking:
    def test_table_to_chunks_sizes(self, table):
        chunks = list(table_to_chunks(table, chunk_size=4))
        assert [c.num_rows for c in chunks] == [4, 2]

    def test_empty_table_yields_one_empty_chunk(self):
        empty = Table.from_arrays({"x": np.empty(0, dtype=np.int64)})
        chunks = list(table_to_chunks(empty))
        assert len(chunks) == 1
        assert chunks[0].num_rows == 0

    def test_chunk_validation(self):
        with pytest.raises(ExecutionError):
            Chunk({"a": np.array([1]), "b": np.array([1, 2])})

    def test_invalid_chunk_size(self, table):
        with pytest.raises(ExecutionError):
            list(table_to_chunks(table, chunk_size=0))


class TestScanFilterProject:
    def test_scan_roundtrip(self, table):
        assert execute(TableScan(table, chunk_size=2)).equals(table)

    def test_filter(self, table):
        result = execute(Filter(TableScan(table), col("v") > 3))
        assert result.to_rows() == [(0, 4), (2, 5), (2, 6)]

    def test_filter_unknown_column(self, table):
        with pytest.raises(ExecutionError):
            Filter(TableScan(table), col("zzz") > 0)

    def test_project_expressions(self, table):
        result = execute(
            Project(TableScan(table), [("double_v", col("v") * 2)])
        )
        assert result.schema.names == ("double_v",)
        assert list(result["double_v"]) == [2, 4, 6, 8, 10, 12]

    def test_project_empty_rejected(self, table):
        with pytest.raises(ExecutionError):
            Project(TableScan(table), [])

    def test_limit_stops_pulling(self, table):
        result = execute(Limit(TableScan(table, chunk_size=2), 3))
        assert result.num_rows == 3

    def test_limit_zero(self, table):
        assert execute(Limit(TableScan(table), 0)).num_rows == 0


class TestSortAndPartition:
    def test_sort(self, table):
        result = execute(Sort(TableScan(table), ["k", "v"]))
        assert result.to_rows() == [
            (0, 2), (0, 4), (1, 3), (2, 1), (2, 5), (2, 6),
        ]

    def test_sort_unknown_key(self, table):
        with pytest.raises(ExecutionError):
            Sort(TableScan(table), ["zzz"])

    def test_partition_by_producers(self, table):
        partition = PartitionBy(TableScan(table), "k")
        producers = dict(partition.producers())
        assert set(producers) == {0, 1, 2}
        assert sorted(producers[2]["v"].tolist()) == [1, 5, 6]
        assert partition.num_partitions() == 3

    def test_partition_by_slot_stream(self, table):
        partition = PartitionBy(TableScan(table), "k")
        rows = execute_slots(partition)
        # slot column groups rows consistently with the key column
        by_slot = {}
        for key, slot in rows:
            by_slot.setdefault(slot, set()).add(key)
        assert all(len(keys) == 1 for keys in by_slot.values())


def execute_slots(partition):
    pairs = []
    for chunk in partition.chunks():
        for key, slot in zip(chunk["k"].tolist(), chunk["__slot__"].tolist()):
            pairs.append((key, slot))
    return pairs


class TestGroupByOperator:
    @pytest.mark.parametrize(
        "algorithm",
        [
            GroupingAlgorithm.HG,
            GroupingAlgorithm.SPHG,
            GroupingAlgorithm.SOG,
            GroupingAlgorithm.BSG,
        ],
    )
    def test_aggregates(self, table, algorithm):
        plan = GroupBy(
            TableScan(table),
            key="k",
            aggregates=[count_star("cnt"), sum_of("v", "total")],
            algorithm=algorithm,
        )
        result = execute(plan).sort_by(["k"])
        assert result.to_rows() == [(0, 2, 6), (1, 1, 3), (2, 3, 12)]

    def test_og_validates_precondition(self, table):
        plan = GroupBy(
            TableScan(table),
            key="k",
            aggregates=[count_star()],
            algorithm=GroupingAlgorithm.OG,
            validate=True,
        )
        with pytest.raises(PreconditionError):
            execute(plan)

    def test_schema(self, table):
        plan = GroupBy(
            TableScan(table), key="k", aggregates=[count_star("c")],
        )
        assert plan.output_schema.names == ("k", "c")

    def test_duplicate_aliases_rejected(self, table):
        with pytest.raises(ExecutionError):
            GroupBy(
                TableScan(table),
                key="k",
                aggregates=[count_star("k")],
            )


class TestJoinOperator:
    @pytest.mark.parametrize("algorithm", list(JoinAlgorithm))
    def test_equijoin(self, algorithm):
        left = Table.from_arrays({"id": np.array([0, 1, 2]), "x": np.array([7, 8, 9])})
        right = Table.from_arrays({"rid": np.array([2, 0, 2]), "y": np.array([1, 2, 3])})
        if algorithm is JoinAlgorithm.OJ:
            right = right.sort_by(["rid"])
        plan = Join(
            TableScan(left), TableScan(right), "id", "rid", algorithm=algorithm
        )
        result = execute(plan)
        expected = {(0, 7, 0, 2), (2, 9, 2, 1), (2, 9, 2, 3)}
        assert set(result.to_rows()) == expected

    def test_overlapping_names_rejected(self, table):
        with pytest.raises(ExecutionError, match="qualify"):
            Join(TableScan(table), TableScan(table), "k", "k")

    def test_explain_tree(self, table):
        plan = GroupBy(
            TableScan(table), key="k", aggregates=[count_star()],
        )
        text = plan.explain()
        assert "GroupBy" in text and "TableScan" in text
