"""EXPLAIN ANALYZE: per-operator actuals on a known join+group-by plan."""

import numpy as np
import pytest

from repro.engine import (
    GroupBy,
    GroupingAlgorithm,
    Join,
    JoinAlgorithm,
    TableScan,
    count_star,
    execute,
    explain_analyze,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    disable_observability,
    instrumented,
    set_metrics,
    set_tracer,
)
from repro.storage import Table


@pytest.fixture
def plan():
    """R(3 rows) ⋈ S(6 rows) on R.ID = S.R_ID, grouped by R.A.

    Every R row matches exactly two S rows, and the three R rows carry
    two distinct A values -> 6 join rows, 2 groups.
    """
    r = Table.from_arrays(
        {
            "R.ID": np.array([0, 1, 2], dtype=np.int64),
            "R.A": np.array([10, 10, 20], dtype=np.int64),
        }
    )
    s = Table.from_arrays(
        {
            "S.R_ID": np.array([0, 0, 1, 1, 2, 2], dtype=np.int64),
            "S.B": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
        }
    )
    return GroupBy(
        Join(
            TableScan(r),
            TableScan(s),
            "R.ID",
            "S.R_ID",
            algorithm=JoinAlgorithm.HJ,
        ),
        key="R.A",
        aggregates=[count_star()],
        algorithm=GroupingAlgorithm.HG,
    )


class TestExplainAnalyze:
    def test_row_counts(self, plan):
        analyzed = explain_analyze(plan)
        group_stats = analyzed.root
        join_stats = group_stats.children[0]
        scan_r, scan_s = join_stats.children
        assert scan_r.rows_out == 3
        assert scan_s.rows_out == 6
        assert join_stats.rows_in == 9
        assert join_stats.rows_out == 6
        assert group_stats.rows_in == 6
        assert group_stats.rows_out == 2
        assert analyzed.table.num_rows == 2

    def test_result_matches_uninstrumented_execution(self, plan):
        analyzed = explain_analyze(plan)
        assert analyzed.table.sort_by(["R.A"]).equals(
            execute(plan).sort_by(["R.A"])
        )

    def test_cumulative_time_nests(self, plan):
        analyzed = explain_analyze(plan)
        for node in analyzed.root.walk():
            child_total = sum(c.cumulative_seconds for c in node.children)
            assert child_total <= node.cumulative_seconds + 1e-9
            assert node.self_seconds >= 0.0
        assert analyzed.root.cumulative_seconds <= analyzed.wall_seconds + 1e-9

    def test_chunks_counted(self, plan):
        analyzed = explain_analyze(plan)
        for node in analyzed.root.walk():
            assert node.chunks_out >= 1

    def test_render_and_to_dict(self, plan):
        analyzed = explain_analyze(plan)
        text = analyzed.render()
        assert "actual rows=6" in text
        assert "Execution time" in text
        record = analyzed.root.to_dict()
        assert record["rows_out"] == 2
        assert len(record["children"]) == 1

    def test_hooks_removed_after_analyze(self, plan):
        explain_analyze(plan)
        for operator in [plan] + plan.children + plan.children[0].children:
            assert "chunks" not in operator.__dict__

    def test_hooks_removed_on_failure(self, plan):
        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with instrumented(plan):
                raise Boom()
        assert "chunks" not in plan.__dict__


class TestEstimatesAndQError:
    """The plan-quality feedback loop on an optimiser-chosen 2-join plan."""

    @pytest.fixture
    def optimised(self):
        from repro import optimize_dqo, plan_query, to_operator
        from repro.datagen import DimensionSpec, make_star_scenario

        scenario = make_star_scenario(
            fact_rows=4_000,
            dimensions=[
                DimensionSpec(rows=500, num_groups=50),
                DimensionSpec(rows=800, num_groups=80),
            ],
            seed=11,
        )
        catalog = scenario.build_catalog()
        logical = plan_query(scenario.join_query(0), catalog)
        result = optimize_dqo(logical, catalog)
        return to_operator(result.plan, catalog), result

    def test_operators_carry_estimates(self, optimised):
        operator, result = optimised
        assert operator.estimated_rows is not None
        assert operator.estimated_cost is not None
        assert operator.plan_op == "group_by"
        assert result.estimated_rows == operator.estimated_rows

    def test_analyzed_plan_reports_qerror_per_operator(self, optimised):
        operator, __ = optimised
        analyzed = explain_analyze(operator)
        kinds = dict(analyzed.qerrors())
        assert any(k.startswith("group_by") for k in kinds)
        assert any(k.startswith("join") for k in kinds)
        for q in kinds.values():
            assert q >= 1.0
        assert analyzed.max_qerror >= 1.0

    def test_render_shows_est_act_q(self, optimised):
        operator, __ = optimised
        text = explain_analyze(operator).render()
        assert "[est " in text
        assert "· act " in text
        assert "· q=" in text
        assert "Worst cardinality q-error:" in text

    def test_to_dict_includes_estimates(self, optimised):
        operator, __ = optimised
        record = explain_analyze(operator).root.to_dict()
        assert record["estimated_rows"] is not None
        assert record["qerror"] >= 1.0

    def test_feedback_store_populated(self, optimised):
        from repro.obs import FeedbackStore

        operator, __ = optimised
        store = FeedbackStore()
        explain_analyze(operator, feedback=store)
        assert len(store) >= 3  # group_by + 2 joins at minimum
        kinds = {s.plan_op for s in store.samples()}
        assert {"group_by", "join"} <= kinds

    def test_qerror_histogram_recorded(self, optimised):
        operator, __ = optimised
        metrics = set_metrics(MetricsRegistry(enabled=True))
        set_tracer(Tracer(enabled=True))
        try:
            explain_analyze(operator)
            histogram = metrics.get("optimizer.qerror")
            assert histogram.count >= 3
            assert histogram.p50 >= 0.0
        finally:
            disable_observability()


class TestExecuteObservability:
    def test_disabled_observability_records_nothing(self, plan):
        disable_observability()
        execute(plan)
        from repro.obs import get_metrics, get_tracer

        assert get_metrics().snapshot() == {}
        assert get_tracer().finished_spans == []

    def test_enabled_observability_records(self, plan):
        metrics = set_metrics(MetricsRegistry(enabled=True))
        tracer = set_tracer(Tracer(enabled=True))
        try:
            execute(plan)
            assert metrics.get("engine.executions").value == 1
            assert metrics.get("engine.rows_out").value == 2
            assert metrics.get("engine.execute_seconds").count == 1
            assert [s.name for s in tracer.finished_spans] == [
                "engine.execute"
            ]
        finally:
            disable_observability()
