"""The process-based execution backend (`repro.engine.procpool`).

Covers the shared-memory column store lifecycle (publish/identity-cache/
GC/catalog-unregister), bit-identity of the process kernels against the
serial and thread kernels, operator-level equality with a pinned process
backend, and governance across the process boundary: deadline
propagation, mid-batch cancellation with pool reuse, and a SIGKILLed
worker surfacing as WorkerCrashError with zero leaked ``/dev/shm``
segments after shutdown.

The module forces ``REPRO_PROC_START=fork`` so pool spin-up stays cheap
on the test host; one test exercises the default ``spawn`` path
explicitly.
"""

import gc
import os
import signal
import threading
import time

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine import count_star, execute, parallel_execution, sum_of
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.joins import JoinAlgorithm, join
from repro.engine.kernels.parallel import exchange_group_by, exchange_join
from repro.engine.operators import GroupBy, Join, TableScan
from repro.engine.procpool import (
    ProcessPool,
    get_process_pool,
    get_shared_store,
    leaked_segments,
    process_group_by,
    process_join,
    run_process_tasks,
    shutdown_process_pool,
)
from repro.errors import (
    DeadlineExceeded,
    ExecutionError,
    QueryCancelled,
    WorkerCrashError,
)
from repro.service.context import CancellationToken, QueryContext
from repro.storage import Catalog, Table


@pytest.fixture(autouse=True, scope="module")
def _fork_pool_and_leak_check():
    """Cheap fork workers for the whole module; the teardown is the
    tentpole's leak contract — zero repro_shm_* entries in /dev/shm."""
    previous = os.environ.get("REPRO_PROC_START")
    os.environ["REPRO_PROC_START"] = "fork"
    shutdown_process_pool()
    yield
    shutdown_process_pool()
    if previous is None:
        os.environ.pop("REPRO_PROC_START", None)
    else:
        os.environ["REPRO_PROC_START"] = previous
    assert leaked_segments() == []


@pytest.fixture
def dataset():
    return make_grouping_dataset(
        30_000, 128, Sortedness.UNSORTED, Density.DENSE, seed=7
    )


@pytest.fixture
def join_scenario():
    return make_join_scenario(n_r=2_000, n_s=9_000, num_groups=100, seed=5)


def assert_grouping_identical(actual, expected):
    """Equality up to key order: the parallel merge emits key-sorted
    groups, serial HG emits first-seen order (same contract as the
    thread-backend tests)."""
    actual_order = np.argsort(actual.keys, kind="stable")
    expected_order = np.argsort(expected.keys, kind="stable")
    assert np.array_equal(
        actual.keys[actual_order], expected.keys[expected_order]
    )
    assert np.array_equal(
        actual.counts[actual_order], expected.counts[expected_order]
    )
    if expected.sums is None:
        assert actual.sums is None
    else:
        assert np.array_equal(
            actual.sums[actual_order], expected.sums[expected_order]
        )


class TestSharedColumnStore:
    def test_publish_roundtrip(self):
        store = get_shared_store()
        array = np.arange(1_000, dtype=np.int64) * 3
        ref = store.publish(array)
        segment = shared_memory.SharedMemory(name=ref.name)
        try:
            view = np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
            )
            assert np.array_equal(view, array)
        finally:
            segment.close()
        store.release_array(array)

    def test_publish_is_identity_cached(self):
        store = get_shared_store()
        array = np.arange(500, dtype=np.int64)
        before = store.stats()["segments"]
        first = store.publish(array)
        second = store.publish(array)
        assert first.name == second.name
        assert store.stats()["segments"] == before + 1
        store.release_array(array)

    def test_publish_rejects_noncontiguous(self):
        store = get_shared_store()
        with pytest.raises(ExecutionError):
            store.publish(np.arange(100, dtype=np.int64)[::2])

    def test_gc_releases_segment(self):
        store = get_shared_store()
        array = np.arange(2_000, dtype=np.int64)
        name = store.publish(array).name
        assert name in leaked_segments()
        del array
        gc.collect()
        assert name not in leaked_segments()

    def test_catalog_unregister_releases_segments(self, memory_storage):
        store = get_shared_store()
        table = Table.from_arrays({"v": np.arange(1_000, dtype=np.int64)})
        catalog = Catalog()
        catalog.register("T", table)
        name = store.publish(table["v"]).name
        assert name in leaked_segments()
        catalog.unregister("T")
        assert name not in leaked_segments()


class TestProcessKernels:
    @pytest.mark.parametrize(
        "algorithm", [GroupingAlgorithm.HG, GroupingAlgorithm.SOG]
    )
    def test_grouping_bit_identical_to_serial(self, dataset, algorithm):
        serial = group_by(dataset.keys, dataset.payload, algorithm)
        result = process_group_by(
            dataset.keys, dataset.payload, algorithm, shards=4, workers=2
        )
        assert_grouping_identical(result, serial)

    @pytest.mark.parametrize(
        "algorithm",
        [JoinAlgorithm.HJ, JoinAlgorithm.SPHJ, JoinAlgorithm.BSJ],
    )
    def test_join_bit_identical_to_serial(self, join_scenario, algorithm):
        build = join_scenario.r["ID"]
        probe = join_scenario.s["R_ID"]
        serial = join(build, probe, algorithm)
        result = process_join(build, probe, algorithm, shards=4, workers=2)
        assert np.array_equal(result.left_indices, serial.left_indices)
        assert np.array_equal(result.right_indices, serial.right_indices)

    def test_exchange_grouping_process_backend(self, dataset):
        serial = group_by(dataset.keys, dataset.payload, GroupingAlgorithm.HG)
        result = exchange_group_by(
            dataset.keys,
            dataset.payload,
            GroupingAlgorithm.HG,
            workers=2,
            backend="process",
        )
        assert_grouping_identical(result, serial)

    def test_exchange_join_process_backend(self, join_scenario):
        build = join_scenario.r["ID"]
        probe = join_scenario.s["R_ID"]
        serial = join(build, probe, JoinAlgorithm.HJ)
        result = exchange_join(
            build, probe, JoinAlgorithm.HJ, workers=2, backend="process"
        )
        assert np.array_equal(result.left_indices, serial.left_indices)
        assert np.array_equal(result.right_indices, serial.right_indices)

    def test_reports_worker_busy_time(self, dataset):
        reports = []
        process_group_by(
            dataset.keys,
            dataset.payload,
            GroupingAlgorithm.HG,
            shards=4,
            workers=2,
            on_report=reports.append,
        )
        assert len(reports) == 1
        assert reports[0].workers_used >= 1
        assert reports[0].busy_seconds >= 0.0


class TestOperatorEquality:
    def test_group_by_operator_process_backend(self, dataset):
        table = dataset.to_table()
        plan = lambda backend: GroupBy(  # noqa: E731
            TableScan(table),
            "key",
            [count_star(), sum_of("value")],
            algorithm=GroupingAlgorithm.HG,
            shards=4,
            parallel=True,
            backend=backend,
        )
        serial = execute(plan(None))
        with parallel_execution(2):
            result = execute(plan("process"))
        for name in serial.schema.names:
            assert np.array_equal(result[name], serial[name])

    def test_join_operator_process_backend(self, join_scenario):
        plan = lambda backend: Join(  # noqa: E731
            TableScan(join_scenario.r),
            TableScan(join_scenario.s),
            "ID",
            "R_ID",
            algorithm=JoinAlgorithm.HJ,
            parallel=True,
            backend=backend,
        )
        serial = execute(plan(None))
        with parallel_execution(2):
            result = execute(plan("process"))
        for name in serial.schema.names:
            assert np.array_equal(result[name], serial[name])


class TestGovernance:
    def test_deadline_propagates_to_workers(self):
        context = QueryContext.start(deadline=0.0)
        tasks = [("sleep", {"seconds": 0.2}) for __ in range(4)]
        with pytest.raises(DeadlineExceeded):
            run_process_tasks(tasks, workers=2, context=context)

    def test_cancellation_mid_batch_and_pool_reuse(self):
        token = CancellationToken()
        context = QueryContext.start(token=token)
        tasks = [("sleep", {"seconds": 0.4}) for __ in range(6)]
        timer = threading.Timer(0.1, token.cancel)
        timer.start()
        try:
            with pytest.raises(QueryCancelled):
                run_process_tasks(tasks, workers=2, context=context)
        finally:
            timer.cancel()
        # The pool survives a cancelled batch and runs the next one.
        report = run_process_tasks(
            [("sleep", {"seconds": 0.0, "token": i}) for i in range(3)],
            workers=2,
        )
        assert report.results == [0, 1, 2]

    def test_worker_error_rebuilt_parent_side(self):
        keys = np.arange(100, dtype=np.int64)
        ref = get_shared_store().publish(keys)
        task = (
            "group",
            {
                "keys": ref,
                "values": None,
                "start": 0,
                "stop": 100,
                "algorithm": "no-such-algorithm",
                "num_distinct_hint": None,
            },
        )
        with pytest.raises(ExecutionError, match="no-such-algorithm"):
            run_process_tasks([task], workers=2)
        get_shared_store().release_array(keys)

    def test_sigkill_mid_morsel_raises_worker_crash(self):
        pool = get_process_pool(2)
        victim = pool._workers[0]
        timer = threading.Timer(
            0.1, lambda: os.kill(victim.pid, signal.SIGKILL)
        )
        timer.start()
        tasks = [("sleep", {"seconds": 0.5}) for __ in range(6)]
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.run_batch(tasks)
        finally:
            timer.cancel()
        assert pool.broken
        assert excinfo.value.worker == victim.name
        # A later batch transparently gets a rebuilt pool ...
        report = run_process_tasks(
            [("sleep", {"seconds": 0.0, "token": "ok"})], workers=2
        )
        assert report.results == ["ok"]
        # ... and a broken pool refuses new batches outright.
        with pytest.raises(WorkerCrashError):
            pool.run_batch([("sleep", {"seconds": 0.0})])

    def test_shutdown_unlinks_all_segments(self):
        store = get_shared_store()
        keep = np.arange(5_000, dtype=np.int64)
        store.publish(keep)
        run_process_tasks([("sleep", {"seconds": 0.0})], workers=2)
        shutdown_process_pool()
        assert leaked_segments() == []
        # The next request transparently builds a fresh pool.
        report = run_process_tasks(
            [("sleep", {"seconds": 0.0, "token": "fresh"})], workers=2
        )
        assert report.results == ["fresh"]


class TestWorkerSegmentCache:
    def test_eviction_past_cap_never_unmaps_current_payload(self):
        """Regression: LIFO eviction used to close a segment attached
        moments earlier for the *same* multi-ref payload once a worker's
        cache hit its cap, so the kernel read unmapped memory (worker
        segfault or silently wrong results)."""
        from repro.engine.procpool import _WORKER_CACHE_CAP

        rng = np.random.default_rng(11)
        store = get_shared_store()
        keepalive = []
        tasks = []
        for __ in range(_WORKER_CACHE_CAP):
            keys = rng.integers(0, 8, size=32).astype(np.int64)
            keepalive.append(keys)
            tasks.append(
                (
                    "group",
                    {
                        "keys": store.publish(keys),
                        "values": None,
                        "start": 0,
                        "stop": int(keys.size),
                        "algorithm": GroupingAlgorithm.HG.value,
                        "num_distinct_hint": None,
                    },
                )
            )
        # The capstone task carries two fresh refs: with the cache at its
        # cap, attaching ``values`` must not evict (and unmap) ``keys``.
        keys = rng.integers(0, 8, size=4_096).astype(np.int64)
        values = rng.integers(0, 1_000, size=4_096).astype(np.int64)
        keepalive += [keys, values]
        tasks.append(
            (
                "group",
                {
                    "keys": store.publish(keys),
                    "values": store.publish(values),
                    "start": 0,
                    "stop": int(keys.size),
                    "algorithm": GroupingAlgorithm.HG.value,
                    "num_distinct_hint": None,
                },
            )
        )
        pool = ProcessPool(1)  # one worker sees every task in order
        try:
            report = pool.run_batch(tasks)
        finally:
            pool.shutdown()
        expected = group_by(keys, values, GroupingAlgorithm.HG)
        capstone = report.results[-1]
        assert np.array_equal(capstone["keys"], expected.keys)
        assert np.array_equal(capstone["counts"], expected.counts)
        assert np.array_equal(capstone["sums"], expected.sums)
        for array in keepalive:
            store.release_array(array)


class TestPoolUserRefcount:
    def test_stopping_one_service_keeps_pool_for_another(self):
        """Regression: QueryService.shutdown() used to tear down the
        process-global pool and unlink every segment unconditionally,
        breaking any other service's in-flight process-backend queries."""
        from repro.engine import procpool
        from repro.service.session import QueryService

        # Hermetic refcount: services elsewhere in the suite may still
        # hold claims; park them for the duration of this test.
        with procpool._pool_lock:
            parked, procpool._pool_users = procpool._pool_users, 0
        catalog = Catalog()
        catalog.register(
            "T", Table.from_arrays({"v": np.arange(100, dtype=np.int64)})
        )
        first = QueryService(catalog)
        second = QueryService(catalog)
        try:
            store = get_shared_store()
            pinned = np.arange(4_000, dtype=np.int64)
            name = store.publish(pinned).name
            first.shutdown()
            # `second` still owns the pool: segments stay mapped and new
            # batches run.
            assert name in leaked_segments()
            report = run_process_tasks(
                [("sleep", {"seconds": 0.0, "token": "alive"})], workers=2
            )
            assert report.results == ["alive"]
            second.shutdown()
            # Last user out: full teardown, segments unlinked.
            assert name not in leaked_segments()
        finally:
            with procpool._pool_lock:
                procpool._pool_users += parked


class TestSpawnStartMethod:
    def test_spawn_pool_roundtrip(self):
        """The production default (fork-safe under service threads)."""
        pool = ProcessPool(1, start_method="spawn")
        try:
            report = pool.run_batch(
                [("sleep", {"seconds": 0.0, "token": "spawned"})]
            )
            assert report.results == ["spawned"]
        finally:
            pool.shutdown()
