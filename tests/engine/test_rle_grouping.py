"""Metadata-only grouping over RLE columns (§2.2 "compressed — how
exactly?")."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.rle_grouping import rle_compress_with_sums, rle_group_by
from repro.errors import PreconditionError
from repro.storage.rle import rle_encode


class TestRleGroupBy:
    def test_counts_from_run_lengths(self):
        encoded = rle_encode(np.array([3, 3, 5, 5, 5, 3]))
        result = rle_group_by(encoded)
        assert result.keys.tolist() == [3, 5]
        assert result.counts.tolist() == [3, 3]

    def test_sums_from_run_sums(self):
        keys = np.array([1, 1, 2, 1])
        values = np.array([10, 20, 30, 40])
        encoded, run_sums = rle_compress_with_sums(keys, values)
        result = rle_group_by(encoded, run_sums)
        assert result.keys.tolist() == [1, 2]
        assert result.sums.tolist() == [70, 30]
        assert result.counts.tolist() == [3, 1]

    def test_empty(self):
        encoded = rle_encode(np.empty(0, dtype=np.int64))
        assert rle_group_by(encoded).num_groups == 0

    def test_misaligned_run_sums_rejected(self):
        encoded = rle_encode(np.array([1, 2]))
        with pytest.raises(PreconditionError, match="shape"):
            rle_group_by(encoded, np.array([1.0]))

    def test_mismatched_compress_inputs_rejected(self):
        with pytest.raises(PreconditionError):
            rle_compress_with_sums(np.array([1, 2]), np.array([1]))

    def test_output_is_key_sorted(self):
        encoded = rle_encode(np.array([9, 9, 1, 4, 4]))
        result = rle_group_by(encoded)
        assert result.keys.tolist() == [1, 4, 9]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 8), max_size=300))
def test_rle_grouping_matches_row_grouping(values):
    """Property: aggregating run metadata equals aggregating rows."""
    keys = np.array(values, dtype=np.int64)
    payload = np.arange(keys.size, dtype=np.int64)
    encoded, run_sums = rle_compress_with_sums(keys, payload)
    from_rle = rle_group_by(encoded, run_sums)
    if keys.size == 0:
        assert from_rle.num_groups == 0
        return
    from_rows = group_by(keys, payload, GroupingAlgorithm.SOG).sorted_by_key()
    assert from_rle.keys.tolist() == from_rows.keys.tolist()
    assert from_rle.counts.tolist() == from_rows.counts.tolist()
    assert from_rle.sums.tolist() == from_rows.sums.tolist()


def test_touches_only_runs_not_rows():
    """The whole point: work scales with runs, not rows."""
    keys = np.repeat(np.arange(100, dtype=np.int64), 10_000)  # 1M rows, 100 runs
    encoded = rle_encode(keys)
    assert encoded.num_runs == 100
    result = rle_group_by(encoded)
    assert result.counts.tolist() == [10_000] * 100
