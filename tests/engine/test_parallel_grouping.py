"""Morsel-style parallel grouping (Figure 3e): shard + merge == serial."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.parallel import merge_partials, parallel_group_by
from repro.errors import PreconditionError


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("shards", [1, 2, 3, 8, 16])
    @pytest.mark.parametrize(
        "algorithm",
        [
            GroupingAlgorithm.HG,
            GroupingAlgorithm.SPHG,
            GroupingAlgorithm.SOG,
            GroupingAlgorithm.BSG,
        ],
    )
    def test_equivalence(self, algorithm, shards):
        dataset = make_grouping_dataset(
            5_000, 64, Sortedness.UNSORTED, Density.DENSE, seed=8
        )
        serial = group_by(
            dataset.keys, dataset.payload, algorithm, num_distinct_hint=64
        ).sorted_by_key()
        parallel = parallel_group_by(
            dataset.keys,
            dataset.payload,
            algorithm,
            shards=shards,
            num_distinct_hint=64,
        ).sorted_by_key()
        assert np.array_equal(parallel.keys, serial.keys)
        assert np.array_equal(parallel.counts, serial.counts)
        assert np.array_equal(parallel.sums, serial.sums)

    def test_og_on_sorted_input_survives_shard_boundaries(self):
        # A run crossing a shard boundary splits into two partials; the
        # merge must recombine them into one group.
        keys = np.sort(
            make_grouping_dataset(
                4_000, 37, Sortedness.SORTED, Density.DENSE, seed=9
            ).keys
        )
        serial = group_by(keys, None, GroupingAlgorithm.OG).sorted_by_key()
        parallel = parallel_group_by(
            keys, None, GroupingAlgorithm.OG, shards=7
        ).sorted_by_key()
        assert np.array_equal(parallel.keys, serial.keys)
        assert np.array_equal(parallel.counts, serial.counts)

    def test_empty_input(self):
        result = parallel_group_by(
            np.empty(0, dtype=np.int64), None, GroupingAlgorithm.HG, shards=4
        )
        assert result.num_groups == 0

    def test_more_shards_than_rows(self):
        result = parallel_group_by(
            np.array([5, 5, 6]), None, GroupingAlgorithm.SOG, shards=50
        )
        assert result.keys.tolist() == [5, 6]
        assert result.counts.tolist() == [2, 1]

    def test_invalid_shards(self):
        with pytest.raises(PreconditionError):
            parallel_group_by(np.array([1]), None, GroupingAlgorithm.HG, shards=0)


class TestMerge:
    def test_merge_of_nothing(self):
        assert merge_partials([]).num_groups == 0

    def test_merge_sums_overlapping_keys(self):
        a = group_by(np.array([1, 1, 2]), np.array([1, 2, 3]), GroupingAlgorithm.SOG)
        b = group_by(np.array([2, 3]), np.array([4, 5]), GroupingAlgorithm.SOG)
        merged = merge_partials([a, b])
        assert merged.keys.tolist() == [1, 2, 3]
        assert merged.counts.tolist() == [2, 2, 1]
        assert merged.sums.tolist() == [3, 7, 5]

    def test_merged_output_is_sorted(self):
        a = group_by(np.array([9, 1]), None, GroupingAlgorithm.HG)
        b = group_by(np.array([5]), None, GroupingAlgorithm.HG)
        merged = merge_partials([a, b])
        assert merged.keys.tolist() == [1, 5, 9]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 25), min_size=1, max_size=300),
    st.integers(1, 12),
)
def test_parallel_property(values, shards):
    """Property: shard + merge equals serial for any input and shard
    count (HG per shard)."""
    keys = np.array(values, dtype=np.int64)
    payload = np.ones(keys.size, dtype=np.int64)
    serial = group_by(keys, payload, GroupingAlgorithm.HG).sorted_by_key()
    parallel = parallel_group_by(
        keys, payload, GroupingAlgorithm.HG, shards=shards
    ).sorted_by_key()
    assert np.array_equal(parallel.keys, serial.keys)
    assert np.array_equal(parallel.counts, serial.counts)
    assert np.array_equal(parallel.sums, serial.sums)
