"""Real parallel execution: the morsel scheduler, worker-count
determinism, and the shared-build parallel join.

The sharding dimension (shard + merge == serial, any shard count) is
covered by test_parallel_grouping.py; this file covers the *workers*
dimension — scheduling morsels on the shared thread pool must change
wall-clock behaviour only, never results. Every (algorithm x workers)
combination is asserted identical to the serial kernel: grouping up to
key order (the merge sorts), joins bit-for-bit.
"""

import threading

import numpy as np
import pytest

from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine import (
    ExecutorConfig,
    col,
    count_star,
    execute,
    get_executor_config,
    parallel_execution,
    set_executor_config,
    sum_of,
)
from repro.engine.kernels.grouping import GroupingAlgorithm, GroupingResult, KeyOrder, group_by
from repro.engine.kernels.joins import JoinAlgorithm, join
from repro.engine.kernels.parallel import (
    PARALLEL_PROBE_ALGORITHMS,
    merge_partials,
    parallel_group_by,
    parallel_join,
)
from repro.engine.operators import Filter, GroupBy, Join, TableScan
from repro.engine.parallel import (
    morsel_boundaries,
    on_worker_thread,
    run_morsels,
)
from repro.errors import ConfigurationError, ExecutionError
from repro.obs import capture_observability

WORKER_COUNTS = [1, 2, 4]


@pytest.fixture
def sorted_dense_dataset():
    """Sorted + dense satisfies every grouping algorithm's precondition."""
    return make_grouping_dataset(
        20_000, 64, Sortedness.SORTED, Density.DENSE, seed=11
    )


@pytest.fixture
def join_scenario():
    """Sorted/sorted dense: every join algorithm is applicable."""
    return make_join_scenario(n_r=1_500, n_s=6_000, num_groups=75, seed=13)


class TestExecutorConfig:
    def test_defaults_are_serial(self):
        assert ExecutorConfig().workers == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ExecutionError):
            ExecutorConfig(workers=0)

    def test_rejects_zero_morsel_rows(self):
        with pytest.raises(ExecutionError):
            ExecutorConfig(morsel_rows=0)

    def test_from_env_reads_repro_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert ExecutorConfig.from_env().workers == 4

    def test_from_env_rejects_zero_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigurationError):
            ExecutorConfig.from_env()

    def test_from_env_rejects_negative_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ConfigurationError):
            ExecutorConfig.from_env()

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            ExecutorConfig.from_env()

    def test_from_env_rejects_bad_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fiber")
        with pytest.raises(ConfigurationError):
            ExecutorConfig.from_env()

    def test_from_env_reads_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert ExecutorConfig.from_env().backend == "process"

    def test_from_env_morsel_rows(self, monkeypatch):
        monkeypatch.setenv("REPRO_MORSEL_ROWS", "1024")
        assert ExecutorConfig.from_env().morsel_rows == 1024

    def test_parallel_execution_scopes_and_restores(self):
        before = get_executor_config()
        with parallel_execution(3) as config:
            assert config.workers == 3
            assert get_executor_config().workers == 3
        assert get_executor_config() == before

    def test_parallel_execution_restores_on_error(self):
        before = get_executor_config()
        with pytest.raises(RuntimeError):
            with parallel_execution(2):
                raise RuntimeError("boom")
        assert get_executor_config() == before

    def test_set_executor_config_round_trip(self):
        before = get_executor_config()
        try:
            set_executor_config(ExecutorConfig(workers=2, morsel_rows=4096))
            assert get_executor_config().workers == 2
            assert get_executor_config().morsel_rows == 4096
        finally:
            set_executor_config(before)


class TestMorselBoundaries:
    @pytest.mark.parametrize("num_rows", [0, 1, 7, 100, 65_537])
    @pytest.mark.parametrize("morsels", [1, 2, 3, 8, 64])
    def test_contiguous_cover(self, num_rows, morsels):
        bounds = morsel_boundaries(num_rows, morsels)
        position = 0
        for start, stop in bounds:
            assert start == position
            assert stop > start
            position = stop
        assert position == num_rows

    def test_near_equal_sizes(self):
        sizes = [stop - start for start, stop in morsel_boundaries(100, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_morsel_count(self):
        with pytest.raises(ExecutionError):
            morsel_boundaries(10, 0)


class TestRunMorsels:
    def test_results_in_submission_order(self):
        tasks = [(lambda i=i: i * i) for i in range(32)]
        report = run_morsels(tasks, workers=4)
        assert report.results == [i * i for i in range(32)]

    def test_single_task_runs_inline(self):
        report = run_morsels([lambda: threading.current_thread().name])
        assert report.workers_used == 1
        assert not report.results[0].startswith("repro-worker")

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("morsel failure")

        with pytest.raises(ValueError, match="morsel failure"):
            run_morsels([lambda: 1, boom, lambda: 3], workers=2)

    def test_nested_scheduling_runs_inline(self):
        # A task that itself calls run_morsels must not deadlock the
        # bounded pool: the inner batch runs inline on the worker.
        def outer():
            assert on_worker_thread()
            inner = run_morsels([lambda: 1, lambda: 2], workers=4)
            return inner.workers_used

        report = run_morsels([outer, outer], workers=2)
        assert report.results == [1, 1]

    def test_morsel_metrics_are_exact(self):
        with capture_observability() as (metrics, tracer):
            run_morsels([(lambda i=i: i) for i in range(12)], workers=4)
            assert metrics.get("parallel.morsels").value == 12
            assert metrics.get("worker.busy_seconds").value >= 0.0

    def test_morsel_spans_are_traced(self):
        with capture_observability() as (metrics, tracer):
            run_morsels([(lambda i=i: i) for i in range(8)], workers=4)
            spans = [
                span
                for span in tracer.finished_spans
                if span.name == "parallel.morsel"
            ]
            assert len(spans) == 8


GROUPING_CASES = [
    GroupingAlgorithm.HG,
    GroupingAlgorithm.SPHG,
    GroupingAlgorithm.OG,
    GroupingAlgorithm.SOG,
    GroupingAlgorithm.BSG,
]


class TestGroupingWorkersDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("algorithm", GROUPING_CASES)
    def test_every_algorithm_matches_serial(
        self, sorted_dense_dataset, algorithm, workers
    ):
        dataset = sorted_dense_dataset
        serial = group_by(
            dataset.keys, dataset.payload, algorithm, num_distinct_hint=64
        ).sorted_by_key()
        parallel = parallel_group_by(
            dataset.keys,
            dataset.payload,
            algorithm,
            shards=8,
            num_distinct_hint=64,
            workers=workers,
        ).sorted_by_key()
        assert np.array_equal(parallel.keys, serial.keys)
        assert np.array_equal(parallel.counts, serial.counts)
        assert np.array_equal(parallel.sums, serial.sums)

    def test_repeated_runs_are_identical(self, sorted_dense_dataset):
        dataset = sorted_dense_dataset
        first = parallel_group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.HG,
            shards=8, workers=4,
        )
        second = parallel_group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.HG,
            shards=8, workers=4,
        )
        assert np.array_equal(first.keys, second.keys)
        assert np.array_equal(first.counts, second.counts)
        assert np.array_equal(first.sums, second.sums)


JOIN_CASES = [
    JoinAlgorithm.HJ,
    JoinAlgorithm.SPHJ,
    JoinAlgorithm.OJ,
    JoinAlgorithm.SOJ,
    JoinAlgorithm.BSJ,
]


class TestJoinWorkersDeterminism:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("algorithm", JOIN_CASES)
    def test_every_algorithm_bit_identical(
        self, join_scenario, algorithm, workers
    ):
        build = join_scenario.r["ID"]
        probe = join_scenario.s["R_ID"]
        serial = join(build, probe, algorithm)
        parallel = parallel_join(
            build, probe, algorithm, shards=8, workers=workers
        )
        # Bit-identical, not merely set-equal: probe-major shard outputs
        # concatenate back into exactly the serial row order.
        assert np.array_equal(parallel.left_indices, serial.left_indices)
        assert np.array_equal(parallel.right_indices, serial.right_indices)

    def test_lockstep_algorithms_fall_back_to_serial(self, join_scenario):
        assert JoinAlgorithm.OJ not in PARALLEL_PROBE_ALGORITHMS
        assert JoinAlgorithm.SOJ not in PARALLEL_PROBE_ALGORITHMS

    def test_reports_scheduling_facts(self, join_scenario):
        reports = []
        parallel_join(
            join_scenario.r["ID"],
            join_scenario.s["R_ID"],
            JoinAlgorithm.HJ,
            shards=6,
            workers=2,
            on_report=reports.append,
        )
        assert len(reports) == 1
        assert len(reports[0].results) == 6


class TestMergePrecision:
    """Satellite regression: merging partial aggregates must stay exact
    past 2**53, where float64 loses integer resolution."""

    def test_integer_sums_exact_beyond_float53(self):
        big = 2**53
        a = group_by(
            np.array([1], dtype=np.int64),
            np.array([big], dtype=np.int64),
            GroupingAlgorithm.HG,
        )
        b = group_by(
            np.array([1], dtype=np.int64),
            np.array([1], dtype=np.int64),
            GroupingAlgorithm.HG,
        )
        merged = merge_partials([a, b])
        # float64 would round 2**53 + 1 back down to 2**53.
        assert merged.sums.dtype == np.int64
        assert int(merged.sums[0]) == big + 1

    def test_large_counts_exact(self):
        big = 2**53
        partials = [
            GroupingResult(
                keys=np.array([7], dtype=np.int64),
                counts=np.array([big], dtype=np.int64),
                sums=np.array([big], dtype=np.int64),
                key_order=KeyOrder.SORTED,
            ),
            GroupingResult(
                keys=np.array([7], dtype=np.int64),
                counts=np.array([3], dtype=np.int64),
                sums=np.array([5], dtype=np.int64),
                key_order=KeyOrder.SORTED,
            ),
        ]
        merged = merge_partials(partials)
        assert int(merged.counts[0]) == big + 3
        assert int(merged.sums[0]) == big + 5

    def test_float_payloads_still_merge(self):
        a = group_by(
            np.array([1, 2], dtype=np.int64),
            np.array([0.5, 1.5]),
            GroupingAlgorithm.HG,
        )
        merged = merge_partials([a, a])
        assert merged.sums.tolist() == [1.0, 3.0]


class TestOperatorParallelism:
    """Operator-level equivalence: a plan pinned parallel=True under a
    multi-worker config produces the same table as the serial plan."""

    def _grouped(self, table, parallel, workers):
        with parallel_execution(workers):
            return execute(
                GroupBy(
                    TableScan(table),
                    "key",
                    [count_star(), sum_of("value")],
                    algorithm=GroupingAlgorithm.HG,
                    shards=8,
                    parallel=parallel,
                )
            ).sort_by(["key"])

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_group_by_operator(self, sorted_dense_dataset, workers):
        table = sorted_dense_dataset.to_table()
        serial = self._grouped(table, False, 1)
        parallel = self._grouped(table, True, workers)
        for name in serial.schema.names:
            assert np.array_equal(
                parallel[name], serial[name]
            ), name

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_join_operator(self, join_scenario, workers):
        def run(parallel, workers):
            with parallel_execution(workers):
                return execute(
                    Join(
                        TableScan(join_scenario.r),
                        TableScan(join_scenario.s),
                        "ID",
                        "R_ID",
                        algorithm=JoinAlgorithm.HJ,
                        parallel=parallel,
                    )
                )

        serial = run(False, 1)
        parallel = run(True, workers)
        for name in serial.schema.names:
            assert np.array_equal(
                parallel[name], serial[name]
            ), name

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_filter_preserves_chunk_order(self, workers):
        rng = np.random.default_rng(17)
        table = (
            make_grouping_dataset(
                120_000, 200, Sortedness.UNSORTED, Density.DENSE, seed=19
            ).to_table()
        )
        plan = lambda: Filter(TableScan(table), col("key") < 100)
        serial = execute(plan())
        with parallel_execution(workers):
            parallel = execute(plan())
        for name in serial.schema.names:
            assert np.array_equal(
                parallel[name], serial[name]
            ), name
