"""The SegmentScan operator: streaming, skipping, accounting, governance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Filter, col, execute
from repro.engine.operators import SegmentScan, TableScan
from repro.errors import DeadlineExceeded
from repro.service.context import QueryContext, activate_context
from repro.storage import Table
from repro.storage.disk import BufferManager, write_table


@pytest.fixture
def disk(tmp_path):
    table = Table.from_arrays(
        {
            "k": np.arange(4_000, dtype=np.int64),
            "v": np.tile(np.arange(8, dtype=np.int64), 500),
        }
    )
    pool = BufferManager(budget_bytes=16 * 1024 * 1024)
    return write_table(
        table, str(tmp_path / "t"), segment_rows=500, buffer=pool
    )


class TestStreaming:
    def test_full_scan_matches_table_scan(self, disk):
        from_disk = SegmentScan(disk).to_table()
        from_memory = TableScan(disk.to_memory()).to_table()
        assert from_disk.equals(from_memory)

    def test_alias_qualifies_output(self, disk):
        result = SegmentScan(disk, alias="T").to_table()
        assert list(result.schema.names) == ["T.k", "T.v"]

    def test_empty_table_yields_one_empty_chunk(self, tmp_path):
        empty = Table.from_arrays({"x": np.array([], dtype=np.int64)})
        disk = write_table(empty, str(tmp_path / "e"))
        chunks = list(SegmentScan(disk).chunks())
        assert len(chunks) == 1
        assert chunks[0].num_rows == 0
        assert "x" in chunks[0].column_names

    def test_describe(self, disk):
        scan = SegmentScan(disk, predicates=(col("k") < 10,))
        assert "SegmentScan" in scan.describe()
        assert "pushed=1" in scan.describe()


class TestSkipping:
    def test_pruned_segments_never_read(self, disk):
        scan = SegmentScan(disk, predicates=(col("k") < 700,))
        scan.to_table()
        read, skipped, cold = scan.io_counters()
        assert read == 2  # k in [0, 700) spans segments 0 and 1
        assert skipped == 6
        assert cold > 0

    def test_pushed_predicates_skip_but_do_not_filter(self, disk):
        # Pushed conjuncts prove which segments are empty; surviving
        # segments stream whole. The Filter above applies them row-wise,
        # giving results bit-identical to the in-memory path.
        predicate = col("k") < 700
        scan = SegmentScan(disk, predicates=(predicate,))
        unfiltered = scan.to_table()
        assert unfiltered.num_rows == 1_000  # two full segments
        filtered = execute(Filter(SegmentScan(disk, predicates=(predicate,)), predicate))
        np.testing.assert_array_equal(
            filtered["k"], np.arange(700, dtype=np.int64)
        )

    def test_warm_rerun_reads_zero_cold_bytes(self, disk):
        scan = SegmentScan(disk)
        scan.to_table()
        __, __, first_cold = scan.io_counters()
        scan.reset_memory_accounting()
        scan.to_table()
        __, __, second_cold = scan.io_counters()
        assert first_cold > 0
        assert second_cold == 0  # the 16 MiB pool holds all segments

    def test_reset_clears_io_counters(self, disk):
        scan = SegmentScan(disk)
        scan.to_table()
        scan.reset_memory_accounting()
        assert scan.io_counters() == (0, 0, 0)


class TestGovernance:
    def test_memory_accounting_tracks_pinned_group(self, disk):
        scan = SegmentScan(disk)
        scan.to_table()
        # One row group (both columns of one 500-row segment) at a time.
        assert scan.memory_bytes() == 2 * 500 * 8

    def test_deadline_checked_per_segment(self, disk):
        context = QueryContext.start(deadline=0.0)
        with activate_context(context):
            with pytest.raises(DeadlineExceeded):
                SegmentScan(disk).to_table()
