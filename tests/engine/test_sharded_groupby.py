"""The GroupBy operator's Figure 3(e) sharded (parallel-load) mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    GroupBy,
    GroupingAlgorithm,
    TableScan,
    avg_of,
    count_star,
    execute,
    max_of,
    min_of,
    sum_of,
)
from repro.errors import ExecutionError
from repro.storage import Table


def make_table(rng, rows=4_000, groups=50):
    return Table.from_arrays(
        {
            "k": rng.integers(0, groups, rows),
            "v": rng.integers(-100, 100, rows),
        }
    )


ALL_AGGREGATES = [
    count_star("c"),
    sum_of("v", "s"),
    min_of("v", "lo"),
    max_of("v", "hi"),
    avg_of("v", "m"),
]


class TestShardedGroupBy:
    @pytest.mark.parametrize("shards", [2, 3, 7, 16])
    def test_all_aggregates_match_serial(self, rng, shards):
        table = make_table(rng)
        serial = execute(
            GroupBy(TableScan(table), "k", ALL_AGGREGATES)
        ).sort_by(["k"])
        sharded = execute(
            GroupBy(TableScan(table), "k", ALL_AGGREGATES, shards=shards)
        ).sort_by(["k"])
        assert sharded.schema == serial.schema
        for name in ("k", "c", "s", "lo", "hi"):
            assert np.array_equal(sharded[name], serial[name]), name
        assert np.allclose(sharded["m"], serial["m"])

    def test_sphg_shards(self, rng):
        table = Table.from_arrays({"k": rng.integers(0, 30, 2_000)})
        serial = execute(
            GroupBy(TableScan(table), "k", [count_star("c")],
                    GroupingAlgorithm.SPHG)
        ).sort_by(["k"])
        sharded = execute(
            GroupBy(TableScan(table), "k", [count_star("c")],
                    GroupingAlgorithm.SPHG, shards=4)
        ).sort_by(["k"])
        assert sharded.equals(serial)

    def test_empty_input(self):
        table = Table.from_arrays(
            {"k": np.empty(0, dtype=np.int64), "v": np.empty(0, dtype=np.int64)}
        )
        result = execute(
            GroupBy(TableScan(table), "k", [count_star("c")], shards=4)
        )
        assert result.num_rows == 0

    def test_describe_mentions_shards(self, rng):
        operator = GroupBy(
            TableScan(make_table(rng)), "k", [count_star()], shards=8
        )
        assert "shards=8" in operator.describe()

    def test_invalid_shards(self, rng):
        with pytest.raises(ExecutionError):
            GroupBy(TableScan(make_table(rng)), "k", [count_star()], shards=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 10), min_size=1, max_size=200),
    st.integers(2, 9),
)
def test_sharded_property(values, shards):
    """Property: shard + merge equals serial for COUNT/SUM/MIN/MAX/AVG."""
    table = Table.from_arrays(
        {
            "k": np.array(values, dtype=np.int64),
            "v": np.arange(len(values), dtype=np.int64),
        }
    )
    serial = execute(GroupBy(TableScan(table), "k", ALL_AGGREGATES)).sort_by(["k"])
    sharded = execute(
        GroupBy(TableScan(table), "k", ALL_AGGREGATES, shards=shards)
    ).sort_by(["k"])
    assert serial.to_rows() == pytest.approx(sharded.to_rows())
