"""Figure 1 fidelity: the textbook algorithm is executable and agrees
with the vectorised kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.textbook import count_sum_aggregate, textbook_hash_grouping


def test_counts_and_sums():
    rows = [(1, 10), (2, 20), (1, 30)]
    result = textbook_hash_grouping(rows, 0, count_sum_aggregate(0, 1))
    assert sorted(result) == [(1, 2, 40), (2, 1, 20)]


def test_empty_relation():
    assert textbook_hash_grouping([], 0, count_sum_aggregate(0, 1)) == []


def test_materialised_input_decision_4():
    # Decision 4 of §1: the signature demands a materialised relation —
    # a generator works only because it is consumed fully up front.
    rows = ((k, k) for k in [3, 3, 4])
    result = textbook_hash_grouping(rows, 0, count_sum_aggregate(0, 1))
    assert sorted(result) == [(3, 2, 6), (4, 1, 4)]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 9)), max_size=150))
def test_textbook_agrees_with_vectorised_kernels(rows):
    """Property: Figure 1's algorithm is an oracle for the kernels."""
    textbook = sorted(
        textbook_hash_grouping(rows, 0, count_sum_aggregate(0, 1))
    )
    keys = np.array([row[0] for row in rows], dtype=np.int64)
    values = np.array([row[1] for row in rows], dtype=np.int64)
    kernel = group_by(keys, values, GroupingAlgorithm.HG).sorted_by_key()
    assert textbook == list(
        zip(kernel.keys.tolist(), kernel.counts.tolist(), kernel.sums.tolist())
    )
