"""Expression evaluation and aggregate computation."""

import numpy as np
import pytest

from repro.engine.aggregates import (
    AggregateFunction,
    AggregateSpec,
    avg_of,
    compute_aggregate,
    count_star,
    max_of,
    min_of,
    sum_of,
)
from repro.engine.expressions import BinaryOp, Literal, NotOp, col
from repro.errors import ExecutionError


@pytest.fixture
def chunk():
    return {
        "a": np.array([1, 2, 3, 4]),
        "b": np.array([10, 20, 30, 40]),
    }


class TestExpressions:
    def test_column_ref(self, chunk):
        assert list(col("a").evaluate(chunk)) == [1, 2, 3, 4]

    def test_missing_column(self, chunk):
        with pytest.raises(ExecutionError, match="not in chunk"):
            col("zzz").evaluate(chunk)

    def test_literal_broadcast(self, chunk):
        assert list(Literal(7).evaluate(chunk)) == [7, 7, 7, 7]

    def test_arithmetic(self, chunk):
        expression = col("a") * 2 + col("b")
        assert list(expression.evaluate(chunk)) == [12, 24, 36, 48]

    def test_comparisons(self, chunk):
        assert list((col("a") >= 3).evaluate(chunk)) == [False, False, True, True]
        assert list((col("a") != 2).evaluate(chunk)) == [True, False, True, True]

    def test_boolean_connectives(self, chunk):
        expression = (col("a") > 1) & (col("b") < 40)
        assert list(expression.evaluate(chunk)) == [False, True, True, False]
        expression = (col("a") == 1) | (col("a") == 4)
        assert list(expression.evaluate(chunk)) == [True, False, False, True]

    def test_not(self, chunk):
        assert list((~(col("a") > 2)).evaluate(chunk)) == [True, True, False, False]

    def test_referenced_columns(self):
        expression = (col("x") + col("y") > 3) & ~(col("z") == 1)
        assert expression.referenced_columns() == {"x", "y", "z"}

    def test_repr_roundtrips_visually(self):
        assert repr((col("a") + 1) > col("b")) == "((a + 1) > b)"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinaryOp("**", col("a"), Literal(2))

    def test_bad_operand_rejected(self):
        with pytest.raises(ExecutionError):
            col("a") + "text"


class TestAggregates:
    def test_count(self):
        slots = np.array([0, 1, 0, 0])
        out = compute_aggregate(count_star(), slots, 2, None)
        assert list(out) == [3, 1]

    def test_sum_int(self):
        slots = np.array([0, 1, 0])
        values = np.array([5, 7, 2])
        out = compute_aggregate(sum_of("v"), slots, 2, values)
        assert list(out) == [7, 7]
        assert out.dtype == np.int64

    def test_sum_float(self):
        out = compute_aggregate(
            sum_of("v"), np.array([0, 0]), 1, np.array([0.5, 0.75])
        )
        assert out.tolist() == [1.25]

    def test_min_max(self):
        slots = np.array([0, 1, 0, 1])
        values = np.array([9, 2, 3, 8])
        assert list(compute_aggregate(min_of("v"), slots, 2, values)) == [3, 2]
        assert list(compute_aggregate(max_of("v"), slots, 2, values)) == [9, 8]

    def test_avg(self):
        slots = np.array([0, 0, 1])
        values = np.array([1, 2, 9])
        out = compute_aggregate(avg_of("v"), slots, 2, values)
        assert out.tolist() == [1.5, 9.0]

    def test_missing_values_rejected(self):
        with pytest.raises(ExecutionError):
            compute_aggregate(sum_of("v"), np.array([0]), 1, None)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            compute_aggregate(
                sum_of("v"), np.array([0, 0]), 1, np.array([1])
            )

    def test_spec_validation(self):
        with pytest.raises(ExecutionError):
            AggregateSpec(AggregateFunction.SUM, None, "s")

    def test_default_aliases(self):
        assert sum_of("R.A").alias == "sum_R.A"
        assert count_star().alias == "count"
        assert avg_of("x", "m").alias == "m"
