"""The perf regression gate: artifact diffing, thresholds, exit codes."""

import json

import pytest

from repro.bench.compare import (
    compare_artifacts,
    compare_files,
    load_artifact,
    main,
    timing_seconds,
)
from repro.bench.reporting import make_artifact, write_json_artifact


def artifact(timings, metrics=None, name="run"):
    return make_artifact(name, timings, metrics=metrics)


class TestTimingSeconds:
    def test_prefers_best(self):
        assert timing_seconds({"best_s": 1.0, "mean_s": 2.0}) == 1.0

    def test_scalar_and_seconds_forms(self):
        assert timing_seconds(0.25) == 0.25
        assert timing_seconds({"seconds": 0.5}) == 0.5

    def test_unrecognisable_is_none(self):
        assert timing_seconds({"note": "n/a"}) is None
        assert timing_seconds("fast") is None


class TestCompareArtifacts:
    def test_self_diff_is_clean(self):
        record = artifact({"a": 0.10, "b": 0.25})
        report = compare_artifacts(record, record)
        assert report.ok
        assert report.exit_code == 0
        assert all(t.status == "ok" for t in report.timings)

    def test_injected_2x_regression_fails(self):
        baseline = artifact({"a": 0.10, "b": 0.25})
        current = artifact({"a": 0.10, "b": 0.50})
        report = compare_artifacts(baseline, current, threshold=0.15)
        assert not report.ok
        assert report.exit_code == 1
        (regression,) = report.regressions
        assert regression.label == "b"
        assert regression.delta == pytest.approx(1.0)
        assert "REGRESSION" in report.render()

    def test_threshold_boundary_is_not_a_regression(self):
        baseline = artifact({"a": 1.0})
        exactly = artifact({"a": 1.15})
        just_over = artifact({"a": 1.15 + 1e-9})
        assert compare_artifacts(baseline, exactly, threshold=0.15).ok
        assert not compare_artifacts(
            baseline, just_over, threshold=0.15
        ).ok

    def test_improvement_is_not_a_regression(self):
        report = compare_artifacts(
            artifact({"a": 1.0}), artifact({"a": 0.5})
        )
        assert report.ok
        assert report.timings[0].status == "improvement"

    def test_missing_in_current_gates(self):
        report = compare_artifacts(
            artifact({"a": 1.0, "b": 1.0}), artifact({"a": 1.0})
        )
        assert not report.ok
        assert report.regressions[0].status == "missing-current"

    def test_missing_in_baseline_is_informational(self):
        report = compare_artifacts(
            artifact({"a": 1.0}), artifact({"a": 1.0, "new": 9.9})
        )
        assert report.ok
        statuses = {t.label: t.status for t in report.timings}
        assert statuses["new"] == "missing-baseline"

    def test_zero_baseline_never_gates(self):
        report = compare_artifacts(
            artifact({"a": 0.0}), artifact({"a": 123.0})
        )
        assert report.ok
        assert report.timings[0].status == "zero-baseline"
        assert report.timings[0].delta is None

    def test_negative_threshold_rejected(self):
        record = artifact({"a": 1.0})
        with pytest.raises(ValueError):
            compare_artifacts(record, record, threshold=-0.1)

    def test_metric_deltas_are_informational(self):
        baseline = artifact(
            {"a": 1.0}, metrics={"optimizer.candidates_generated": 100}
        )
        current = artifact(
            {"a": 1.0}, metrics={"optimizer.candidates_generated": 250}
        )
        report = compare_artifacts(baseline, current)
        assert report.ok  # metrics never gate
        (delta,) = report.metrics
        assert delta.name == "optimizer.candidates_generated"
        assert delta.delta == pytest.approx(1.5)
        assert "optimizer.candidates_generated" in report.render()

    def test_histogram_metrics_flattened(self):
        snapshot = {
            "h": {"count": 4, "sum": 2.0, "p50": 0.4, "buckets": {"+Inf": 4}}
        }
        report = compare_artifacts(
            artifact({"a": 1.0}, metrics=snapshot),
            artifact({"a": 1.0}, metrics=snapshot),
        )
        names = {m.name for m in report.metrics}
        assert {"h.count", "h.sum", "h.p50"} <= names


class TestFilesAndCli:
    @pytest.fixture
    def paths(self, tmp_path):
        baseline = write_json_artifact(
            tmp_path / "baseline.json", "base", {"a": 0.10, "b": 0.20}
        )
        regressed = write_json_artifact(
            tmp_path / "regressed.json", "cur", {"a": 0.10, "b": 0.40}
        )
        return baseline, regressed

    def test_compare_files(self, paths):
        baseline, regressed = paths
        assert compare_files(baseline, baseline).exit_code == 0
        assert compare_files(baseline, regressed).exit_code == 1

    def test_load_artifact_rejects_non_artifacts(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_artifact(bogus)

    def test_cli_self_diff_exits_zero(self, paths, capsys):
        baseline, __ = paths
        assert main([str(baseline)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_cli_regression_exits_one(self, paths, capsys):
        baseline, regressed = paths
        assert main([str(baseline), str(regressed)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_threshold_flag(self, paths):
        baseline, regressed = paths
        # 2x slower passes a 120% budget.
        assert main([str(baseline), str(regressed), "--threshold", "1.2"]) == 0

    def test_cli_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_committed_baseline_self_diff(self, capsys):
        """The committed seed artifact must satisfy the gate's smoke check."""
        from pathlib import Path

        baseline = Path(__file__).resolve().parents[2] / "BENCH_baseline.json"
        assert baseline.exists(), "BENCH_baseline.json must stay committed"
        assert main([str(baseline)]) == 0


class TestNearZeroBaselines:
    """Satellite guard: clock-noise baselines must not produce nonsense
    percentages or exceptions — only "∞" at render time."""

    def test_near_zero_baseline_is_zero_baseline(self):
        report = compare_artifacts(
            artifact({"a": 1e-12}), artifact({"a": 0.5})
        )
        assert report.ok
        assert report.timings[0].status == "zero-baseline"
        assert report.timings[0].delta is None

    def test_render_shows_infinity_for_grown_zero_baseline(self):
        report = compare_artifacts(
            artifact({"a": 0.0}), artifact({"a": 0.5})
        )
        assert "∞" in report.render()

    def test_render_no_infinity_when_both_sides_zero(self):
        report = compare_artifacts(
            artifact({"a": 0.0}), artifact({"a": 0.0})
        )
        assert "∞" not in report.render()
        assert report.ok

    def test_near_zero_metric_baseline_renders_infinity(self):
        report = compare_artifacts(
            artifact({"a": 1.0}, metrics={"m": 0.0}),
            artifact({"a": 1.0}, metrics={"m": 7.0}),
        )
        (delta,) = report.metrics
        assert delta.delta == float("inf")
        assert "∞" in report.render()
        assert report.ok  # metrics never gate

    def test_unchanged_zero_metric_has_no_delta(self):
        report = compare_artifacts(
            artifact({"a": 1.0}, metrics={"m": 0.0}),
            artifact({"a": 1.0}, metrics={"m": 0.0}),
        )
        (delta,) = report.metrics
        assert delta.delta is None
