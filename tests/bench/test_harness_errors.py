"""Error paths and small helpers of the bench harness."""

import pytest

from repro.bench.figure4 import Figure4Result, PanelResult, render_crossover
from repro.bench.figure4 import CrossoverResult
from repro.bench.figure5 import Figure5Result, _plan_summary
from repro.core import optimize_dqo
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import GroupingAlgorithm
from repro.sql import plan_query


class TestFigure4Helpers:
    def test_panel_lookup_error(self):
        result = Figure4Result(rows=10)
        with pytest.raises(ValueError, match="no panel"):
            result.panel(Sortedness.SORTED, Density.DENSE)

    def test_fastest_at_error(self):
        panel = PanelResult(Sortedness.SORTED, Density.DENSE)
        panel.series[GroupingAlgorithm.HG] = [(10, 5.0)]
        assert panel.fastest_at(10) is GroupingAlgorithm.HG
        with pytest.raises(ValueError, match="no measurement"):
            panel.fastest_at(99)

    def test_crossover_render_without_crossover(self):
        result = CrossoverResult(points=[(2, 1.0, 2.0)], crossover_groups=0)
        assert "never beat" in render_crossover(result)


class TestFigure5Helpers:
    def test_cell_lookup_error(self):
        result = Figure5Result()
        with pytest.raises(ValueError, match="no cell"):
            result.cell(Sortedness.SORTED, Sortedness.SORTED, Density.DENSE)

    def test_plan_summary_shape(self, paper_query):
        catalog = make_join_scenario(
            n_r=300, n_s=700, num_groups=30
        ).build_catalog()
        plan = optimize_dqo(plan_query(paper_query, catalog), catalog).plan
        summary = _plan_summary(plan)
        assert "(" in summary and ")" in summary  # GROUPING(JOIN) shape
