"""The bench harness: Figure 4/5 shapes and Table 1/2 rendering.

These run the real harness at reduced scale; the shape assertions encode
the paper's qualitative claims (EXPERIMENTS.md records the full-scale
numbers).
"""

import pytest

from repro.bench import (
    PAPER_FACTORS,
    render_crossover,
    render_figure4,
    render_figure5,
    render_table2,
    run_crossover,
    run_figure4,
    run_figure5,
)
from repro.bench.figure4 import applicable_algorithms
from repro.bench.table1 import render_lattice_sizes
from repro.datagen import Density, Sortedness
from repro.engine import GroupingAlgorithm


@pytest.fixture(scope="module")
def figure4():
    return run_figure4(rows=120_000, group_counts=(50, 2_000, 20_000), repeats=2)


class TestFigure4:
    def test_panel_coverage(self, figure4):
        assert len(figure4.panels) == 4
        for panel in figure4.panels:
            expected = applicable_algorithms(panel.sortedness, panel.density)
            assert set(panel.series) == set(expected)

    def test_sphg_absent_on_sparse_og_absent_on_unsorted(self):
        sparse = applicable_algorithms(Sortedness.UNSORTED, Density.SPARSE)
        assert GroupingAlgorithm.SPHG not in sparse
        assert GroupingAlgorithm.OG not in sparse
        sorted_dense = applicable_algorithms(Sortedness.SORTED, Density.DENSE)
        assert set(sorted_dense) == set(GroupingAlgorithm)

    def test_shape_sorted_panels_og_beats_hg(self, figure4):
        """Paper: on sorted data OG is the fastest, several times faster
        than HG, at every group count."""
        for density in Density:
            panel = figure4.panel(Sortedness.SORTED, density)
            for (g, og_ms), (g2, hg_ms) in zip(
                panel.series[GroupingAlgorithm.OG],
                panel.series[GroupingAlgorithm.HG],
            ):
                assert g == g2
                assert og_ms < hg_ms

    def test_shape_unsorted_dense_sphg_wins(self, figure4):
        """Paper: unsorted & dense — SPHG is the best performer and
        roughly flat in the group count."""
        panel = figure4.panel(Sortedness.UNSORTED, Density.DENSE)
        sphg = dict(panel.series[GroupingAlgorithm.SPHG])
        for algorithm, points in panel.series.items():
            if algorithm is GroupingAlgorithm.SPHG:
                continue
            for g, ms in points:
                assert sphg[g] < ms, (algorithm, g)

    def test_shape_unsorted_sparse_hg_wins_at_scale(self, figure4):
        """Paper: unsorted & sparse — HG is superior over a wide range of
        group counts (here: the largest measured). A 15% noise margin
        keeps the assertion about the shape, not about scheduler jitter."""
        panel = figure4.panel(Sortedness.UNSORTED, Density.SPARSE)
        largest = max(g for g, __ in panel.series[GroupingAlgorithm.HG])
        hg_ms = dict(panel.series[GroupingAlgorithm.HG])[largest]
        best_other = min(
            dict(points)[largest]
            for algorithm, points in panel.series.items()
            if algorithm is not GroupingAlgorithm.HG
        )
        assert hg_ms < best_other * 1.15

    def test_shape_bsg_grows_with_groups(self, figure4):
        panel = figure4.panel(Sortedness.UNSORTED, Density.SPARSE)
        points = panel.series[GroupingAlgorithm.BSG]
        assert points[-1][1] > points[0][1]

    def test_render(self, figure4):
        text = render_figure4(figure4)
        assert "unsorted & sparse" in text
        assert "#groups" in text


class TestCrossover:
    def test_bsg_beats_hg_at_small_group_counts(self):
        """Paper's zoom-in: BSG outperforms HG below a small crossover
        (14 groups on their hardware; we assert existence, not the
        precise value — DESIGN.md substitution #1)."""
        result = run_crossover(
            rows=150_000, group_counts=(2, 4, 8, 14), repeats=2
        )
        assert result.crossover_groups >= 2
        text = render_crossover(result)
        assert "BSG" in text


class TestFigure5Bench:
    def test_grid_matches_paper_exactly(self, memory_storage):
        result = run_figure5()
        for cell in result.cells:
            sparse_factor, dense_factor = PAPER_FACTORS[
                (cell.r_sortedness, cell.s_sortedness)
            ]
            expected = (
                dense_factor if cell.density is Density.DENSE else sparse_factor
            )
            assert cell.factor == pytest.approx(expected, rel=1e-6)

    def test_execution_speedup_direction(self):
        """Executed plans: DQO's choice must actually run faster where the
        paper predicts a 4x estimated-cost gap."""
        result = run_figure5(
            n_r=20_000, n_s=40_000, num_groups=8_000, execute_plans=True
        )
        cell = result.cell(
            Sortedness.UNSORTED, Sortedness.UNSORTED, Density.DENSE
        )
        assert cell.measured_speedup is not None
        assert cell.measured_speedup > 1.0

    def test_render(self):
        result = run_figure5(n_r=500, n_s=1_000, num_groups=100)
        text = render_figure5(result)
        assert "factor" in text and "paper" in text


class TestTables:
    def test_table2_renders_both_halves(self):
        text = render_table2()
        assert "4 * |R|" in text
        assert "SPHJ" in text
        assert "360,000" in text  # HG at 90,000 rows

    def test_table1_lattice_sizes(self):
        text = render_lattice_sizes()
        assert "ORGANELLE" in text and "MOLECULE" in text
