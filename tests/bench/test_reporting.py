"""The ASCII reporting utilities used by the harness."""

from repro.bench.reporting import Series, render_ascii_chart, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestAsciiChart:
    def test_series_glyphs_and_legend(self):
        chart = render_ascii_chart(
            [
                Series("alpha", [(0, 0), (10, 10)]),
                Series("beta", [(0, 10), (10, 0)]),
            ],
            title="crossing",
        )
        assert "crossing" in chart
        assert "o = alpha" in chart
        assert "x = beta" in chart
        assert "o" in chart and "x" in chart

    def test_no_data(self):
        assert "(no data)" in render_ascii_chart([], title="t")
        assert "(no data)" in render_ascii_chart([Series("e", [])])

    def test_single_point(self):
        chart = render_ascii_chart([Series("p", [(5, 5)])])
        assert "o = p" in chart

    def test_axis_labels(self):
        chart = render_ascii_chart(
            [Series("s", [(0, 0), (100, 50)])],
            x_label="#groups",
            y_label="ms",
        )
        assert "#groups" in chart
        assert "ms" in chart
        assert "100" in chart  # x-axis maximum

    def test_constant_series_no_division_by_zero(self):
        chart = render_ascii_chart([Series("flat", [(0, 7), (10, 7)])])
        assert "flat" in chart
