"""The ASCII reporting utilities and JSON artifacts of the harness."""

import json

import pytest

from repro._util.timer import TimingResult
from repro.bench.reporting import (
    Series,
    make_artifact,
    render_ascii_chart,
    render_table,
    write_json_artifact,
)
from repro.obs import MetricsRegistry


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(
            ["name", "value"], [["a", "1"], ["long-name", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_ragged_row_raises_clear_error(self):
        with pytest.raises(ValueError, match=r"row 1 has 3 cell\(s\)"):
            render_table(["a", "b"], [["1", "2"], ["1", "2", "3"]])

    def test_short_row_raises_too(self):
        with pytest.raises(ValueError, match="row 0 has 1"):
            render_table(["a", "b"], [["only"]])


class TestAsciiChart:
    def test_series_glyphs_and_legend(self):
        chart = render_ascii_chart(
            [
                Series("alpha", [(0, 0), (10, 10)]),
                Series("beta", [(0, 10), (10, 0)]),
            ],
            title="crossing",
        )
        assert "crossing" in chart
        assert "o = alpha" in chart
        assert "x = beta" in chart
        assert "o" in chart and "x" in chart

    def test_no_data(self):
        assert "(no data)" in render_ascii_chart([], title="t")
        assert "(no data)" in render_ascii_chart([Series("e", [])])

    def test_single_point(self):
        chart = render_ascii_chart([Series("p", [(5, 5)])])
        assert "o = p" in chart

    def test_axis_labels(self):
        chart = render_ascii_chart(
            [Series("s", [(0, 0), (100, 50)])],
            x_label="#groups",
            y_label="ms",
        )
        assert "#groups" in chart
        assert "ms" in chart
        assert "100" in chart  # x-axis maximum

    def test_constant_series_no_division_by_zero(self):
        chart = render_ascii_chart([Series("flat", [(0, 7), (10, 7)])])
        assert "flat" in chart


class TestJsonArtifacts:
    def test_make_artifact_shapes_timings(self):
        timing = TimingResult(samples=[0.2, 0.1, 0.3])
        artifact = make_artifact(
            "demo", {"run": timing, "scalar": 0.5}, meta={"rows": 10}
        )
        run = artifact["timings"]["run"]
        assert run["best_s"] == 0.1
        assert run["median_s"] == 0.2
        assert run["p95_s"] == 0.3
        assert artifact["timings"]["scalar"] == {"seconds": 0.5}
        assert artifact["meta"] == {"rows": 10}
        assert "python" in artifact["environment"]

    def test_metrics_registry_embeds_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        artifact = make_artifact("demo", {}, metrics=registry)
        assert artifact["metrics"] == {"c": 7}

    def test_write_json_artifact_round_trip(self, tmp_path):
        path = write_json_artifact(
            tmp_path / "sub" / "run.json",
            "bench/x",
            {"total": TimingResult(samples=[1.0])},
            metrics={"plans": 3},
            meta={"seed": 0},
        )
        record = json.loads(path.read_text())
        assert record["name"] == "bench/x"
        assert record["metrics"] == {"plans": 3}
        assert record["timings"]["total"]["best_s"] == 1.0
