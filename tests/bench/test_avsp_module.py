"""The AVSP experiment runner module."""

from repro.bench.avsp import run_budget_sweep, run_property_mix_sweep
from repro.datagen import make_workload


class TestBudgetSweep:
    def test_rows_and_monotonicity(self):
        workload = make_workload(num_tables=3, num_queries=15, seed=2)
        rows = run_budget_sweep(workload, [0.0, 100_000.0, 10_000_000.0])
        assert len(rows) == 3
        benefits = [float(row[3].replace(",", "")) for row in rows]
        assert benefits == sorted(benefits)
        assert benefits[0] == 0.0


class TestPropertyMixSweep:
    def test_mix_changes_selection(self):
        rows = run_property_mix_sweep(
            num_tables=3, num_queries=20, budget=10_000_000.0, seed=1
        )
        assert len(rows) == 4
        # An all-sorted workload should want fewer/cheaper views than an
        # all-unsorted one.
        all_unsorted = float(rows[0][2].replace(",", ""))
        all_sorted = float(rows[2][2].replace(",", ""))
        assert all_unsorted > all_sorted
