"""Static perfect hashing and the sorted-key index."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IndexError_, PreconditionError
from repro.indexes import SortedKeyIndex, StaticPerfectHash


class TestStaticPerfectHash:
    def test_minimal_on_dense_domain(self):
        sph = StaticPerfectHash(10, 19, num_distinct=10)
        assert sph.num_slots == 10
        assert sph.is_minimal
        assert sph.slot(10) == 0
        assert sph.slot(19) == 9
        assert sph.key_of_slot(9) == 19

    def test_vectorised_slots(self):
        sph = StaticPerfectHash(0, 4, num_distinct=5)
        keys = np.array([4, 0, 2])
        assert list(sph.slot(keys)) == [4, 0, 2]
        assert list(sph.key_of_slot(np.array([1, 3]))) == [1, 3]

    def test_sparse_domain_rejected(self):
        # density 10/1001 — the paper's applicability precondition.
        with pytest.raises(PreconditionError, match="dense"):
            StaticPerfectHash(0, 1000, num_distinct=10)

    def test_density_threshold_configurable(self):
        StaticPerfectHash(0, 1000, num_distinct=10, min_density=0.001)

    def test_relatively_dense_accepted(self):
        # "(relatively) dense": half-full passes the default 0.5 guard.
        StaticPerfectHash(0, 19, num_distinct=10)

    def test_for_keys(self):
        sph = StaticPerfectHash.for_keys(np.array([5, 6, 7, 7]))
        assert sph.min_key == 5
        assert sph.is_minimal

    def test_for_keys_empty(self):
        with pytest.raises(PreconditionError):
            StaticPerfectHash.for_keys(np.empty(0, dtype=np.int64))

    def test_slot_checked_bounds(self):
        sph = StaticPerfectHash(0, 9, num_distinct=10)
        with pytest.raises(PreconditionError):
            sph.slot_checked(np.array([10]))

    def test_empty_domain_rejected(self):
        with pytest.raises(PreconditionError):
            StaticPerfectHash(5, 4)

    def test_distinct_exceeding_domain_rejected(self):
        with pytest.raises(PreconditionError):
            StaticPerfectHash(0, 4, num_distinct=6)


class TestSortedKeyIndex:
    def test_lookup_hits_and_misses(self):
        index = SortedKeyIndex(np.array([10, 20, 30]))
        assert list(index.lookup(np.array([20, 25, 10, 31]))) == [1, -1, 0, -1]

    def test_lookup_existing_raises_on_miss(self):
        index = SortedKeyIndex(np.array([1, 2]))
        with pytest.raises(IndexError_, match="not in index"):
            index.lookup_existing(np.array([3]))

    def test_from_values_dedups(self):
        index = SortedKeyIndex.from_values(np.array([3, 1, 3, 2, 1]))
        assert list(index.keys()) == [1, 2, 3]
        assert index.num_keys == 3

    def test_requires_strictly_increasing(self):
        with pytest.raises(PreconditionError):
            SortedKeyIndex(np.array([1, 1, 2]))
        with pytest.raises(PreconditionError):
            SortedKeyIndex(np.array([2, 1]))

    def test_range_slots(self):
        index = SortedKeyIndex(np.array([10, 20, 30, 40]))
        assert index.range_slots(15, 35) == (1, 3)
        assert index.range_slots(10, 40) == (0, 4)
        assert index.range_slots(41, 99) == (4, 4)

    @given(st.sets(st.integers(-10**6, 10**6), min_size=1, max_size=200))
    def test_every_key_found_at_its_rank(self, key_set):
        keys = np.array(sorted(key_set), dtype=np.int64)
        index = SortedKeyIndex(keys)
        slots = index.lookup(keys)
        assert np.array_equal(slots, np.arange(keys.size))
