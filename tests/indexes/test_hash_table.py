"""Hash tables: chained (textbook) and vectorised open addressing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.indexes import (
    ChainedHashTable,
    OpenAddressingHashTable,
    identity_hash,
    murmur3_finalizer,
)


class TestMurmur3:
    def test_scalar_and_vector_agree(self):
        keys = np.array([0, 1, 2, 10**12], dtype=np.int64)
        vectorised = murmur3_finalizer(keys)
        for key, hashed in zip(keys.tolist(), vectorised.tolist()):
            assert murmur3_finalizer(key) == hashed

    def test_bijective_on_sample(self):
        keys = np.arange(10_000, dtype=np.int64)
        hashed = murmur3_finalizer(keys)
        assert np.unique(hashed).size == keys.size

    def test_spreads_dense_keys(self):
        # Consecutive keys land in very different buckets.
        hashed = np.asarray(murmur3_finalizer(np.arange(100, dtype=np.int64)))
        low_bits = hashed & np.uint64(1023)
        assert np.unique(low_bits).size > 90

    def test_identity_hash(self):
        assert identity_hash(42) == 42
        assert np.array_equal(
            np.asarray(identity_hash(np.array([1, 2]))), np.array([1, 2])
        )


class TestChainedHashTable:
    def test_insert_probe(self):
        table = ChainedHashTable()
        table.insert(1, "a")
        table.insert(2, "b")
        assert table.probe(1) == "a"
        assert table.get(3) is None
        assert 2 in table
        assert len(table) == 2

    def test_overwrite(self):
        table = ChainedHashTable()
        table.insert(1, "a")
        table.insert(1, "b")
        assert table.probe(1) == "b"
        assert len(table) == 1

    def test_probe_missing_raises(self):
        with pytest.raises(KeyError):
            ChainedHashTable().probe(5)

    def test_growth(self):
        table = ChainedHashTable(initial_buckets=2)
        for key in range(100):
            table.insert(key, key * 2)
        assert len(table) == 100
        assert table.load_factor <= 1.0
        assert all(table.probe(k) == k * 2 for k in range(100))

    def test_key_set_is_hash_order_not_insertion_order(self):
        # §2.1: the iteration order is a hash-table artefact. We only
        # check it contains exactly the keys.
        table = ChainedHashTable()
        for key in [5, 3, 9, 1]:
            table.insert(key, key)
        assert sorted(table.key_set()) == [1, 3, 5, 9]

    def test_unknown_hash_function(self):
        with pytest.raises(IndexError_):
            ChainedHashTable(hash_name="nope")


class TestOpenAddressing:
    def test_build_and_probe(self, rng):
        keys = rng.integers(0, 100, 1_000)
        table = OpenAddressingHashTable(capacity_hint=100)
        slots = table.build(keys)
        assert table.num_keys == np.unique(keys).size
        assert np.array_equal(table.slot_keys()[slots], keys)
        assert np.array_equal(table.probe(keys), slots)

    def test_probe_missing_returns_minus_one(self):
        table = OpenAddressingHashTable(capacity_hint=4)
        table.build(np.array([1, 2, 3]))
        assert list(table.probe(np.array([1, 99]))) == [0, -1]

    def test_overflow_detected(self):
        table = OpenAddressingHashTable(capacity_hint=4)
        with pytest.raises(IndexError_, match="overflow"):
            table.build(np.arange(100))

    def test_incremental_builds(self):
        table = OpenAddressingHashTable(capacity_hint=10)
        first = table.build(np.array([1, 2]))
        second = table.build(np.array([2, 3]))
        assert list(first) == [0, 1]
        assert list(second) == [1, 2]
        assert table.num_keys == 3

    def test_identity_hash_on_clustered_keys(self):
        # Identity hashing must still be correct (just slower via probing).
        table = OpenAddressingHashTable(capacity_hint=64, hash_name="identity")
        keys = np.arange(50)
        slots = table.build(keys)
        assert np.array_equal(table.slot_keys()[slots], keys)

    def test_num_buckets_power_of_two(self):
        table = OpenAddressingHashTable(capacity_hint=100, max_load=0.5)
        assert table.num_buckets & (table.num_buckets - 1) == 0
        assert table.num_buckets >= 200

    def test_invalid_parameters(self):
        with pytest.raises(IndexError_):
            OpenAddressingHashTable(capacity_hint=0)
        with pytest.raises(IndexError_):
            OpenAddressingHashTable(capacity_hint=1, max_load=1.5)
        with pytest.raises(IndexError_):
            OpenAddressingHashTable(capacity_hint=1, hash_name="nope")


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.integers(min_value=-(2**31), max_value=2**31), min_size=1, max_size=300
    )
)
def test_open_addressing_matches_dict(keys):
    """Property: slot assignment groups keys exactly like a Python dict."""
    array = np.array(keys, dtype=np.int64)
    table = OpenAddressingHashTable(capacity_hint=len(set(keys)))
    slots = table.build(array)
    # Same key -> same slot; different keys -> different slots.
    seen: dict[int, int] = {}
    for key, slot in zip(keys, slots.tolist()):
        if key in seen:
            assert seen[key] == slot
        else:
            assert slot not in seen.values()
            seen[key] = slot
    assert table.num_keys == len(seen)
