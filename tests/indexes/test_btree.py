"""B+-tree: lookups, ranges, bulkloading, structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.indexes import BPlusTree


class TestInsertAndGet:
    def test_basic(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3]:
            tree.insert(key, key * 10)
        assert tree.get(9) == 90
        assert tree.get(2) is None
        assert tree.get(2, default="x") == "x"
        assert 3 in tree and 4 not in tree
        assert len(tree) == 4

    def test_overwrite_keeps_size(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_many_inserts_grow_height(self, rng):
        tree = BPlusTree(order=4)
        keys = rng.permutation(1_000)
        for key in keys:
            tree.insert(int(key), int(key))
        assert tree.height > 1
        tree.check_invariants()
        assert all(tree.get(int(k)) == int(k) for k in keys[:100])

    def test_invalid_order(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)


class TestRangeScan:
    def test_range_inclusive(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):
            tree.insert(key, key)
        assert [k for k, __ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_range_empty(self):
        tree = BPlusTree()
        tree.insert(5, "x")
        assert list(tree.range(6, 10)) == []

    def test_items_sorted(self, rng):
        tree = BPlusTree(order=5)
        keys = rng.permutation(300)
        for key in keys:
            tree.insert(int(key), None)
        assert [k for k, __ in tree.items()] == list(range(300))


class TestBulkload:
    def test_bulkload_matches_inserts(self):
        keys = np.arange(0, 1_000, 3)
        tree = BPlusTree(order=8)
        tree.bulkload(keys, keys * 2)
        tree.check_invariants()
        assert len(tree) == keys.size
        assert tree.get(999) == 1998
        assert tree.get(1) is None

    def test_bulkload_requires_empty(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        with pytest.raises(IndexError_, match="empty"):
            tree.bulkload(np.array([2, 3]), [2, 3])

    def test_bulkload_requires_sorted_unique(self):
        with pytest.raises(IndexError_):
            BPlusTree().bulkload(np.array([2, 1]), [0, 0])
        with pytest.raises(IndexError_):
            BPlusTree().bulkload(np.array([1, 1]), [0, 0])

    def test_bulkload_empty_is_noop(self):
        tree = BPlusTree()
        tree.bulkload(np.empty(0, dtype=np.int64), [])
        assert len(tree) == 0

    def test_bulkload_then_insert(self):
        tree = BPlusTree(order=4)
        tree.bulkload(np.arange(0, 50, 2), list(range(0, 50, 2)))
        tree.insert(7, 7)
        tree.check_invariants()
        assert tree.get(7) == 7
        assert len(tree) == 26


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(-10**6, 10**6), max_size=300), st.integers(3, 16))
def test_btree_equals_sorted_dict(key_set, order):
    """Property: after arbitrary inserts the tree is a sorted map and all
    structural invariants hold."""
    tree = BPlusTree(order=order)
    for key in key_set:
        tree.insert(key, key + 1)
    tree.check_invariants()
    assert [k for k, __ in tree.items()] == sorted(key_set)
    for key in list(key_set)[:50]:
        assert tree.get(key) == key + 1
