"""Adaptive cracking: query correctness, invariants, convergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import CrackedColumn


class TestRangeQueries:
    def test_exact_results(self, rng):
        values = rng.integers(0, 1_000, 5_000)
        cracked = CrackedColumn(values)
        result = cracked.range_query(100, 300)
        expected = values[(values >= 100) & (values <= 300)]
        assert sorted(result.tolist()) == sorted(expected.tolist())

    def test_source_not_mutated(self):
        values = np.array([5, 1, 9, 3])
        cracked = CrackedColumn(values)
        cracked.range_query(2, 6)
        assert list(values) == [5, 1, 9, 3]

    def test_empty_range(self):
        cracked = CrackedColumn(np.array([1, 2, 3]))
        assert cracked.range_query(5, 4).size == 0

    def test_repeat_query_does_not_recrack(self):
        cracked = CrackedColumn(np.arange(100)[::-1].copy())
        cracked.range_query(10, 20)
        count = cracked.crack_count
        cracked.range_query(10, 20)
        assert cracked.crack_count == count

    def test_pieces_grow_with_distinct_queries(self, rng):
        cracked = CrackedColumn(rng.integers(0, 10_000, 2_000))
        for low in range(0, 5_000, 500):
            cracked.range_query(low, low + 100)
        assert cracked.num_pieces > 10
        cracked.check_invariants()


class TestConvergence:
    def test_sortedness_improves_under_workload(self, rng):
        cracked = CrackedColumn(rng.permutation(5_000))
        before = cracked.sortedness_fraction()
        checkpoints = []
        for query in range(2_000):
            low = int(rng.integers(0, 4_900))
            cracked.range_query(low, low + int(rng.integers(1, 100)))
            if query in (199, 999, 1_999):
                checkpoints.append(cracked.sortedness_fraction())
        # Convergence measure trends upward across checkpoints (stable
        # partitioning allows tiny local dips) and improves substantially
        # overall (0.50 -> ~0.77 in this workload).
        assert all(
            later >= earlier - 0.02
            for earlier, later in zip(checkpoints, checkpoints[1:])
        )
        assert checkpoints[-1] > before + 0.2
        cracked.check_invariants()

    def test_fully_cracked_is_sorted(self):
        values = np.random.default_rng(0).permutation(200)
        cracked = CrackedColumn(values)
        for pivot in range(201):
            cracked.range_query(pivot, pivot)
        assert cracked.is_fully_sorted()
        assert cracked.sortedness_fraction() == 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=200),
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)),
        min_size=1,
        max_size=20,
    ),
)
def test_cracking_always_correct_and_invariant(values, queries):
    """Property: any query sequence returns exact range contents and
    preserves the cracker-index invariant."""
    array = np.array(values, dtype=np.int64)
    cracked = CrackedColumn(array)
    for low, high in queries:
        low, high = min(low, high), max(low, high)
        result = cracked.range_query(low, high)
        expected = [v for v in values if low <= v <= high]
        assert sorted(result.tolist()) == sorted(expected)
        cracked.check_invariants()
    # The multiset of values never changes.
    assert sorted(cracked.values().tolist()) == sorted(values)
