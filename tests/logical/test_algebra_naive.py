"""Logical algebra nodes, validation, and the naive evaluator."""

import numpy as np
import pytest

from repro.engine import col, count_star, sum_of
from repro.errors import PlanError
from repro.logical import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalProject,
    LogicalScan,
    evaluate_naive,
    validate_plan,
)
from repro.storage import Catalog, Table


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        "R",
        Table.from_arrays(
            {"ID": np.arange(6), "A": np.array([0, 0, 1, 1, 2, 2])}
        ),
    )
    cat.register(
        "S",
        Table.from_arrays({"R_ID": np.array([0, 0, 3, 5]), "B": np.arange(4)}),
    )
    return cat


class TestStructure:
    def test_scan_output_columns_qualified(self, catalog):
        assert LogicalScan("R").output_columns(catalog) == ["R.ID", "R.A"]
        assert LogicalScan("R", "X").output_columns(catalog) == ["X.ID", "X.A"]

    def test_join_output_columns(self, catalog):
        plan = LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "S.R_ID")
        assert plan.output_columns(catalog) == ["R.ID", "R.A", "S.R_ID", "S.B"]

    def test_join_overlap_rejected(self, catalog):
        plan = LogicalJoin(LogicalScan("R"), LogicalScan("R"), "R.ID", "R.ID")
        with pytest.raises(PlanError):
            plan.output_columns(catalog)

    def test_explain_and_walk(self, catalog):
        plan = LogicalGroupBy(
            LogicalFilter(LogicalScan("R"), col("R.A") > 0),
            "R.A",
            (count_star(),),
        )
        assert len(list(plan.walk())) == 3
        text = plan.explain()
        assert "GroupBy" in text and "Filter" in text and "Scan(R)" in text

    def test_validate_catches_unknown_columns(self, catalog):
        bad = LogicalFilter(LogicalScan("R"), col("R.Z") > 0)
        with pytest.raises(PlanError, match="unknown"):
            validate_plan(bad, catalog)
        bad_join = LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.Z", "S.R_ID")
        with pytest.raises(PlanError):
            validate_plan(bad_join, catalog)


class TestNaiveEvaluator:
    def test_scan(self, catalog):
        result = evaluate_naive(LogicalScan("R"), catalog)
        assert result.schema.names == ("R.ID", "R.A")
        assert result.num_rows == 6

    def test_filter_project(self, catalog):
        plan = LogicalProject(
            LogicalFilter(LogicalScan("R"), col("R.A") == 1),
            (("id2", col("R.ID") * 2),),
        )
        assert evaluate_naive(plan, catalog).to_rows() == [(4,), (6,)]

    def test_join(self, catalog):
        plan = LogicalJoin(LogicalScan("R"), LogicalScan("S"), "R.ID", "S.R_ID")
        result = evaluate_naive(plan, catalog)
        assert result.num_rows == 4  # rows 0,0,3,5 of S all match
        assert set(result["R.ID"].tolist()) == {0, 3, 5}

    def test_group_by(self, catalog):
        plan = LogicalGroupBy(
            LogicalScan("R"), "R.A", (count_star("c"), sum_of("R.ID", "s"))
        )
        result = evaluate_naive(plan, catalog)
        assert result.to_rows() == [(0, 2, 1), (1, 2, 5), (2, 2, 9)]

    def test_order_and_limit(self, catalog):
        plan = LogicalLimit(
            LogicalOrderBy(LogicalScan("R"), ("R.A",)), 2
        )
        result = evaluate_naive(plan, catalog)
        assert result.num_rows == 2
        assert list(result["R.A"]) == [0, 0]
