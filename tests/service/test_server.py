"""The JSON-lines TCP server: round-trips, typed errors, cancellation."""

import threading
import time

import pytest

from repro.errors import (
    AdmissionRejected,
    ParseError,
    PlanError,
    QueryCancelled,
    ServiceError,
)
from repro.service.admission import AdmissionConfig
from repro.service.server import QueryServer, ServiceClient
from repro.service.session import QueryService, ServiceConfig

PAPER_SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture
def server(join_catalog):
    srv = QueryServer(QueryService(join_catalog)).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


class TestRoundTrip:
    def test_ping(self, client):
        assert client.ping()

    def test_query_returns_rows(self, client):
        response = client.query(PAPER_SQL)
        assert response["ok"]
        assert response["row_count"] == 100
        assert len(response["rows"]) == 100
        assert len(response["columns"]) == 2
        assert not response["truncated"]
        assert sum(row[-1] for row in response["rows"]) == 2_500
        assert response["wall_seconds"] > 0

    def test_max_rows_truncates_payload_not_count(self, client):
        response = client.query(PAPER_SQL, max_rows=5)
        assert response["row_count"] == 100
        assert len(response["rows"]) == 5
        assert response["truncated"]

    def test_second_query_is_a_plan_cache_hit(self, client):
        assert not client.query(PAPER_SQL)["cached"]
        assert client.query(PAPER_SQL)["cached"]

    def test_malformed_json_is_a_typed_error(self, client):
        client._writer.write("this is not json\n")
        client._writer.flush()
        line = client._reader.readline()
        import json

        response = json.loads(line)
        assert not response["ok"]
        assert response["error"] == "ServiceError"
        assert "malformed request JSON" in response["message"]
        assert client.ping()  # connection survives


class TestTypedErrors:
    def test_parse_error_crosses_the_wire(self, client):
        with pytest.raises(ParseError, match="expected SELECT"):
            client.query("SELEC wat")

    def test_plan_error_crosses_the_wire(self, client):
        with pytest.raises(PlanError, match="unknown column"):
            client.query("SELECT R.NOPE FROM R GROUP BY R.NOPE")

    def test_unknown_op_is_a_service_error(self, client):
        response = client.request({"op": "frobnicate"})
        assert not response["ok"]
        assert response["error"] == "ServiceError"

    def test_empty_sql_rejected(self, client):
        with pytest.raises(ServiceError, match="non-empty 'sql'"):
            client.query("   ")

    def test_connection_survives_errors(self, client):
        for __ in range(3):
            with pytest.raises(ParseError):
                client.query("SELEC")
        assert client.query(PAPER_SQL)["row_count"] == 100


class TestAdmissionOverTheWire:
    def test_queue_full_carries_retry_after(self, join_catalog):
        service = QueryService(
            join_catalog,
            ServiceConfig(
                admission=AdmissionConfig(max_concurrency=1, max_queue_depth=0)
            ),
        )
        server = QueryServer(service).start()
        try:
            slot = service.admission.admit()  # soak the only slot
            with ServiceClient("127.0.0.1", server.port) as client:
                with pytest.raises(AdmissionRejected) as info:
                    client.query(PAPER_SQL)
                assert info.value.retry_after > 0
                slot.release()
                assert client.query(PAPER_SQL)["row_count"] == 100
        finally:
            server.shutdown()


class TestSessionScoping:
    def test_settings_are_per_connection(self, server):
        with ServiceClient("127.0.0.1", server.port) as one:
            with ServiceClient("127.0.0.1", server.port) as two:
                one.set("workers", 2)
                one.set("deadline", 5)
                assert two.stats()["settings"] == {}
                assert one.stats()["settings"] == {
                    "workers": 2,
                    "deadline": 5.0,
                }

    def test_stats_expose_session_and_service_views(self, client):
        client.query(PAPER_SQL)
        stats = client.stats()
        assert stats["session"]["queries"] == 1
        assert stats["session"]["rows_out"] == 100
        service = stats["service"]
        assert service["running"] == 0
        assert service["queue_depth"] == 0
        assert service["active_queries"] == []
        assert service["plan_cache"]["misses"] >= 1

    def test_unknown_setting_is_typed(self, client):
        with pytest.raises(ServiceError, match="unknown session setting"):
            client.set("nope", 1)


class TestCancelOverTheWire:
    def test_cancel_from_a_second_connection(self, big_catalog):
        service = QueryService(big_catalog)
        server = QueryServer(service).start()
        try:
            with ServiceClient("127.0.0.1", server.port) as runner:
                runner.query(PAPER_SQL)  # warm statistics + plan cache
                outcome: dict = {}

                def run():
                    try:
                        runner.query(PAPER_SQL, id="wire-cancel")
                    except QueryCancelled as error:
                        outcome["error"] = error

                thread = threading.Thread(target=run)
                thread.start()
                with ServiceClient("127.0.0.1", server.port) as killer:
                    deadline = time.monotonic() + 5.0
                    cancelled = False
                    while time.monotonic() < deadline and not cancelled:
                        cancelled = killer.cancel("wire-cancel")
                        if not cancelled:
                            time.sleep(0.002)
                assert cancelled
                thread.join(timeout=10.0)
                assert not thread.is_alive()
                assert isinstance(outcome.get("error"), QueryCancelled)
                assert service.admission.running == 0
        finally:
            server.shutdown()

    def test_cancel_unknown_id_reports_false(self, client):
        assert client.cancel("never-started") is False


class TestShutdown:
    def test_graceful_shutdown_is_bounded(self, join_catalog):
        server = QueryServer(QueryService(join_catalog)).start()
        client = ServiceClient("127.0.0.1", server.port)
        client.query(PAPER_SQL)
        started = time.monotonic()
        server.shutdown(timeout=5.0)
        assert time.monotonic() - started < 5.0
        with pytest.raises(ServiceError):
            client.query(PAPER_SQL)
        client.close()

    def test_port_requires_started_server(self, join_catalog):
        server = QueryServer(QueryService(join_catalog))
        with pytest.raises(ServiceError, match="not started"):
            server.port
