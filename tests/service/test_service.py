"""QueryService + Session: end-to-end SQL under governance."""

import json

import pytest

from repro.errors import (
    DeadlineExceeded,
    MemoryBudgetExceeded,
    PlanError,
    QueryCancelled,
    ServiceError,
)
from repro.obs import capture_observability, set_query_log
from repro.obs.querylog import QueryLog, main as querylog_main
from repro.service.admission import AdmissionConfig, Priority
from repro.service.context import CancellationToken
from repro.service.session import QueryService, ServiceConfig


class TestExecute:
    def test_runs_the_paper_query(self, service, paper_query):
        outcome = service.execute(paper_query)
        table = outcome.table
        assert table.num_rows == 100  # one row per group
        counts = table[table.schema.names[-1]]
        assert int(counts.sum()) == 2_500  # dense: every S row matches
        assert outcome.cost > 0
        assert outcome.wall_seconds >= outcome.execute_seconds
        assert "GroupBy" in outcome.plan

    def test_second_run_hits_the_plan_cache(self, service, paper_query):
        first = service.execute(paper_query)
        second = service.execute(paper_query)
        assert not first.cached
        assert second.cached
        info = service.plan_cache.info()
        assert info["hits"] >= 1 and info["misses"] >= 1

    def test_plan_errors_stay_typed_and_service_survives(
        self, service, paper_query
    ):
        with pytest.raises(PlanError, match="unknown column"):
            service.execute("SELECT R.NOPE FROM R GROUP BY R.NOPE")
        assert service.admission.running == 0
        assert service.execute(paper_query).table.num_rows == 100

    def test_expired_deadline_aborts_and_releases_slot(
        self, service, paper_query
    ):
        with pytest.raises(DeadlineExceeded):
            service.execute(paper_query, deadline=0.0)
        assert service.admission.running == 0
        assert service.active_queries() == []

    def test_pre_cancelled_token_aborts(self, service, paper_query):
        token = CancellationToken()
        token.cancel("never mind")
        with pytest.raises(QueryCancelled, match="never mind"):
            service.execute(paper_query, token=token)
        assert service.admission.running == 0

    def test_memory_budget_enforced(self, service, paper_query):
        with pytest.raises(MemoryBudgetExceeded):
            service.execute(paper_query, memory_budget_bytes=64)
        assert service.admission.running == 0

    def test_cancel_by_id_only_hits_active_queries(self, service):
        assert service.cancel("no-such-query") is False

    def test_shutdown_refuses_new_queries(self, join_catalog, paper_query):
        service = QueryService(join_catalog)
        service.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            service.execute(paper_query)

    def test_degraded_admission_runs_serial_shallow(
        self, join_catalog, paper_query
    ):
        service = QueryService(
            join_catalog,
            ServiceConfig(
                admission=AdmissionConfig(
                    max_concurrency=1, degrade_queue_depth=0
                )
            ),
        )
        try:
            # degrade_queue_depth=0 degrades every admission.
            outcome = service.execute(paper_query)
            assert outcome.degraded
            assert outcome.table.num_rows == 100
        finally:
            service.shutdown()


class TestObservability:
    def test_metrics_and_query_log_are_consistent(
        self, service, paper_query, tmp_path
    ):
        log_path = tmp_path / "log.jsonl"
        set_query_log(log_path)
        try:
            with capture_observability() as (metrics, __):
                service.execute(paper_query)
                with pytest.raises(PlanError):
                    service.execute("SELECT R.NOPE FROM R GROUP BY R.NOPE")
                snapshot = metrics.snapshot()
        finally:
            set_query_log(None)
        assert snapshot["service.admitted"] == 2
        assert snapshot["service.completed"] == 1
        assert snapshot["service.failed"] == 1
        assert snapshot["service.query_seconds"]["count"] == 1
        entries = [
            e for e in QueryLog(log_path).entries() if e["kind"] == "service"
        ]
        assert len(entries) == 2
        by_status = {e["status"]: e for e in entries}
        assert by_status["ok"]["rows_out"] == 100
        assert by_status["ok"]["priority"] == int(Priority.NORMAL)
        assert "PlanError" in by_status

    def test_querylog_summary_reports_plan_cache(
        self, service, paper_query, tmp_path, capsys
    ):
        """Satellite: ``querylog summary`` shows hit/miss/eviction counts
        and the hit rate for the service's shared plan cache."""
        log_path = tmp_path / "log.jsonl"
        set_query_log(log_path)
        try:
            for __ in range(4):
                service.execute(paper_query)
        finally:
            set_query_log(None)
        assert querylog_main(["--log", str(log_path), "summary"]) == 0
        out = capsys.readouterr().out
        assert "plan cache:" in out
        assert "lookups=4" in out
        assert "hits=3" in out
        assert "misses=1" in out
        assert "evictions=0" in out
        assert "hit rate=75.0%" in out

    def test_service_log_entries_are_plain_json(
        self, service, paper_query, tmp_path
    ):
        log_path = tmp_path / "log.jsonl"
        set_query_log(log_path)
        try:
            service.execute(paper_query)
        finally:
            set_query_log(None)
        for line in log_path.read_text().splitlines():
            json.loads(line)


class TestSession:
    def test_settings_are_scoped_per_session(self, service):
        one = service.session(workers=2)
        two = service.session()
        assert one.get("workers") == 2
        assert two.get("workers") is None
        two.set("deadline", 5)
        assert one.get("deadline") is None
        assert two.settings() == {"deadline": 5.0}
        assert one.session_id != two.session_id

    def test_settings_are_coerced(self, service):
        session = service.session()
        session.set("priority", 2)
        assert session.get("priority") is Priority.HIGH
        session.set("deadline", "1.5")
        assert session.get("deadline") == 1.5

    def test_unknown_setting_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown session setting"):
            service.session().set("nope", 1)

    def test_set_none_clears(self, service):
        session = service.session(workers=2)
        session.set("workers", None)
        assert session.settings() == {}

    def test_per_call_override_wins(self, service, paper_query):
        session = service.session(deadline=30.0)
        # Session deadline of 30s would pass; the call's 0.0 must win.
        with pytest.raises(DeadlineExceeded):
            session.execute(paper_query, deadline=0.0)

    def test_stats_track_outcomes(self, service, paper_query):
        session = service.session()
        session.execute(paper_query)
        with pytest.raises(PlanError):
            session.execute("SELECT R.NOPE FROM R GROUP BY R.NOPE")
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            session.execute(paper_query, token=token)
        stats = session.stats()
        assert stats["queries"] == 3
        assert stats["rows_out"] == 100
        assert stats["errors"] == 1
        assert stats["cancelled"] == 1
        assert stats["wall_seconds"] > 0
