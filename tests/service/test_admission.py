"""AdmissionController: ordering, shedding, degradation, queue polling."""

import threading
import time

import pytest

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    QueryCancelled,
    ServiceError,
)
from repro.obs import capture_observability
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    Priority,
)
from repro.service.context import QueryContext


def _wait_until(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestConfig:
    def test_rejects_nonpositive_concurrency(self):
        with pytest.raises(ServiceError, match="max_concurrency"):
            AdmissionConfig(max_concurrency=0)

    def test_rejects_negative_queue_depth(self):
        with pytest.raises(ServiceError, match="max_queue_depth"):
            AdmissionConfig(max_queue_depth=-1)


class TestFastPath:
    def test_admit_when_free_does_not_queue(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=2))
        slot = controller.admit()
        assert controller.running == 1
        assert controller.queue_depth == 0
        assert slot.queued_seconds == 0.0
        assert not slot.degraded
        slot.release()
        assert controller.running == 0

    def test_release_is_idempotent(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        slot = controller.admit()
        slot.release()
        slot.release()
        assert controller.running == 0
        controller.admit().release()  # slot count did not go negative

    def test_slot_is_a_context_manager(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        with controller.admit():
            assert controller.running == 1
        assert controller.running == 0


class TestPriorityOrdering:
    def test_high_admits_before_normal_before_low(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, degrade_queue_depth=None)
        )
        holder = controller.admit()
        admitted_order: list[Priority] = []
        order_lock = threading.Lock()

        def waiter(priority: Priority):
            slot = controller.admit(priority=priority)
            with order_lock:
                admitted_order.append(priority)
            slot.release()

        threads = []
        # Enqueue worst-first so priority (not FIFO) must do the work.
        for priority in (Priority.LOW, Priority.NORMAL, Priority.HIGH):
            thread = threading.Thread(target=waiter, args=(priority,))
            thread.start()
            threads.append(thread)
            depth = len(threads)
            assert _wait_until(lambda d=depth: controller.queue_depth == d)
        holder.release()
        for thread in threads:
            thread.join(timeout=5.0)
        assert admitted_order == [Priority.HIGH, Priority.NORMAL, Priority.LOW]

    def test_fifo_within_a_priority_class(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, degrade_queue_depth=None)
        )
        holder = controller.admit()
        admitted_order: list[int] = []
        order_lock = threading.Lock()

        def waiter(index: int):
            slot = controller.admit(priority=Priority.NORMAL)
            with order_lock:
                admitted_order.append(index)
            slot.release()

        threads = []
        for index in range(3):
            thread = threading.Thread(target=waiter, args=(index,))
            thread.start()
            threads.append(thread)
            depth = len(threads)
            assert _wait_until(lambda d=depth: controller.queue_depth == d)
        holder.release()
        for thread in threads:
            thread.join(timeout=5.0)
        assert admitted_order == [0, 1, 2]


class TestShedding:
    def test_queue_full_rejects_with_retry_after(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, max_queue_depth=1)
        )
        holder = controller.admit()
        queued = threading.Thread(target=lambda: controller.admit().release())
        queued.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        with capture_observability() as (metrics, __):
            with pytest.raises(AdmissionRejected, match="queue full") as info:
                controller.admit()
            assert metrics.snapshot()["service.rejected"] == 1
        assert info.value.retry_after > 0
        holder.release()
        queued.join(timeout=5.0)

    def test_zero_queue_depth_sheds_all_overflow(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, max_queue_depth=0)
        )
        with controller.admit():
            with pytest.raises(AdmissionRejected):
                controller.admit()
        controller.admit().release()  # capacity is back after release

    def test_wait_timeout_sheds(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        with controller.admit():
            started = time.monotonic()
            with pytest.raises(AdmissionRejected, match="timed out"):
                controller.admit(timeout=0.05)
            assert time.monotonic() - started < 1.0
        assert controller.queue_depth == 0


class TestQueuePolling:
    def test_cancellation_fires_while_queued(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        context = QueryContext.start()
        with controller.admit():
            cancelled_in = []

            def waiter():
                try:
                    controller.admit(context=context)
                except QueryCancelled:
                    cancelled_in.append(True)

            thread = threading.Thread(target=waiter)
            thread.start()
            assert _wait_until(lambda: controller.queue_depth == 1)
            context.token.cancel("changed my mind")
            thread.join(timeout=5.0)
            assert cancelled_in == [True]
        assert controller.queue_depth == 0

    def test_deadline_fires_while_queued(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        context = QueryContext.start(deadline=0.05)
        with controller.admit():
            with pytest.raises(DeadlineExceeded):
                controller.admit(context=context)
        assert controller.queue_depth == 0


class TestDegradation:
    def test_deep_queue_grants_degraded_slots(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, degrade_queue_depth=1)
        )
        first = controller.admit()
        assert not first.degraded  # empty queue: full-fidelity
        grants: list[bool] = []
        grant_lock = threading.Lock()

        def waiter():
            slot = controller.admit()
            with grant_lock:
                grants.append(slot.degraded)
            # Hold briefly so the second waiter is still queued when the
            # first is granted.
            time.sleep(0.05)
            slot.release()

        threads = [threading.Thread(target=waiter) for __ in range(2)]
        for thread in threads:
            thread.start()
        assert _wait_until(lambda: controller.queue_depth == 2)
        first.release()
        for thread in threads:
            thread.join(timeout=5.0)
        # The first grant sees one query still waiting -> degraded; the
        # second sees an empty queue -> full fidelity again.
        assert grants == [True, False]

    def test_degradation_disabled_with_none(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrency=1, degrade_queue_depth=None)
        )
        holder = controller.admit()
        grants = []
        thread = threading.Thread(
            target=lambda: grants.append(controller.admit())
        )
        thread.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        holder.release()
        thread.join(timeout=5.0)
        assert not grants[0].degraded
        grants[0].release()


class TestShutdown:
    def test_shutdown_rejects_new_and_queued(self):
        controller = AdmissionController(AdmissionConfig(max_concurrency=1))
        holder = controller.admit()
        outcomes = []

        def waiter():
            try:
                controller.admit()
            except AdmissionRejected as error:
                outcomes.append(str(error))

        thread = threading.Thread(target=waiter)
        thread.start()
        assert _wait_until(lambda: controller.queue_depth == 1)
        controller.shutdown()
        thread.join(timeout=5.0)
        assert outcomes and "shut down" in outcomes[0]
        with pytest.raises(AdmissionRejected):
            controller.admit()
        holder.release()


class TestMetrics:
    def test_admission_metrics_flow(self):
        with capture_observability() as (metrics, __):
            controller = AdmissionController(
                AdmissionConfig(max_concurrency=1, max_queue_depth=0)
            )
            with controller.admit():
                with pytest.raises(AdmissionRejected):
                    controller.admit()
            controller.admit().release()
            snapshot = metrics.snapshot()
        assert snapshot["service.admitted"] == 2
        assert snapshot["service.rejected"] == 1
        assert snapshot["service.queue_seconds"]["count"] == 2
