"""``why`` through the service: by SQL, by fingerprint, over the wire.

The sentinel's flip alerts and the query log carry spec fingerprints,
not SQL — so the service keeps a bounded fingerprint -> SQL index and
answers ``why`` for either form, in-process and as a wire op.
"""

import pytest

from repro.errors import ServiceError
from repro.obs.search import SearchTrace, set_search_trace
from repro.service.server import QueryServer, ServiceClient
from repro.service.session import (
    FINGERPRINT_INDEX_CAPACITY,
    QueryService,
)

PAPER_SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


class TestServiceWhy:
    def test_why_by_sql(self, service):
        report = service.why(sql=PAPER_SQL)
        assert report.plan_fingerprint
        assert report.decisions
        assert "EXPLAIN WHY" in report.render()

    def test_why_by_fingerprint_resolves_executed_queries(self, service):
        outcome = service.execute(PAPER_SQL)
        assert service.resolve_fingerprint(outcome.spec_fingerprint) == PAPER_SQL
        report = service.why(fingerprint=outcome.spec_fingerprint)
        assert report.spec_fingerprint == outcome.spec_fingerprint

    def test_unknown_fingerprint_is_a_service_error(self, service):
        with pytest.raises(ServiceError, match="not seen"):
            service.why(fingerprint="feedfacedeadbeef")
        with pytest.raises(ServiceError, match="needs sql"):
            service.why()

    def test_fingerprint_index_is_bounded(self, service):
        for i in range(FINGERPRINT_INDEX_CAPACITY + 10):
            service._note_fingerprint(f"fp{i:04d}", f"sql {i}")
        assert len(service._sql_by_fingerprint) == FINGERPRINT_INDEX_CAPACITY
        # Oldest evicted first, latest retained.
        assert service.resolve_fingerprint("fp0000") is None
        last = FINGERPRINT_INDEX_CAPACITY + 9
        assert service.resolve_fingerprint(f"fp{last:04d}") == f"sql {last}"

    def test_profile_carries_the_search_stamp(self, service):
        trace = SearchTrace()
        set_search_trace(trace)
        try:
            outcome = service.execute(PAPER_SQL, profile=True)
        finally:
            set_search_trace(None)
        assert outcome.profile is not None
        assert outcome.profile.search
        assert outcome.profile.search["summary"]["generated"] > 0


class TestWireWhy:
    def test_why_round_trip(self, join_catalog):
        server = QueryServer(QueryService(join_catalog)).start()
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                client.query(PAPER_SQL)
                response = client.why(sql=PAPER_SQL)
                assert response["ok"] is True
                assert "EXPLAIN WHY" in response["rendered"]
                why = response["why"]
                assert why["plan_fingerprint"]
                assert why["decisions"]
                # ...and by the fingerprint the response just named.
                again = client.why(fingerprint=why["spec_fingerprint"])
                assert again["why"]["plan_fingerprint"] == why["plan_fingerprint"]
        finally:
            server.shutdown()
