"""Service-layer fixtures: small and governance-scale catalogs."""

from __future__ import annotations

import pytest

from repro.datagen import Density, Sortedness, make_join_scenario
from repro.service.session import QueryService


@pytest.fixture
def service(join_catalog):
    """An in-process query service over the small §4.3 catalog."""
    svc = QueryService(join_catalog)
    yield svc
    svc.shutdown()


@pytest.fixture(scope="session")
def big_catalog():
    """A governance-scale catalog: the join probes >= 1M rows, so a
    query runs long enough for deadlines and cancellation to fire
    mid-flight. Session-scoped — building it costs real seconds."""
    scenario = make_join_scenario(
        n_r=100_000,
        n_s=1_200_000,
        num_groups=100,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=11,
    )
    return scenario.build_catalog()
