"""End-to-end service telemetry: one trace id across every sink.

The acceptance test of the telemetry work: a single ``trace_id`` minted
by :meth:`ServiceClient.query` must be recoverable from all four sinks —
tracer spans, metric exemplars, the persistent query log, and the query
profile — plus the ``metrics`` / ``health`` protocol ops, error
correlation, and the ``querylog trace`` CLI over a live server.
"""

import threading
import time

import pytest

from repro.errors import ParseError, ReproError, ServiceError
from repro.obs import capture_observability, parse_prometheus, render_prometheus
from repro.obs.querylog import QueryLog, main as querylog_main, set_query_log
from repro.service.admission import AdmissionConfig, Priority
from repro.service.server import (
    QueryServer,
    ServiceClient,
    _wire_error_class,
)
from repro.service.session import STAGES, QueryService, ServiceConfig

PAPER_SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture
def query_log(tmp_path):
    log = QueryLog(tmp_path / "telemetry.jsonl")
    set_query_log(log)
    yield log
    set_query_log(None)


@pytest.fixture
def server(join_catalog):
    srv = QueryServer(QueryService(join_catalog)).start()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


class TestFourSinks:
    def test_one_trace_id_reaches_every_sink(self, join_catalog, query_log):
        with capture_observability() as (metrics, tracer):
            server = QueryServer(QueryService(join_catalog)).start()
            try:
                with ServiceClient("127.0.0.1", server.port) as client:
                    response = client.query(PAPER_SQL, profile=True)
            finally:
                server.shutdown()
            trace_id = response["trace_id"]
            assert trace_id

            # Sink 1: tracer spans — the full lifecycle is stitched.
            tagged = {
                span.name
                for span in tracer.finished_spans
                if span.tags.get("trace_id") == trace_id
            }
            for expected in (
                "service.query",
                "service.parse",
                "service.optimize",
                "service.execute",
            ):
                assert expected in tagged

            # Sink 2: metric exemplars — on the query histogram and in
            # the Prometheus exposition.
            snapshot = metrics.snapshot()
            exemplar = snapshot["service.query_seconds"]["exemplar"]
            assert exemplar["trace_id"] == trace_id
            text = render_prometheus(snapshot, kinds=metrics.kinds())
            parse_prometheus(text)  # well-formed
            assert trace_id in text

            # Sink 3: the persistent query log's service row.
            service_rows = [
                e for e in query_log.entries() if e.get("kind") == "service"
            ]
            assert [e["trace_id"] for e in service_rows] == [trace_id]
            assert set(service_rows[0]["stages"]) <= set(STAGES)

            # Sink 4: the query profile, over the wire and in the log.
            assert response["profile"]["trace_id"] == trace_id
            profile_rows = [
                e for e in query_log.entries() if e.get("kind") == "profile"
            ]
            assert profile_rows
            assert all(
                e.get("trace_id") == trace_id for e in profile_rows
            )

    def test_client_supplied_trace_id_is_honoured(self, client):
        response = client.query(PAPER_SQL, trace_id="feedc0ffee000001")
        assert response["trace_id"] == "feedc0ffee000001"

    def test_stage_breakdown_covers_the_lifecycle(self, client):
        first = client.query(PAPER_SQL)["stages"]
        assert set(first) <= set(STAGES)
        for stage in ("queue", "parse", "execute", "serialize"):
            assert stage in first
        assert "optimize" in first and "plan_cache" not in first
        second = client.query(PAPER_SQL)["stages"]
        assert "plan_cache" in second and "optimize" not in second


class TestErrorCorrelation:
    def test_raised_error_carries_the_trace_id(self, client):
        with pytest.raises(ParseError) as info:
            client.query("SELEC wat", trace_id="deadbeef00000001")
        assert info.value.trace_id == "deadbeef00000001"

    def test_minted_trace_id_rides_on_errors_too(self, client):
        with pytest.raises(ParseError) as info:
            client.query("SELEC wat")
        assert len(info.value.trace_id) == 16

    def test_unknown_wire_error_class_is_preserved(self):
        with pytest.raises(ReproError) as info:
            ServiceClient._raise_on_error(
                {
                    "ok": False,
                    "error": "TotallyNovelError",
                    "message": "boom",
                    "trace_id": "t1",
                }
            )
        assert type(info.value).__name__ == "TotallyNovelError"
        assert isinstance(info.value, ServiceError)
        assert info.value.trace_id == "t1"
        # The synthesised class is stable across raises.
        assert _wire_error_class("TotallyNovelError") is type(info.value)

    def test_failed_queries_land_in_the_log_with_trace(
        self, server, query_log
    ):
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ParseError) as info:
                client.query("SELEC nope")
        rows = [
            e
            for e in query_log.entries()
            if e.get("kind") == "service" and e.get("status") == "ParseError"
        ]
        assert [e["trace_id"] for e in rows] == [info.value.trace_id]


class TestMetricsAndHealthOps:
    def test_metrics_round_trip_renders_valid_exposition(self, join_catalog):
        with capture_observability():
            server = QueryServer(QueryService(join_catalog)).start()
            try:
                with ServiceClient("127.0.0.1", server.port) as client:
                    client.query(PAPER_SQL)
                    scraped = client.metrics()
            finally:
                server.shutdown()
        assert scraped["enabled"]
        text = render_prometheus(
            scraped["metrics"], kinds=scraped["kinds"]
        )
        parsed = parse_prometheus(text)
        assert "repro_service_completed_total" in parsed

    def test_health_reports_the_serving_posture(self, client):
        client.query(PAPER_SQL)
        health = client.health()
        assert health["state"] == "accepting"
        assert health["uptime_seconds"] > 0
        assert health["inflight"] == 0
        assert health["counts"]["completed"] == 1
        assert 0.0 <= health["plan_cache"]["hit_rate"] <= 1.0
        slo = health["slo"]
        assert slo["total_count"] == 1
        assert slo["classes"]["NORMAL"]["count"] == 1

    def test_health_tracks_degraded_and_shedding(self, join_catalog):
        service = QueryService(
            join_catalog,
            ServiceConfig(
                admission=AdmissionConfig(
                    max_concurrency=1,
                    max_queue_depth=2,
                    degrade_queue_depth=1,
                )
            ),
        )
        admission = service.admission
        assert service.health()["state"] == "accepting"
        slot = admission.admit()  # soak the only slot
        waiters = [
            threading.Thread(target=lambda: admission.admit().release())
            for __ in range(2)
        ]
        try:
            waiters[0].start()
            _wait_for(lambda: admission.queue_depth == 1)
            assert service.health()["state"] == "degraded"
            waiters[1].start()
            _wait_for(lambda: admission.queue_depth == 2)
            assert service.health()["state"] == "shedding"
        finally:
            slot.release()
            for waiter in waiters:
                waiter.join(timeout=5.0)
        _wait_for(lambda: admission.queue_depth == 0)
        assert service.health()["state"] == "accepting"
        service.shutdown()
        assert service.health()["state"] == "stopped"

    def test_top_queries_ranked_by_execute_time(self, client, server):
        client.query(PAPER_SQL)
        client.query(PAPER_SQL)
        top = server.service.top_queries()
        assert top[0]["sql"] == PAPER_SQL
        assert top[0]["executions"] == 2


class TestTraceCli:
    def test_trace_subcommand_reconstructs_the_timeline(
        self, server, query_log, capsys
    ):
        with ServiceClient("127.0.0.1", server.port) as client:
            trace_id = client.query(PAPER_SQL)["trace_id"]
        rc = querylog_main(
            ["--log", str(query_log.path), "trace", trace_id[:8]]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        assert "JOIN" in out
        assert "stage queue" in out
        assert "stage execute" in out

    def test_unknown_trace_id_fails_cleanly(self, query_log, capsys):
        rc = querylog_main(
            ["--log", str(query_log.path), "trace", "absent"]
        )
        assert rc == 1
        assert "no entries carry" in capsys.readouterr().err


def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")
