"""Cancellation/deadline propagation: optimiser, morsel scheduler, pool.

Includes the PR's acceptance test: a governed query with a 50ms deadline
against a >= 1M-row join must abort within 0.25s of wall time, release
its admission slot, and leave metrics and the query log consistent.
"""

import threading
import time

import pytest

from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.plancache import PlanCache
from repro.engine.parallel import (
    WORKER_THREAD_PREFIX,
    _MorselPool,
    run_morsels,
)
from repro.errors import DeadlineExceeded, QueryCancelled
from repro.obs import capture_observability, set_query_log
from repro.obs.querylog import QueryLog
from repro.service.context import QueryContext, activate_context
from repro.service.session import QueryService
from repro.sql import plan_query

PAPER_SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


class TestOptimizerPropagation:
    def test_expired_deadline_stops_dp_enumeration(self, join_catalog):
        logical = plan_query(PAPER_SQL, join_catalog)
        optimizer = DynamicProgrammingOptimizer(
            join_catalog, plan_cache=PlanCache(4)
        )
        with activate_context(QueryContext.start(deadline=0.0)):
            with pytest.raises(DeadlineExceeded):
                optimizer.optimize(logical)

    def test_cancelled_token_stops_dp_enumeration(self, join_catalog):
        logical = plan_query(PAPER_SQL, join_catalog)
        optimizer = DynamicProgrammingOptimizer(
            join_catalog, plan_cache=PlanCache(4)
        )
        context = QueryContext.start()
        context.token.cancel("abandon optimisation")
        with activate_context(context):
            with pytest.raises(QueryCancelled, match="abandon"):
                optimizer.optimize(logical)

    def test_ungoverned_optimisation_is_unaffected(self, join_catalog):
        logical = plan_query(PAPER_SQL, join_catalog)
        optimizer = DynamicProgrammingOptimizer(
            join_catalog, plan_cache=PlanCache(4)
        )
        assert optimizer.optimize(logical).cost > 0


class TestMorselSchedulerPropagation:
    def test_inline_path_polls_between_morsels(self):
        context = QueryContext.start()
        executed = []

        def first():
            executed.append("first")
            context.token.cancel("stop after the first morsel")

        def later(index):
            executed.append(index)

        tasks = [first] + [lambda i=i: later(i) for i in range(10)]
        with activate_context(context):
            with pytest.raises(QueryCancelled):
                run_morsels(tasks, workers=1)
        assert executed == ["first"]  # nothing ran past the cancel

    def test_pool_path_cancels_pending_morsels(self):
        context = QueryContext.start()
        executed = threading.Semaphore(0)
        ran = [0]
        lock = threading.Lock()

        def poison():
            context.token.cancel("mid-batch cancel")

        def work():
            with lock:
                ran[0] += 1
            time.sleep(0.001)

        tasks = [poison] + [work for __ in range(64)]
        with activate_context(context):
            with pytest.raises(QueryCancelled):
                run_morsels(tasks, workers=2)
        # The poison lands early; the governed workers then refuse every
        # remaining morsel, so almost none of the 64 ran.
        assert ran[0] < 64

    def test_deadline_fires_inside_the_batch(self):
        context = QueryContext.start(deadline=0.02)
        with activate_context(context):
            with pytest.raises(DeadlineExceeded):
                run_morsels(
                    [lambda: time.sleep(0.02) for __ in range(8)], workers=2
                )


class TestMorselPoolTeardown:
    def test_workers_are_daemon_threads(self):
        pool = _MorselPool(2)
        try:
            for thread in pool._threads:
                assert thread.daemon
                assert thread.name.startswith(WORKER_THREAD_PREFIX)
        finally:
            pool.shutdown()

    def test_cancelled_pending_future_never_runs(self):
        pool = _MorselPool(1)
        try:
            release = threading.Event()
            ran = []
            blocker = pool.submit(release.wait, 5.0)
            pending = pool.submit(lambda: ran.append("pending ran"))
            assert pending.cancel()  # still queued: cancellable
            release.set()
            assert blocker.result(timeout=5.0)
            # Queue is drained in order; the cancelled task was skipped.
            tail = pool.submit(lambda: "tail")
            assert tail.result(timeout=5.0) == "tail"
            assert ran == []
            assert pending.cancelled()
        finally:
            pool.shutdown()

    def test_running_future_is_not_cancellable(self):
        pool = _MorselPool(1)
        try:
            started = threading.Event()
            release = threading.Event()

            def task():
                started.set()
                release.wait(5.0)
                return "done"

            future = pool.submit(task)
            assert started.wait(5.0)
            assert not future.cancel()
            release.set()
            assert future.result(timeout=5.0) == "done"
        finally:
            pool.shutdown()

    def test_shutdown_joins_workers(self):
        pool = _MorselPool(2)
        threads = list(pool._threads)
        pool.shutdown(wait=True)
        assert all(not thread.is_alive() for thread in threads)


class TestDeadlineAcceptance:
    """ISSUE acceptance: deadline=0.05s against the 1.2M-row join."""

    def test_governed_abort_within_budget(self, big_catalog, tmp_path):
        service = QueryService(big_catalog)
        try:
            # Warm-up: the first optimisation against a fresh catalog
            # computes 1.2M-row column statistics (~0.3s, un-governable
            # numpy work). The governed run then measures governance,
            # not statistics collection.
            warm = service.execute(PAPER_SQL)
            assert warm.table.num_rows == 100
            log_path = tmp_path / "log.jsonl"
            set_query_log(log_path)
            try:
                with capture_observability() as (metrics, __):
                    started = time.monotonic()
                    with pytest.raises(DeadlineExceeded):
                        service.execute(PAPER_SQL, deadline=0.05)
                    wall = time.monotonic() - started
                    snapshot = metrics.snapshot()
            finally:
                set_query_log(None)
            assert wall <= 0.25, f"governed abort took {wall:.3f}s"
            # The slot and the active-query registry are both clean.
            assert service.admission.running == 0
            assert service.admission.queue_depth == 0
            assert service.active_queries() == []
            # Metrics and the query log agree on what happened.
            assert snapshot["service.admitted"] == 1
            assert snapshot["service.failed"] == 1
            assert "service.completed" not in snapshot
            entries = [
                e
                for e in QueryLog(log_path).entries()
                if e["kind"] == "service"
            ]
            assert len(entries) == 1
            assert entries[0]["status"] == "DeadlineExceeded"
            assert entries[0]["wall_seconds"] <= 0.25
        finally:
            service.shutdown()

    def test_mid_flight_cancel_by_query_id(self, big_catalog):
        service = QueryService(big_catalog)
        try:
            service.execute(PAPER_SQL)  # warm statistics + plan cache
            failures: list = []

            def run():
                try:
                    service.execute(PAPER_SQL, query_id="cancel-me")
                except QueryCancelled as error:
                    failures.append(error)

            thread = threading.Thread(target=run)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (
                "cancel-me" not in service.active_queries()
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            assert service.cancel("cancel-me", reason="operator kill")
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert len(failures) == 1
            assert "operator kill" in str(failures[0])
            assert service.admission.running == 0
            assert service.active_queries() == []
        finally:
            service.shutdown()
