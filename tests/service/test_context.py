"""QueryContext: deadlines, cancellation tokens, budgets, propagation."""

import threading
import time

import pytest

from repro.errors import (
    DeadlineExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    ServiceError,
)
from repro.service.context import (
    CancellationToken,
    QueryContext,
    activate_context,
    charge_active_context,
    check_active_context,
    get_active_context,
)


class TestCancellationToken:
    def test_starts_untriggered(self):
        assert not CancellationToken().cancelled

    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_cancel_visible_across_threads(self):
        token = CancellationToken()
        seen = threading.Event()

        def watch():
            while not token.cancelled:
                time.sleep(0.001)
            seen.set()

        thread = threading.Thread(target=watch)
        thread.start()
        token.cancel()
        thread.join(timeout=2.0)
        assert seen.is_set()


class TestQueryContext:
    def test_start_turns_relative_deadline_absolute(self):
        context = QueryContext.start(deadline=10.0)
        remaining = context.remaining()
        assert remaining is not None and 9.0 < remaining <= 10.0
        assert not context.expired

    def test_negative_deadline_rejected(self):
        with pytest.raises(ServiceError, match="deadline must be >= 0"):
            QueryContext.start(deadline=-1.0)

    def test_no_deadline_never_expires(self):
        context = QueryContext.start()
        assert context.remaining() is None
        assert not context.expired
        context.check()  # no-op

    def test_check_raises_deadline_exceeded(self):
        context = QueryContext.start(deadline=0.0)
        with pytest.raises(DeadlineExceeded, match=context.query_id):
            context.check()

    def test_check_raises_query_cancelled_with_reason(self):
        context = QueryContext.start()
        context.token.cancel("user hit ctrl-c")
        with pytest.raises(QueryCancelled, match="user hit ctrl-c"):
            context.check()

    def test_cancellation_wins_over_deadline(self):
        context = QueryContext.start(deadline=0.0)
        context.token.cancel()
        with pytest.raises(QueryCancelled):
            context.check()

    def test_query_ids_are_unique(self):
        a, b = QueryContext.start(), QueryContext.start()
        assert a.query_id != b.query_id

    def test_charge_memory_tracks_peak(self):
        context = QueryContext.start()
        context.charge_memory(100)
        context.charge_memory(50)
        assert context.peak_memory_bytes == 100

    def test_charge_memory_enforces_budget(self):
        context = QueryContext.start(memory_budget_bytes=1_000)
        context.charge_memory(1_000)  # at the limit is fine
        with pytest.raises(MemoryBudgetExceeded, match="1,001"):
            context.charge_memory(1_001)


class TestActivation:
    def test_activate_installs_and_restores(self):
        context = QueryContext.start()
        assert get_active_context() is None
        with activate_context(context):
            assert get_active_context() is context
        assert get_active_context() is None

    def test_activation_nests(self):
        outer, inner = QueryContext.start(), QueryContext.start()
        with activate_context(outer):
            with activate_context(inner):
                assert get_active_context() is inner
            assert get_active_context() is outer

    def test_none_context_is_a_noop_scope(self):
        with activate_context(None) as installed:
            assert installed is None
            assert get_active_context() is None

    def test_restores_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with activate_context(QueryContext.start()):
                raise RuntimeError("boom")
        assert get_active_context() is None

    def test_check_active_is_noop_when_ungoverned(self):
        check_active_context()  # must not raise
        charge_active_context(1 << 40)  # no context, no budget

    def test_check_active_polls_the_installed_context(self):
        context = QueryContext.start()
        context.token.cancel()
        with activate_context(context):
            with pytest.raises(QueryCancelled):
                check_active_context()

    def test_charge_active_charges_the_installed_context(self):
        context = QueryContext.start(memory_budget_bytes=10)
        with activate_context(context):
            with pytest.raises(MemoryBudgetExceeded):
                charge_active_context(11)

    def test_context_is_thread_local(self):
        context = QueryContext.start()
        other_thread_saw: list = []

        def peek():
            other_thread_saw.append(get_active_context())

        with activate_context(context):
            thread = threading.Thread(target=peek)
            thread.start()
            thread.join(timeout=2.0)
        assert other_thread_saw == [None]
