"""Failure injection and degenerate inputs across the whole stack."""

import numpy as np
import pytest

from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.engine import (
    GroupBy,
    GroupingAlgorithm,
    Join,
    JoinAlgorithm,
    TableScan,
    count_star,
    execute,
    group_by,
    join,
    sum_of,
)
from repro.errors import OptimizationError, PlanError
from repro.logical import evaluate_naive
from repro.sql import plan_query
from repro.storage import Catalog, Table


def empty_catalog():
    catalog = Catalog()
    catalog.register(
        "R",
        Table.from_arrays(
            {"ID": np.empty(0, dtype=np.int64), "A": np.empty(0, dtype=np.int64)}
        ),
    )
    catalog.register(
        "S",
        Table.from_arrays(
            {"R_ID": np.empty(0, dtype=np.int64), "B": np.empty(0, dtype=np.int64)}
        ),
    )
    return catalog


class TestEmptyRelations:
    def test_full_pipeline_on_empty_tables(self, paper_query):
        catalog = empty_catalog()
        logical = plan_query(paper_query, catalog)
        for optimizer in (optimize_sqo, optimize_dqo):
            result = optimizer(logical, catalog)
            output = execute(to_operator(result.plan, catalog, validate=True))
            assert output.num_rows == 0
            assert output.schema.names == ("R.A", "count")

    @pytest.mark.parametrize(
        "algorithm",
        [
            GroupingAlgorithm.HG,
            GroupingAlgorithm.OG,
            GroupingAlgorithm.SOG,
            GroupingAlgorithm.BSG,
        ],
    )
    def test_grouping_operators_on_empty(self, algorithm):
        table = Table.from_arrays({"k": np.empty(0, dtype=np.int64)})
        result = execute(
            GroupBy(TableScan(table), "k", [count_star()], algorithm)
        )
        assert result.num_rows == 0

    @pytest.mark.parametrize("algorithm", list(JoinAlgorithm))
    def test_join_operators_on_empty(self, algorithm):
        left = Table.from_arrays({"a": np.empty(0, dtype=np.int64)})
        right = Table.from_arrays({"b": np.array([1, 2, 3])})
        result = execute(
            Join(TableScan(left), TableScan(right), "a", "b", algorithm)
        )
        assert result.num_rows == 0


class TestSingleRowAndSingleGroup:
    def test_one_row(self):
        result = group_by(
            np.array([7]), np.array([3]), GroupingAlgorithm.SOG
        )
        assert result.keys.tolist() == [7]
        assert result.counts.tolist() == [1]
        assert result.sums.tolist() == [3]

    def test_one_group_many_rows(self):
        keys = np.zeros(10_000, dtype=np.int64)
        for algorithm in GroupingAlgorithm:
            result = group_by(keys, None, algorithm)
            assert result.num_groups == 1
            assert result.counts.tolist() == [10_000]

    def test_all_distinct(self):
        keys = np.arange(1_000, dtype=np.int64)
        for algorithm in GroupingAlgorithm:
            result = group_by(keys, None, algorithm)
            assert result.num_groups == 1_000


class TestExtremeValues:
    def test_negative_and_large_keys(self):
        keys = np.array([-(2**40), 0, 2**40, -(2**40)])
        for algorithm in (
            GroupingAlgorithm.HG,
            GroupingAlgorithm.SOG,
            GroupingAlgorithm.BSG,
        ):
            result = group_by(keys, None, algorithm).sorted_by_key()
            assert result.keys.tolist() == [-(2**40), 0, 2**40]
            assert result.counts.tolist() == [2, 1, 1]

    def test_join_with_extreme_keys(self):
        build = np.array([-(2**50), 2**50])
        probe = np.array([2**50, -(2**50), 0])
        result = join(build, probe, JoinAlgorithm.HJ)
        assert result.canonical_pairs() == [(0, 1), (1, 0)]

    def test_offset_dense_domain_sph(self):
        # Dense domain far from zero: SPH must still be minimal.
        keys = np.arange(10**9, 10**9 + 100, dtype=np.int64)
        result = group_by(keys, None, GroupingAlgorithm.SPHG)
        assert result.num_groups == 100


class TestFilterEdgeCases:
    def test_filter_selects_nothing(self, join_catalog):
        logical = plan_query(
            "SELECT A, COUNT(*) FROM R WHERE ID < 0 GROUP BY A", join_catalog
        )
        result = optimize_dqo(logical, join_catalog)
        output = execute(to_operator(result.plan, join_catalog))
        assert output.num_rows == 0

    def test_filter_selects_everything_keeps_density(self, join_catalog):
        # A non-filtering filter still destroys nothing (selectivity 1.0).
        logical = plan_query(
            "SELECT A, COUNT(*) FROM R WHERE ID >= 0 GROUP BY A", join_catalog
        )
        result = optimize_dqo(logical, join_catalog)
        truth = evaluate_naive(logical, join_catalog)
        output = execute(to_operator(result.plan, join_catalog))
        assert output.equals_unordered(truth)


class TestOptimizerErrors:
    def test_disconnected_join_graph(self):
        from repro.core.optimizer import DynamicProgrammingOptimizer
        from repro.core.optimizer.query import QuerySpec, ScanSpec

        catalog = empty_catalog()
        spec = QuerySpec(
            scans=[ScanSpec("R", "R"), ScanSpec("S", "S")], joins=[]
        )
        with pytest.raises(OptimizationError, match="disconnected"):
            DynamicProgrammingOptimizer(catalog).optimize_spec(spec)

    def test_cross_table_filter_rejected(self, join_catalog):
        logical = plan_query(
            "SELECT R.A, COUNT(*) FROM R JOIN S ON ID = R_ID "
            "WHERE ID < B GROUP BY A",
            join_catalog,
        )
        with pytest.raises(PlanError, match="single-table"):
            optimize_dqo(logical, join_catalog)


class TestAggregateEdgeCases:
    def test_sum_overflowing_int32_range(self):
        keys = np.zeros(1_000, dtype=np.int64)
        values = np.full(1_000, 2**31, dtype=np.int64)
        result = group_by(keys, values, GroupingAlgorithm.SOG)
        assert result.sums.tolist() == [1_000 * 2**31]

    def test_negative_sums(self):
        result = group_by(
            np.array([1, 1]), np.array([-5, -7]), GroupingAlgorithm.HG
        )
        assert result.sums.tolist() == [-12]
