"""Out-of-core execution end to end.

The acceptance criteria of the disk subsystem live here: results under
``REPRO_STORAGE=disk`` are bit-identical to the in-memory path across
serial, thread, and process backends; a selective scan reads strictly
fewer segments; the optimiser's scan strategy responds to the I/O cost
terms; statistics-version bumps invalidate zone-map-dependent cached
plans; and the storage facts surface in EXPLAIN ANALYZE, the query log,
and the ``top`` dashboard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.core import (
    DynamicProgrammingOptimizer,
    PlanCache,
    dqo_config,
    optimize_dqo,
    to_operator,
)
from repro.core.cost import AccessPathCostModel
from repro.core.optimizer import extract_query
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute, explain_analyze
from repro.engine.operators import SegmentScan
from repro.engine.parallel import (
    ExecutorConfig,
    get_executor_config,
    set_executor_config,
)
from repro.logical import evaluate_naive
from repro.obs.querylog import QueryLog, set_query_log, summarise
from repro.sql import plan_query
from repro.storage import Catalog, Table
from repro.storage.disk import (
    BufferManager,
    append_table,
    is_disk_table,
    set_buffer_manager,
    write_table,
)

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
SELECTIVE = "SELECT R.A, COUNT(*) FROM R WHERE R.ID < 100 GROUP BY R.A"


def scenario():
    return make_join_scenario(
        n_r=1_000,
        n_s=2_500,
        num_groups=100,
        r_sortedness=Sortedness.SORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=11,
    )


@pytest.fixture
def disk_env(monkeypatch, tmp_path):
    """Disk mode with small segments and a fresh 8 MiB pool."""
    monkeypatch.setenv("REPRO_STORAGE", "disk")
    monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SEGMENT_ROWS", "256")
    pool = BufferManager(budget_bytes=8 * 1024 * 1024)
    set_buffer_manager(pool)
    yield pool
    set_buffer_manager(None)


@pytest.fixture
def disk_catalog(disk_env):
    catalog = scenario().build_catalog()
    assert is_disk_table(catalog.table("R"))
    assert is_disk_table(catalog.table("S"))
    return catalog


def run(sql: str, catalog: Catalog) -> Table:
    logical = plan_query(sql, catalog)
    result = optimize_dqo(logical, catalog)
    return execute(to_operator(result.plan, catalog, validate=True))


class TestBitIdenticalResults:
    def test_disk_matches_memory_path(self, disk_catalog, memory_storage):
        # memory_storage resets the env *after* disk_catalog spilled, so
        # this catalog stays in memory while disk_catalog is on disk.
        memory_catalog = scenario().build_catalog()
        assert not is_disk_table(memory_catalog.table("R"))
        for sql in (QUERY, SELECTIVE):
            disk_result = run(sql, disk_catalog)
            memory_result = run(sql, memory_catalog)
            assert disk_result.equals_unordered(memory_result)

    def test_disk_matches_naive_truth(self, disk_catalog):
        logical = plan_query(QUERY, disk_catalog)
        truth = evaluate_naive(logical, disk_catalog)
        assert run(QUERY, disk_catalog).equals_unordered(truth)

    @pytest.mark.parametrize(
        "workers,backend", [(1, "thread"), (2, "thread"), (2, "process")]
    )
    def test_backends_bit_identical(self, disk_catalog, workers, backend):
        logical = plan_query(QUERY, disk_catalog)
        plan = optimize_dqo(logical, disk_catalog).plan
        serial = execute(to_operator(plan, disk_catalog))
        previous = get_executor_config()
        try:
            set_executor_config(
                ExecutorConfig(workers=workers, backend=backend)
            )
            result = execute(to_operator(plan, disk_catalog))
        finally:
            set_executor_config(previous)
        assert result.equals_unordered(serial)


class TestSegmentSkipping:
    def test_selective_scan_reads_strictly_fewer_segments(self, disk_catalog):
        logical = plan_query(SELECTIVE, disk_catalog)
        plan = optimize_dqo(logical, disk_catalog).plan
        full_logical = plan_query(
            "SELECT R.A, COUNT(*) FROM R GROUP BY R.A", disk_catalog
        )
        full_plan = optimize_dqo(full_logical, disk_catalog).plan

        selective = explain_analyze(to_operator(plan, disk_catalog))
        full = explain_analyze(to_operator(full_plan, disk_catalog))
        sel_read, sel_skipped, __ = selective.io_totals
        full_read, __, __ = full.io_totals
        assert sel_skipped > 0
        assert sel_read < full_read
        # R is sorted on ID: 1000 rows in 256-row segments, ID < 100
        # touches exactly the first segment.
        assert sel_read == full_read - sel_skipped

    def test_explain_marks_disk_scans(self, disk_catalog):
        logical = plan_query(SELECTIVE, disk_catalog)
        plan = optimize_dqo(logical, disk_catalog).plan
        scan = next(node for node in plan.walk() if node.op == "scan")
        assert scan.scan_storage == "disk"
        assert len(scan.scan_predicates) == 1
        assert "[disk]" in plan.explain()
        assert "pushed=1" in plan.explain()

    def test_lowering_produces_segment_scan(self, disk_catalog):
        logical = plan_query(QUERY, disk_catalog)
        plan = optimize_dqo(logical, disk_catalog).plan
        root = to_operator(plan, disk_catalog)
        scans = [
            op
            for op in _walk(root)
            if isinstance(op, SegmentScan)
        ]
        assert len(scans) == 2  # R and S

    def test_explain_analyze_reports_storage_io(self, disk_catalog):
        logical = plan_query(SELECTIVE, disk_catalog)
        plan = optimize_dqo(logical, disk_catalog).plan
        analyzed = explain_analyze(to_operator(plan, disk_catalog))
        rendered = analyzed.render()
        assert "Storage I/O:" in rendered
        assert "skipped via zone maps" in rendered
        assert "[io segments=" in rendered


class TestCostModelResponse:
    """The optimiser's access-path choice responds to the I/O terms."""

    def make_setting(self, tmp_path):
        # 20k unsorted rows => zone maps prune nothing; k < 10_000 is a
        # 50% filter. A 64 KiB pool keeps residency (and so the buffer
        # hit fraction) near zero against the 320 KB table.
        rng = np.random.default_rng(7)
        table = Table.from_arrays(
            {
                "k": rng.permutation(20_000),
                "v": rng.integers(0, 100, 20_000),
            }
        )
        pool = BufferManager(budget_bytes=64 * 1024)
        disk = write_table(
            table, str(tmp_path / "T"), segment_rows=4096, buffer=pool
        )
        catalog = Catalog()
        catalog.register("T", disk)
        registry = AVRegistry(
            [materialize_view(catalog, ViewKind.BTREE, "T", "k")]
        )
        return catalog, registry

    def scan_node(self, catalog, registry, cost_model):
        logical = plan_query("SELECT k, v FROM T WHERE k < 10000", catalog)
        optimizer = DynamicProgrammingOptimizer(
            catalog, cost_model, dqo_config(views=registry)
        )
        plan = optimizer.optimize(logical).plan
        return next(node for node in plan.walk() if node.op == "scan")

    def test_io_terms_flip_scan_strategy(self, tmp_path):
        catalog, registry = self.make_setting(tmp_path)

        class FreeIOModel(AccessPathCostModel):
            """Disk reads cost nothing: like RAM, the scan should win."""

            def io_read_weight(self) -> float:
                return 0.0

        # Cold reads at the default 4x: the 50% filter makes the
        # unclustered B-tree (4 per match = 2n) cheaper than the cold
        # segment scan (~5n), so the index path wins ...
        costly = self.scan_node(catalog, registry, AccessPathCostModel())
        assert costly.scan_view == ("btree", "k")
        # ... but with the cold-read term zeroed the same query flips
        # back to the segment scan (n < 2n).
        free = self.scan_node(catalog, registry, FreeIOModel())
        assert "btree" not in free.scan_view
        assert free.scan_storage == "disk"


class TestPlanCacheInvalidation:
    def test_append_invalidates_cached_plans(self, disk_env, tmp_path):
        table = Table.from_arrays(
            {
                "k": np.arange(2_000, dtype=np.int64),
                "v": np.tile(np.arange(20, dtype=np.int64), 100),
            }
        )
        directory = str(tmp_path / "grow")
        write_table(table, directory, segment_rows=256)
        catalog = Catalog()
        catalog.register_disk("T", directory)
        cache = PlanCache()
        optimizer = DynamicProgrammingOptimizer(catalog, plan_cache=cache)
        logical = plan_query(
            "SELECT v, COUNT(*) FROM T WHERE k >= 1500 GROUP BY v", catalog
        )
        spec = extract_query(logical)
        first = optimizer.optimize_spec(spec)
        assert not first.cached
        assert optimizer.optimize_spec(spec).cached

        # Appending rewrites the zone maps and bumps the statistics
        # version; re-registering carries that into the catalog
        # fingerprint, so the cached plan must not be served again.
        extra = Table.from_arrays(
            {
                "k": np.arange(2_000, 3_000, dtype=np.int64),
                "v": np.zeros(1_000, dtype=np.int64),
            }
        )
        appended = append_table(directory, extra)
        assert appended.statistics_version == 2
        catalog.register_disk("T", directory, replace=True)
        refreshed = optimizer.optimize_spec(spec)
        assert not refreshed.cached
        result = execute(to_operator(refreshed.plan, catalog, validate=True))
        assert int(result.num_rows) > 0


class TestObservabilitySurface:
    def test_querylog_summary_has_storage_line(self, disk_catalog, tmp_path):
        path = tmp_path / "qlog.jsonl"
        set_query_log(path)
        try:
            run(SELECTIVE, disk_catalog)
        finally:
            set_query_log(None)
        entries = QueryLog(path).entries()
        assert any(e.get("segments_read") for e in entries)
        report = summarise(entries)
        assert "storage:" in report
        assert "skipped via zone maps" in report

    def test_memory_mode_entries_carry_no_io_keys(
        self, memory_storage, tmp_path
    ):
        catalog = scenario().build_catalog()
        path = tmp_path / "qlog.jsonl"
        set_query_log(path)
        try:
            run(QUERY, catalog)
        finally:
            set_query_log(None)
        for entry in QueryLog(path).entries():
            assert "segments_read" not in entry
        assert "storage:" not in summarise(QueryLog(path).entries())

    def test_buffer_pool_metrics_reported(self, disk_catalog):
        from repro.obs import capture_observability

        with capture_observability() as (metrics, __):
            run(QUERY, disk_catalog)
            snapshot = metrics.snapshot()
        assert snapshot.get("storage.buffer.misses", 0) > 0
        assert "storage.buffer.resident_bytes" in snapshot

    def test_top_dashboard_renders_buffer_section(self):
        from tests.obs.test_top import sample

        from repro.obs.top import render_dashboard

        polled = sample(
            10.0,
            {"completed": 3},
            extra_metrics={
                "storage.buffer.hits": 30,
                "storage.buffer.misses": 10,
                "storage.buffer.evictions": 2,
                "storage.buffer.resident_bytes": 4096,
            },
        )
        board = render_dashboard(polled, rates(None, polled))
        assert "buffer pool" in board
        assert "hit rate  75.0%" in board
        assert "evictions 2" in board


def rates(previous, current):
    from repro.obs.top import rates as _rates

    return _rates(previous, current)


def _walk(operator):
    yield operator
    for child in operator.children:
        yield from _walk(child)
