"""Acceptance: the sentinel catches a seeded regression end-to-end.

A catalog-statistics mutation (re-registering the §4.3 tables with
unsorted data) forces the optimiser to flip the order-based OJ/OG plan
to the partitioned-hash family, and a synthetic latency shift is
replayed through the same query log — the sentinel must raise a
``plan_flip`` and a ``latency_drift`` alert carrying the right
fingerprints and both plan hashes, while a stable-workload replay of
several hundred rows stays completely quiet.
"""

import random

import pytest

from repro.datagen.grouping import Sortedness
from repro.datagen.join import make_join_scenario
from repro.obs import disable_observability
from repro.obs.querylog import QueryLog, set_query_log
from repro.obs.sentinel import Sentinel, SentinelConfig
from repro.service.session import QueryService, ServiceConfig
from repro.storage.catalog import ForeignKey

SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(autouse=True)
def _clean_globals():
    disable_observability()
    set_query_log(None)
    yield
    set_query_log(None)
    disable_observability()


def synthetic_service_rows(outcome, n, base_seconds, jitter, rng):
    """Replayed ``service`` rows for one plan at a synthetic latency."""
    return [
        {
            "kind": "service",
            "status": "ok",
            "spec_fingerprint": outcome.spec_fingerprint,
            "plan_hash": outcome.plan_hash,
            "catalog_version": outcome.catalog_version,
            "execute_seconds": base_seconds + rng.uniform(-jitter, jitter),
            "trace_id": f"trace-{outcome.plan_hash}-{i}",
            "ts": 1000.0 + i,
        }
        for i in range(n)
    ]


class TestSeededRegression:
    def test_plan_flip_and_latency_drift_are_caught(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        set_query_log(log)
        scenario = make_join_scenario(
            n_r=2_000, n_s=4_000, num_groups=500, seed=1
        )
        catalog = scenario.build_catalog()
        service = QueryService(catalog, ServiceConfig())
        rng = random.Random(7)

        old = service.execute(SQL)
        assert old.plan_hash and old.spec_fingerprint
        for row in synthetic_service_rows(old, 40, 0.010, 0.001, rng):
            log.append(row)

        # The regression: fresh statistics say the data lost its order,
        # so the optimiser abandons the order-based plan.
        mutated = make_join_scenario(
            n_r=2_000,
            n_s=4_000,
            num_groups=500,
            seed=2,
            r_sortedness=Sortedness.UNSORTED,
            s_sortedness=Sortedness.UNSORTED,
        )
        catalog.register("R", mutated.r, replace=True)
        catalog.register("S", mutated.s, replace=True)
        catalog.add_foreign_key(ForeignKey("S", "R_ID", "R", "ID"))
        new = service.execute(SQL)
        assert new.plan_hash != old.plan_hash
        assert new.spec_fingerprint == old.spec_fingerprint
        assert new.catalog_version > old.catalog_version
        for row in synthetic_service_rows(new, 24, 0.032, 0.001, rng):
            log.append(row)
        service.shutdown()

        sentinel = Sentinel(
            config=SentinelConfig(min_samples=8, window=16)
        )
        alerts = sentinel.evaluate_log(log.entries(), chunk=16)
        by_kind = {alert.kind: alert for alert in alerts}

        flip = by_kind["plan_flip"]
        assert flip.spec_fingerprint == old.spec_fingerprint
        assert flip.old_plan_hash == old.plan_hash
        assert flip.new_plan_hash == new.plan_hash
        assert flip.new_catalog_version > flip.old_catalog_version

        drift = by_kind["latency_drift"]
        assert drift.spec_fingerprint == old.spec_fingerprint
        assert drift.ratio == pytest.approx(3.2, rel=0.15)
        assert drift.severity == "critical"
        assert drift.trace_ids  # exemplars point at offending requests

    def test_stable_workload_replay_raises_nothing(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        set_query_log(log)
        scenario = make_join_scenario(
            n_r=2_000, n_s=4_000, num_groups=500, seed=1
        )
        service = QueryService(scenario.build_catalog(), ServiceConfig())
        rng = random.Random(11)
        outcome = service.execute(SQL)
        for row in synthetic_service_rows(outcome, 220, 0.010, 0.001, rng):
            log.append(row)
        service.shutdown()

        entries = log.entries()
        assert len(entries) >= 200
        sentinel = Sentinel(
            config=SentinelConfig(min_samples=8, window=16)
        )
        assert sentinel.evaluate_log(entries, chunk=16) == []

    def test_critical_alert_advises_degraded_admissions(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        set_query_log(log)
        scenario = make_join_scenario(
            n_r=2_000, n_s=4_000, num_groups=500, seed=1
        )
        config = ServiceConfig(
            sentinel=SentinelConfig(min_samples=8, window=16),
            sentinel_degrade_on_critical=True,
        )
        service = QueryService(scenario.build_catalog(), config)
        assert service.sentinel_thread is not None
        rng = random.Random(3)

        outcome = service.execute(SQL)
        for row in synthetic_service_rows(outcome, 40, 0.010, 0.001, rng):
            log.append(row)
        service.sentinel_thread.tick()
        assert service.admission.state() == "accepting"

        for row in synthetic_service_rows(outcome, 24, 0.040, 0.001, rng):
            log.append(row)
        alerts = service.sentinel_thread.tick()
        assert any(a.severity == "critical" for a in alerts)
        # The advisory flips posture: new admissions run degraded.
        assert service.admission.state() == "degraded"
        degraded_outcome = service.execute(SQL)
        assert degraded_outcome.degraded
        assert service.health()["sentinel"]["fresh_critical"]
        service.shutdown()

    def test_service_health_and_baseline_persistence(self, tmp_path):
        log = QueryLog(tmp_path / "log.jsonl")
        set_query_log(log)
        scenario = make_join_scenario(
            n_r=2_000, n_s=4_000, num_groups=500, seed=1
        )
        baseline_path = tmp_path / "baselines.json"
        service = QueryService(
            scenario.build_catalog(),
            ServiceConfig(sentinel_baseline_path=str(baseline_path)),
        )
        service.execute(SQL)
        service.sentinel_thread.tick()
        health = service.health()["sentinel"]
        assert health["enabled"]
        assert health["fingerprints"] == 1
        service.shutdown()
        assert baseline_path.exists()
        # A fresh service resumes from the persisted baselines.
        from repro.obs.sentinel import BaselineStore

        assert len(BaselineStore(baseline_path)) == 1
