"""End-to-end integration: SQL -> optimise -> execute == naive truth.

The strongest guarantee in the suite: for randomly generated data
properties and a family of queries, whatever plan either optimiser picks,
executing it (with runtime precondition validation enabled) must
reproduce the naive evaluator's result, and DQO's estimated cost never
exceeds SQO's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute
from repro.logical import evaluate_naive
from repro.sql import plan_query

QUERIES = [
    "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A",
    "SELECT A, COUNT(*) AS c, SUM(B) AS s FROM R JOIN S ON ID = R_ID GROUP BY A",
    "SELECT A, MIN(B) AS lo, MAX(B) AS hi, AVG(B) AS m "
    "FROM R JOIN S ON ID = R_ID GROUP BY A",
    "SELECT A, COUNT(*) FROM R GROUP BY A",
    "SELECT A, SUM(ID) AS s FROM R WHERE ID >= 50 GROUP BY A ORDER BY A LIMIT 10",
    "SELECT R.ID, S.B FROM R JOIN S ON R.ID = S.R_ID WHERE S.B < 300",
]


@settings(max_examples=25, deadline=None)
@given(
    r_sorted=st.booleans(),
    s_sorted=st.booleans(),
    dense=st.booleans(),
    query_index=st.integers(0, len(QUERIES) - 1),
    seed=st.integers(0, 50),
)
def test_optimised_plans_match_naive(r_sorted, s_sorted, dense, query_index, seed):
    scenario = make_join_scenario(
        n_r=300,
        n_s=700,
        num_groups=30,
        r_sortedness=Sortedness.SORTED if r_sorted else Sortedness.UNSORTED,
        s_sortedness=Sortedness.SORTED if s_sorted else Sortedness.UNSORTED,
        density=Density.DENSE if dense else Density.SPARSE,
        seed=seed,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERIES[query_index], catalog)
    truth = evaluate_naive(logical, catalog)
    sqo = optimize_sqo(logical, catalog)
    dqo = optimize_dqo(logical, catalog)
    # Deep optimisation never costs more than shallow (superset space).
    assert dqo.cost <= sqo.cost + 1e-9
    for result in (sqo, dqo):
        output = execute(to_operator(result.plan, catalog, validate=True))
        assert output.equals_unordered(truth)


def test_claimed_properties_hold_on_executed_output(paper_query):
    """A plan claiming sorted output must actually emit sorted rows."""
    catalog = make_join_scenario(
        n_r=400, n_s=900, num_groups=40, seed=2
    ).build_catalog()
    logical = plan_query(paper_query, catalog)
    result = optimize_dqo(logical, catalog)
    output = execute(to_operator(result.plan, catalog, validate=True))
    for column in result.plan.properties.sorted_on:
        if column in output.schema:
            values = output[column]
            assert bool(np.all(values[:-1] <= values[1:])), column


def test_sqo_dqo_same_answer_different_cost(paper_query):
    catalog = make_join_scenario(
        n_r=500,
        n_s=1_000,
        num_groups=50,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=8,
    ).build_catalog()
    logical = plan_query(paper_query, catalog)
    sqo = optimize_sqo(logical, catalog)
    dqo = optimize_dqo(logical, catalog)
    assert dqo.cost < sqo.cost  # the paper's dense-unsorted 4x case
    sqo_output = execute(to_operator(sqo.plan, catalog)).sort_by(["R.A"])
    dqo_output = execute(to_operator(dqo.plan, catalog)).sort_by(["R.A"])
    assert sqo_output.equals(dqo_output)
