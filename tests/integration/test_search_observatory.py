"""The search observatory end to end, on a three-join star query.

This is the issue's acceptance gauntlet. On `SELECT D0.A, COUNT(*)
FROM D0 JOIN FACT JOIN D1 JOIN D2 ... GROUP BY D0.A`:

(a) a journalled optimisation *replays*: the trace alone reconstructs
    the chosen plan and every runner-up's cause of death (who killed
    whom, dominance edge by dominance edge);
(b) ``explain_why`` names the decisive Table-2 cost term behind every
    join/group-by decision of the winner;
(c) a what-if overlay that flips the plan agrees exactly with direct
    re-optimisation over a catalog whose statistics were truly mutated
    — the overlay is a lens, never a second optimiser;
and tracing is an observer: untraced, disabled-trace, and live-trace
runs pick bit-identical plans.
"""

import pytest

from repro import (
    disable_plan_cache,
    enable_plan_cache,
    optimize_dqo,
    plan_query,
)
from repro.datagen import Density, Sortedness, make_star_scenario
from repro.datagen.star import DimensionSpec
from repro.obs.search import (
    SearchTrace,
    StatisticsOverlay,
    explain_why,
    replay,
    set_search_trace,
    trace_search,
    whatif,
)


@pytest.fixture(scope="module")
def star():
    return make_star_scenario()


@pytest.fixture(scope="module")
def star_catalog(star):
    return star.build_catalog()


@pytest.fixture(scope="module")
def star_sql(star):
    sql = star.join_query(0)
    assert sql.count("JOIN") == 3
    return sql


@pytest.fixture
def no_plan_cache():
    disable_plan_cache()
    yield
    enable_plan_cache()


class TestReplay:
    def test_journal_reconstructs_chosen_plan_and_every_death(
        self, no_plan_cache, star_catalog, star_sql
    ):
        with trace_search() as trace:
            result = optimize_dqo(
                plan_query(star_sql, star_catalog), star_catalog
            )
        rep = replay(trace)
        assert rep["complete"] is True
        # The journal alone names the winner...
        assert rep["chosen"]["fingerprint"] == result.plan_fingerprint
        assert rep["chosen"]["cost"] == pytest.approx(result.cost)
        # ...and accounts for every candidate: alive on some frontier,
        # or dead with a recorded cause and killer.
        alive = {
            entry_id
            for frontier in rep["frontiers"].values()
            for entry_id in frontier
        }
        assert rep["candidates"]
        assert rep["deaths"]
        for entry_id in rep["candidates"]:
            assert entry_id in alive or entry_id in rep["deaths"]
        for death in rep["deaths"].values():
            assert death["cause"] in ("dominated", "displaced", "truncated")
            assert death["by"] is not None

    def test_runner_up_finalists_rank_behind_the_chosen(
        self, no_plan_cache, star_catalog, star_sql
    ):
        with trace_search() as trace:
            optimize_dqo(plan_query(star_sql, star_catalog), star_catalog)
        finalists = replay(trace)["finalists"]
        assert finalists[0]["rank"] == 0
        costs = [finalist["cost"] for finalist in finalists]
        assert costs == sorted(costs)


class TestExplainWhy:
    def test_names_the_decisive_term_for_every_decision(
        self, star_catalog, star_sql
    ):
        report = explain_why(star_sql, star_catalog)
        # Three joins and one group-by, each attributed.
        assert len(report.decisions) == 4
        for decision in report.decisions:
            assert decision.decisive_term
            assert decision.terms
            assert decision.facts
            assert decision.rivals
        assert report.deaths
        for death in report.deaths:
            assert death["cause"]
        rendered = report.render()
        assert "EXPLAIN WHY" in rendered
        assert report.decisions[0].decisive_term in rendered


class TestWhatIfParity:
    def test_density_flip_matches_a_truly_sparse_catalog(
        self, star_catalog, star_sql
    ):
        overlay = (
            StatisticsOverlay()
            .set_dense("D0", "ID", False)
            .set_dense("D0", "A", False)
        )
        report = whatif(star_sql, star_catalog, overlay)
        assert report.plan_changed
        assert report.diff["changed"]
        truth_catalog = make_star_scenario(
            dimensions=[
                DimensionSpec(5_000, 500, density=Density.SPARSE),
                DimensionSpec(8_000, 800, sortedness=Sortedness.UNSORTED),
                DimensionSpec(3_000, 300, density=Density.SPARSE),
            ]
        ).build_catalog()
        truth = optimize_dqo(
            plan_query(star_sql, truth_catalog), truth_catalog
        )
        assert report.hypothetical["fingerprint"] == truth.plan_fingerprint

    def test_no_flip_still_agrees_with_direct_reoptimisation(
        self, star_catalog, star_sql
    ):
        """Shuffling the fact table leaves this star plan alone (it is
        hash-based below the top join) — parity must hold regardless."""
        overlay = StatisticsOverlay().set_shuffled("FACT")
        report = whatif(star_sql, star_catalog, overlay)
        hyp_catalog = overlay.apply(star_catalog)
        direct = optimize_dqo(
            plan_query(star_sql, hyp_catalog), hyp_catalog
        )
        assert report.hypothetical["fingerprint"] == direct.plan_fingerprint


class TestTracingIsAnObserver:
    def test_untraced_disabled_and_live_plans_are_bit_identical(
        self, no_plan_cache, star_catalog, star_sql
    ):
        logical = plan_query(star_sql, star_catalog)
        untraced = optimize_dqo(logical, star_catalog)

        disabled = SearchTrace()
        disabled.enabled = False
        set_search_trace(disabled)
        try:
            with_disabled = optimize_dqo(logical, star_catalog)
        finally:
            set_search_trace(None)

        with trace_search() as trace:
            live = optimize_dqo(logical, star_catalog)

        assert (
            untraced.plan_fingerprint
            == with_disabled.plan_fingerprint
            == live.plan_fingerprint
        )
        assert untraced.cost == pytest.approx(live.cost)
        assert untraced.plan.describe() == live.plan.describe()
        assert disabled.summary()["events"] == 0
        assert trace.summary()["generated"] > 0
