"""Shared fixtures: small deterministic datasets and catalogs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.storage import Catalog, Table


@pytest.fixture
def memory_storage(monkeypatch):
    """Pin the in-memory storage path for this test.

    Used by paper-exact cost assertions (Table 2 has no I/O terms, so
    ``REPRO_STORAGE=disk`` legitimately shifts costs) and by tests of
    in-memory-only machinery (shared-memory column store, overlay array
    sharing) whose semantics do not apply to spilled tables.
    """
    monkeypatch.setenv("REPRO_STORAGE", "memory")


@pytest.fixture
def rng():
    """A deterministic RNG for ad-hoc data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_table():
    """A tiny two-column table with known contents."""
    return Table.from_arrays(
        {
            "k": np.array([3, 1, 2, 1, 3, 3], dtype=np.int64),
            "v": np.array([10, 20, 30, 40, 50, 60], dtype=np.int64),
        }
    )


@pytest.fixture
def grouping_datasets():
    """All four §4.1 dataset configurations at test scale."""
    return {
        (sortedness, density): make_grouping_dataset(
            5_000, 40, sortedness=sortedness, density=density, seed=7
        )
        for sortedness in Sortedness
        for density in Density
    }


@pytest.fixture
def join_catalog():
    """A reduced-size §4.3 scenario catalog (R sorted, S sorted, dense)."""
    scenario = make_join_scenario(n_r=1_000, n_s=2_500, num_groups=100, seed=5)
    return scenario.build_catalog()


@pytest.fixture
def paper_query():
    """The §4.3 query, verbatim."""
    return "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
