"""Internal utilities: timers, array helpers, validation."""

import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    Timer,
    as_int_array,
    check_positive,
    check_probability,
    check_type,
    is_nondecreasing,
    time_callable,
)
from repro._util.arrays import runs_of


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009
        assert timer.elapsed_ms == pytest.approx(timer.elapsed * 1000)

    def test_time_callable_repeats_and_warmup(self):
        calls = []
        result = time_callable(lambda: calls.append(1) or 42, repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(result.samples) == 3
        assert result.last_result == 42
        assert result.best <= result.mean

    def test_time_callable_validates(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestTimingPercentiles:
    def _result(self, samples):
        from repro._util.timer import TimingResult

        return TimingResult(samples=samples)

    def test_median_odd(self):
        assert self._result([3.0, 1.0, 2.0]).median == 2.0

    def test_median_even_averages_midpoints(self):
        assert self._result([4.0, 1.0, 3.0, 2.0]).median == 2.5

    def test_median_single_sample(self):
        result = self._result([0.5])
        assert result.median == 0.5
        assert result.p95 == 0.5

    def test_p95_nearest_rank(self):
        # 20 samples: ceil(0.95 * 20) = 19 -> the 19th smallest.
        samples = [float(i) for i in range(1, 21)]
        assert self._result(samples).p95 == 19.0

    def test_p95_small_sample_is_max(self):
        assert self._result([1.0, 5.0, 2.0]).p95 == 5.0

    def test_ordering_invariants(self):
        result = self._result([5.0, 1.0, 4.0, 2.0, 3.0])
        assert result.best <= result.median <= result.p95
        assert result.p95 <= max(result.samples)

    @given(st.lists(st.floats(0.0, 1e3), min_size=1, max_size=50))
    def test_percentiles_within_range(self, samples):
        result = self._result(samples)
        assert min(samples) <= result.median <= max(samples)
        assert min(samples) <= result.p95 <= max(samples)


class TestArrays:
    def test_as_int_array_from_list(self):
        array = as_int_array([1, 2, 3])
        assert array.dtype == np.int64

    def test_as_int_array_from_integral_floats(self):
        array = as_int_array(np.array([1.0, 2.0]))
        assert array.tolist() == [1, 2]

    def test_as_int_array_rejects_fractions(self):
        with pytest.raises(ValueError, match="non-integral"):
            as_int_array(np.array([1.5]))

    def test_as_int_array_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            as_int_array(np.zeros((2, 2)))

    def test_is_nondecreasing(self):
        assert is_nondecreasing(np.array([1, 1, 2]))
        assert not is_nondecreasing(np.array([2, 1]))
        assert is_nondecreasing(np.empty(0))
        assert is_nondecreasing(np.array([5]))

    def test_runs_of(self):
        starts, values = runs_of(np.array([3, 3, 5, 5, 5, 3]))
        assert starts.tolist() == [0, 2, 5]
        assert values.tolist() == [3, 5, 3]

    def test_runs_of_empty(self):
        starts, values = runs_of(np.empty(0, dtype=np.int64))
        assert starts.size == 0 and values.size == 0

    @given(st.lists(st.integers(0, 5), max_size=100))
    def test_runs_reconstruct(self, values):
        array = np.array(values, dtype=np.int64)
        starts, run_values = runs_of(array)
        if array.size:
            boundaries = np.append(starts, array.size)
            lengths = np.diff(boundaries)
            assert np.array_equal(np.repeat(run_values, lengths), array)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        check_positive("x", 0, allow_zero=True)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1, allow_zero=True)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_check_type(self):
        check_type("v", 1, int)
        check_type("v", 1, (int, float))
        with pytest.raises(TypeError, match="v must be str"):
            check_type("v", 1, str)
