"""Ablation: Algorithmic Views on/off (§3).

Measures (a) end-to-end execution of the dense-unsorted §4.3 query with
and without a prebuilt SPH view artifact being available to waive the
join's build phase, and (b) the plan-cost delta the optimiser attributes
to the view.
"""

import pytest

from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.core import optimize_dqo, to_operator
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(scope="module")
def setting():
    scenario = make_join_scenario(
        n_r=100_000,
        n_s=200_000,
        num_groups=20_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    registry = AVRegistry(
        [materialize_view(catalog, ViewKind.SPH_ARRAY, "R", "ID")]
    )
    return catalog, registry


@pytest.mark.parametrize("with_views", [False, True], ids=["no-AVs", "with-AVs"])
def test_optimise_and_execute(benchmark, setting, with_views):
    catalog, registry = setting
    logical = plan_query(QUERY, catalog)

    def optimise_and_run():
        result = optimize_dqo(
            logical, catalog, views=registry if with_views else None
        )
        return execute(to_operator(result.plan, catalog))

    benchmark.group = "AVs ablation (optimise + execute)"
    table = benchmark(optimise_and_run)
    # Uniform FK references leave a few R.A values unreferenced.
    assert 0.9 * 20_000 <= table.num_rows <= 20_000


def test_view_credit_equals_build_phase(setting):
    catalog, registry = setting
    logical = plan_query(QUERY, catalog)
    without = optimize_dqo(logical, catalog)
    with_views = optimize_dqo(logical, catalog, views=registry)
    # SPHJ build phase = |R| = 100,000 cost units.
    assert without.cost - with_views.cost == pytest.approx(100_000.0)
