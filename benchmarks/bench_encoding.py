"""Extension bench: dictionary Algorithmic Views close the sparse gap.

§2.1: *"the keys of a dictionary-compressed column are a natural candidate
for [SPH] and can directly be used"*. The paper's Figure 5 reports 1x on
every sparse cell because SPH is inapplicable there; this bench shows a
dictionary AV on the grouping attribute re-opens the gap:

* pure grouping on sparse unsorted keys: HG (4·n) -> SPHG over codes (n),
  a 4x plan-cost cut, paid once offline;
* the §4.3 query's sparse/both-unsorted cell: 1.0x -> ~1.43x
  (SQO 900,000 vs DQO-with-view 630,000 = HJ + SPHG).

Execution (including the decode step) is verified against the naive
evaluator in ``tests/avs/test_dictionary_views.py``.
"""

import pytest

from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine import execute
from repro.sql import plan_query
from repro.storage import Catalog

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(scope="module")
def sparse_grouping():
    dataset = make_grouping_dataset(
        500_000, 20_000, Sortedness.UNSORTED, Density.SPARSE, seed=0
    )
    catalog = Catalog()
    catalog.register("T", dataset.to_table())
    registry = AVRegistry(
        [materialize_view(catalog, ViewKind.DICTIONARY, "T", "key")]
    )
    logical = plan_query(
        "SELECT key, COUNT(*) AS c, SUM(value) AS s FROM T GROUP BY key",
        catalog,
    )
    return catalog, registry, logical


@pytest.mark.parametrize("with_view", [False, True], ids=["plain", "dict-AV"])
def test_sparse_grouping_execution(benchmark, sparse_grouping, with_view):
    catalog, registry, logical = sparse_grouping
    views = registry if with_view else None
    plan = optimize_dqo(logical, catalog, views=views).plan
    operator = to_operator(plan, catalog, validate=False, views=views)
    benchmark.group = "dictionary AV: sparse grouping executed"
    result = benchmark(operator.to_table)
    assert result.num_rows == 20_000


def test_plan_cost_cut_is_4x(sparse_grouping):
    catalog, registry, logical = sparse_grouping
    plain = optimize_dqo(logical, catalog)
    with_view = optimize_dqo(logical, catalog, views=registry)
    assert plain.cost / with_view.cost == pytest.approx(4.0)


def test_sparse_figure5_cell_lifts_to_1_43x():
    catalog = make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.SPARSE,
    ).build_catalog()
    logical = plan_query(QUERY, catalog)
    registry = AVRegistry(
        [materialize_view(catalog, ViewKind.DICTIONARY, "R", "A")]
    )
    sqo = optimize_sqo(logical, catalog)
    dqo_plain = optimize_dqo(logical, catalog)
    dqo_view = optimize_dqo(logical, catalog, views=registry)
    assert sqo.cost / dqo_plain.cost == pytest.approx(1.0)  # the paper's 1x
    assert sqo.cost / dqo_view.cost == pytest.approx(900_000 / 630_000)


def test_offline_cost_amortises(sparse_grouping):
    """The view's build cost is recovered after a few queries."""
    catalog, registry, logical = sparse_grouping
    plain = optimize_dqo(logical, catalog)
    with_view = optimize_dqo(logical, catalog, views=registry)
    per_query_saving = plain.cost - with_view.cost
    build_cost = registry.total_build_cost()
    queries_to_amortise = build_cost / per_query_saving
    assert queries_to_amortise < 10
