"""Extension bench: Figure 4 under skew.

The paper's §4.1 datasets are uniform. §2.2 lists further statistical
properties DQO should track; skew is the obvious next one. This bench
re-runs the unsorted-dense panel under Zipf-distributed keys and checks
which Figure 4 conclusions survive:

* at moderate skew SPHG stays the winner (distribution-oblivious slots);
* under *heavy* skew the realised key domain develops gaps (tail groups
  are never drawn), so SPHG's density precondition fails — skew silently
  converts a dense workload into a sparse one, a property interaction
  the optimiser must re-check rather than assume (asserted).
"""

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.datagen import zipf_keys
from repro.engine import GroupingAlgorithm, group_by
from repro.errors import PreconditionError

GROUPS = 10_000
#: skews at which the realised domain stays dense enough for SPHG.
MODERATE_SKEWS = [0.0, 0.5]
HEAVY_SKEW = 1.5


def _keys(bench_rows, skew):
    rng = np.random.default_rng(0)
    return zipf_keys(min(bench_rows, 1_000_000), GROUPS, skew, rng)


@pytest.mark.parametrize("skew", MODERATE_SKEWS)
@pytest.mark.parametrize(
    "algorithm",
    [GroupingAlgorithm.HG, GroupingAlgorithm.SPHG, GroupingAlgorithm.SOG],
    ids=lambda a: a.name,
)
def test_grouping_under_moderate_skew(benchmark, bench_rows, skew, algorithm):
    keys = _keys(bench_rows, skew)
    benchmark.group = f"figure4 under Zipf skew {skew}"
    result = benchmark(group_by, keys, None, algorithm, GROUPS)
    assert result.num_groups >= 1


@pytest.mark.parametrize(
    "algorithm",
    [GroupingAlgorithm.HG, GroupingAlgorithm.SOG, GroupingAlgorithm.BSG],
    ids=lambda a: a.name,
)
def test_grouping_under_heavy_skew(benchmark, bench_rows, algorithm):
    keys = _keys(bench_rows, HEAVY_SKEW)
    benchmark.group = f"figure4 under Zipf skew {HEAVY_SKEW}"
    result = benchmark(group_by, keys, None, algorithm, GROUPS)
    assert result.num_groups >= 1


def test_sphg_ordering_is_skew_invariant_while_applicable(bench_rows):
    for skew in MODERATE_SKEWS:
        keys = _keys(bench_rows, skew)
        sphg = time_callable(
            lambda k=keys: group_by(k, None, GroupingAlgorithm.SPHG),
            repeats=2,
        ).best
        hg = time_callable(
            lambda k=keys: group_by(
                k, None, GroupingAlgorithm.HG, num_distinct_hint=GROUPS
            ),
            repeats=2,
        ).best
        assert sphg < hg, f"SPHG must stay the winner at skew {skew}"


def test_heavy_skew_breaks_sphg_precondition(bench_rows):
    """Skew interacts with density: the tail of a Zipf(1.5) distribution
    is never drawn, so the realised domain has gaps and SPHG must refuse
    — the density property is a fact about the *data at hand*, not about
    the nominal domain."""
    keys = _keys(min(bench_rows, 300_000), HEAVY_SKEW)
    realised = np.unique(keys).size
    domain = int(keys.max()) - int(keys.min()) + 1
    assert realised / domain < 0.5
    with pytest.raises(PreconditionError, match="dense"):
        group_by(keys, None, GroupingAlgorithm.SPHG)
