"""Ablation: AVSP selection policies (§3 / §6, "Algorithmic Views
Selection").

Compares no-views / greedy / exact selection over a generated workload:
solver wall-clock (benchmark groups) plus an assertion chain
``exact benefit >= greedy benefit >= 0`` and a budget sweep showing
benefit is monotone in budget (the workload-dependence the paper
emphasises is visible in the numbers EXPERIMENTS.md records).
"""

import pytest

from repro.avs import (
    enumerate_candidates,
    exhaustive_avsp,
    greedy_avsp,
    workload_cost,
)
from repro.datagen import make_workload

BUDGET = 4_000_000.0


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_tables=3, num_queries=30, seed=11)


@pytest.fixture(scope="module")
def large_workload():
    return make_workload(num_tables=10, num_queries=120, seed=12)


def test_greedy_solver_time(benchmark, large_workload):
    benchmark.group = "AVSP solver"
    result = benchmark(greedy_avsp, large_workload, BUDGET)
    assert result.benefit >= 0


def test_exact_solver_time(benchmark, workload):
    benchmark.group = "AVSP solver"
    result = benchmark(exhaustive_avsp, workload, BUDGET)
    assert result.benefit >= 0


def test_exact_dominates_greedy_dominates_nothing(workload):
    greedy = greedy_avsp(workload, budget=BUDGET)
    exact = exhaustive_avsp(workload, budget=BUDGET)
    base = workload_cost(workload)
    assert base == pytest.approx(greedy.cost_without_views)
    assert 0 <= greedy.benefit <= exact.benefit + 1e-9


def test_benefit_monotone_in_budget(workload):
    benefits = [
        greedy_avsp(workload, budget=budget).benefit
        for budget in (0.0, 1_000_000.0, 4_000_000.0, 16_000_000.0)
    ]
    assert benefits == sorted(benefits)
    assert benefits[0] == 0.0


def test_candidate_space_scales_with_pool(large_workload, workload):
    assert len(enumerate_candidates(large_workload)) > len(
        enumerate_candidates(workload)
    )
