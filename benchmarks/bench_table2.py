"""Table 2: cost-model evaluation speed and Figure 5 arithmetic audit.

Table 2 is an input to Figure 5 rather than a measured result; its
"benchmark" is (a) the audit that the published improvement factors
follow from the formulas at the reconstructed cardinalities, and (b) the
cost of evaluating the model itself (relevant because DQO evaluates it
once per candidate sub-plan).
"""

import pytest

from repro.bench.table2 import render_table2
from repro.core import PaperCostModel
from repro.datagen.join import PAPER_NUM_GROUPS, PAPER_R_ROWS, PAPER_S_ROWS
from repro.engine import GroupingAlgorithm, JoinAlgorithm


def test_cost_model_evaluation_speed(benchmark):
    model = PaperCostModel()

    def evaluate_all():
        total = 0.0
        for grouping in GroupingAlgorithm:
            total += model.grouping_cost(
                grouping, PAPER_S_ROWS, PAPER_NUM_GROUPS
            )
        for join in JoinAlgorithm:
            total += model.join_cost(
                join, PAPER_R_ROWS, PAPER_S_ROWS, PAPER_NUM_GROUPS
            )
        return total

    benchmark.group = "table2"
    total = benchmark(evaluate_all)
    assert total > 0


def test_figure5_arithmetic_audit():
    model = PaperCostModel()
    hj_hg = model.join_cost(
        JoinAlgorithm.HJ, PAPER_R_ROWS, PAPER_S_ROWS, PAPER_NUM_GROUPS
    ) + model.grouping_cost(GroupingAlgorithm.HG, PAPER_S_ROWS, PAPER_NUM_GROUPS)
    hj_og = model.join_cost(
        JoinAlgorithm.HJ, PAPER_R_ROWS, PAPER_S_ROWS, PAPER_NUM_GROUPS
    ) + model.grouping_cost(GroupingAlgorithm.OG, PAPER_S_ROWS, PAPER_NUM_GROUPS)
    sph = model.join_cost(
        JoinAlgorithm.SPHJ, PAPER_R_ROWS, PAPER_S_ROWS, PAPER_NUM_GROUPS
    ) + model.grouping_cost(
        GroupingAlgorithm.SPHG, PAPER_S_ROWS, PAPER_NUM_GROUPS
    )
    assert hj_hg == 900_000
    assert hj_og == 630_000
    assert sph == 225_000
    assert hj_hg / sph == pytest.approx(4.0)
    assert hj_og / sph == pytest.approx(2.8)


def test_render_table2_is_complete():
    text = render_table2()
    for name in ("HG", "OG", "SOG", "SPHG", "BSG", "HJ", "OJ", "SOJ", "SPHJ", "BSJ"):
        assert name in text
