"""Shared benchmark configuration.

Benchmark scale is reduced relative to the paper's 100M rows (DESIGN.md
substitution #2) but large enough that the Figure 4 shapes are stable.
Override with ``REPRO_BENCH_ROWS``.
"""

import os

import pytest

#: rows per grouping benchmark (paper: 100,000,000).
BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1000000"))


@pytest.fixture(scope="session")
def bench_rows():
    return BENCH_ROWS
