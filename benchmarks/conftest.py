"""Shared benchmark configuration.

Benchmark scale is reduced relative to the paper's 100M rows (DESIGN.md
substitution #2) but large enough that the Figure 4 shapes are stable.
Override with ``REPRO_BENCH_ROWS``.
"""

import os
from pathlib import Path

import pytest

from repro.bench.reporting import write_json_artifact

#: rows per grouping benchmark (paper: 100,000,000).
BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1000000"))


@pytest.fixture(scope="session")
def bench_rows():
    return BENCH_ROWS


@pytest.fixture
def bench_artifact():
    """Write a machine-readable JSON record of a benchmark run.

    Returns ``record(name, timings, metrics=None, meta=None)``. When
    ``REPRO_BENCH_ARTIFACTS`` names a directory, the record is written
    there as ``<name>.json`` (slashes become underscores) and the path
    is returned; otherwise the call is a no-op returning None, so
    benchmarks can record unconditionally.
    """

    def record(name, timings, metrics=None, meta=None):
        directory = os.environ.get("REPRO_BENCH_ARTIFACTS")
        if not directory:
            return None
        filename = name.replace("/", "_").replace(" ", "_") + ".json"
        return write_json_artifact(
            Path(directory) / filename, name, timings, metrics, meta
        )

    return record
