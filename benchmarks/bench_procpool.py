"""Extension bench: the process execution backend's scaling curve.

Times the same >= 1M-row grouping and join workloads on all three
execution strategies — serial kernel, thread morsel pool, process pool
with shared-memory columns — at 1/2/4 workers, and records the full
curve as a JSON artifact. The process backend's claim (>= 2x over serial
at 4 workers on a GIL-bound workload) is asserted only on hosts that
actually have >= 4 cores; every artifact carries an explicit
``speedup_assertion`` marker so a skipped assertion can never read as a
passing one. Bit-identity against the serial kernel and a zero-leak
``/dev/shm`` sweep are asserted unconditionally.
"""

import os

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.joins import JoinAlgorithm, join
from repro.engine.kernels.parallel import parallel_group_by, parallel_join
from repro.engine.procpool import (
    leaked_segments,
    process_group_by,
    process_join,
    shutdown_process_pool,
)

GROUPS = 10_000
WORKER_COUNTS = [1, 2, 4]
#: speedup floor asserted for 4-process-worker grouping on >= 4 cores.
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def dataset(bench_rows):
    return make_grouping_dataset(
        max(min(bench_rows, 4_000_000), 1_000_000),
        GROUPS,
        Sortedness.UNSORTED,
        Density.DENSE,
        seed=0,
    )


@pytest.fixture(scope="module")
def join_scenario(bench_rows):
    rows = max(min(bench_rows, 4_000_000), 1_000_000)
    return make_join_scenario(
        n_r=rows // 4,
        n_s=rows,
        num_groups=GROUPS,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=0,
    )


@pytest.fixture(autouse=True, scope="module")
def _pool_teardown():
    """Fork workers for cheap spin-up; leak-free shutdown is asserted."""
    previous = os.environ.get("REPRO_PROC_START")
    os.environ["REPRO_PROC_START"] = "fork"
    shutdown_process_pool()
    yield
    shutdown_process_pool()
    if previous is None:
        os.environ.pop("REPRO_PROC_START", None)
    else:
        os.environ["REPRO_PROC_START"] = previous
    assert leaked_segments() == []


def test_process_backend_identity(dataset, join_scenario):
    """Before any timing claim: the process kernels are bit-identical
    to serial (grouping up to the merge's key sort, join exactly)."""
    serial = group_by(
        dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
        num_distinct_hint=GROUPS,
    )
    proc = process_group_by(
        dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
        shards=8, num_distinct_hint=GROUPS, workers=2,
    )
    order_s = np.argsort(serial.keys, kind="stable")
    order_p = np.argsort(proc.keys, kind="stable")
    assert np.array_equal(proc.keys[order_p], serial.keys[order_s])
    assert np.array_equal(proc.counts[order_p], serial.counts[order_s])
    assert np.array_equal(proc.sums[order_p], serial.sums[order_s])

    build = join_scenario.r["ID"]
    probe = join_scenario.s["R_ID"]
    serial_join = join(build, probe, JoinAlgorithm.HJ)
    proc_join = process_join(build, probe, JoinAlgorithm.HJ, shards=8, workers=2)
    assert np.array_equal(proc_join.left_indices, serial_join.left_indices)
    assert np.array_equal(proc_join.right_indices, serial_join.right_indices)


def test_scaling_curve_serial_thread_process(
    dataset, join_scenario, bench_artifact
):
    """The tentpole's scaling claim: serial vs thread pool vs process
    pool at 1/2/4 workers on the same >= 1M-row workloads."""
    cores = os.cpu_count() or 1
    timings: dict = {}

    timings["grouping/serial"] = time_callable(
        lambda: group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            num_distinct_hint=GROUPS,
        ),
        repeats=3, warmup=1,
    )
    build = join_scenario.r["ID"]
    probe = join_scenario.s["R_ID"]
    timings["join/serial"] = time_callable(
        lambda: join(build, probe, JoinAlgorithm.HJ), repeats=3, warmup=1
    )
    for workers in WORKER_COUNTS:
        timings[f"grouping/thread{workers}"] = time_callable(
            lambda w=workers: parallel_group_by(
                dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
                shards=8, num_distinct_hint=GROUPS, workers=w,
            ),
            repeats=3, warmup=1,
        )
        timings[f"grouping/process{workers}"] = time_callable(
            lambda w=workers: process_group_by(
                dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
                shards=8, num_distinct_hint=GROUPS, workers=w,
            ),
            repeats=3, warmup=1,
        )
        timings[f"join/thread{workers}"] = time_callable(
            lambda w=workers: parallel_join(
                build, probe, JoinAlgorithm.HJ, shards=8, workers=w
            ),
            repeats=3, warmup=1,
        )
        timings[f"join/process{workers}"] = time_callable(
            lambda w=workers: process_join(
                build, probe, JoinAlgorithm.HJ, shards=8, workers=w
            ),
            repeats=3, warmup=1,
        )

    speedups = {
        f"{kind}/{backend}{workers}": (
            timings[f"{kind}/serial"].best
            / timings[f"{kind}/{backend}{workers}"].best
        )
        for kind in ("grouping", "join")
        for backend in ("thread", "process")
        for workers in WORKER_COUNTS
    }
    for label, speedup in sorted(speedups.items()):
        print(f"  speedup {label}: {speedup:.2f}x")
    bench_artifact(
        "procpool/scaling",
        timings,
        meta={
            "rows": dataset.num_rows,
            "cpu_count": cores,
            "workers": WORKER_COUNTS,
            "speedups": speedups,
            "speedup_assertion": (
                "enforced" if cores >= 4 else f"skipped: {cores} cores"
            ),
        },
    )
    if cores >= 4:
        assert speedups["grouping/process4"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x process-backend grouping "
            f"speedup at 4 workers on a {cores}-core host, got "
            f"{speedups['grouping/process4']:.2f}x"
        )
    # Shared-memory publication amortises: even serial-equivalent runs
    # must not collapse under IPC overhead (one worker does the same
    # kernel work plus segment publication and a merge).
    assert speedups["grouping/process1"] > 1 / 5.0
