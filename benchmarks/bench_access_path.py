"""Extension bench: the §1 access-path decision, measured.

"Unclustered B-tree vs scan" is the paper's opening example of a physical
decision. Under :class:`AccessPathCostModel` the optimiser flips between
the two at ~25% selectivity; this bench executes both access paths at
several selectivities and verifies the optimiser's pick is also the
wall-clock winner at the extremes.
"""

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.avs import AVRegistry, ViewKind, materialize_view
from repro.core import DynamicProgrammingOptimizer, dqo_config, to_operator
from repro.core.cost import AccessPathCostModel
from repro.engine import execute
from repro.sql import plan_query
from repro.storage import Catalog, Table

ROWS = 500_000


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(1)
    catalog = Catalog()
    catalog.register(
        "T",
        Table.from_arrays(
            {"k": rng.permutation(ROWS), "v": rng.integers(0, 1_000, ROWS)}
        ),
    )
    registry = AVRegistry([materialize_view(catalog, ViewKind.BTREE, "T", "k")])
    return catalog, registry


def _plan_with(catalog, registry, sql, use_views):
    optimizer = DynamicProgrammingOptimizer(
        catalog,
        AccessPathCostModel(),
        dqo_config(views=registry if use_views else None),
    )
    result = optimizer.optimize(plan_query(sql, catalog))
    return to_operator(result.plan, catalog, validate=False, views=registry)


@pytest.mark.parametrize("selectivity_pct", [1, 10, 50])
@pytest.mark.parametrize("path", ["scan", "index"], ids=["full-scan", "btree"])
def test_access_path_execution(benchmark, setting, selectivity_pct, path):
    catalog, registry = setting
    bound = ROWS * selectivity_pct // 100
    sql = f"SELECT k, v FROM T WHERE k < {bound}"
    operator = _plan_with(catalog, registry, sql, use_views=(path == "index"))
    benchmark.group = f"access path @ {selectivity_pct}% selectivity"
    result = benchmark(operator.to_table)
    assert result.num_rows == bound


def test_optimiser_pick_wins_at_extremes(setting):
    catalog, registry = setting
    for selectivity_pct, expect_index_faster in ((1, True), (80, False)):
        bound = ROWS * selectivity_pct // 100
        sql = f"SELECT k, v FROM T WHERE k < {bound}"
        index_operator = _plan_with(catalog, registry, sql, use_views=True)
        scan_operator = _plan_with(catalog, registry, sql, use_views=False)
        index_seconds = time_callable(index_operator.to_table, repeats=3).best
        scan_seconds = time_callable(scan_operator.to_table, repeats=3).best
        if expect_index_faster:
            assert index_seconds < scan_seconds
        else:
            # At 80% the optimiser refuses the index; confirm the index
            # path would indeed not have been a clear win.
            assert scan_seconds < index_seconds * 4
