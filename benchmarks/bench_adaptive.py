"""Ablation: adaptive partial AV convergence (§6, Runtime-Adaptivity).

Benchmarks range queries against (a) the adaptive cracking view at three
stages of convergence and (b) a plain full scan, and asserts the adaptive
view's per-query cost drops as the workload proceeds — the "continuous
indexing decision" payoff.
"""

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.avs import AdaptiveIndexView
from repro.storage import Catalog, Table

ROWS = 300_000


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    cat.register(
        "T",
        Table.from_arrays(
            {"v": np.random.default_rng(5).permutation(ROWS)}
        ),
    )
    return cat


def _warm_view(catalog, warm_queries: int) -> AdaptiveIndexView:
    view = AdaptiveIndexView(catalog, "T", "v")
    rng = np.random.default_rng(1)
    for __ in range(warm_queries):
        low = int(rng.integers(0, ROWS - 1_000))
        view.range_query(low, low + 500)
    return view


@pytest.mark.parametrize("warm", [0, 200, 2_000], ids=["cold", "warm", "hot"])
def test_adaptive_query_time(benchmark, catalog, warm):
    view = _warm_view(catalog, warm)
    rng = np.random.default_rng(2)
    lows = rng.integers(0, ROWS - 1_000, 50)

    def query_batch():
        total = 0
        for low in lows:
            total += view.range_query(int(low), int(low) + 500).size
        return total

    benchmark.group = "adaptive AV convergence"
    assert benchmark(query_batch) > 0


def test_full_scan_baseline(benchmark, catalog):
    values = catalog.table("T")["v"]
    rng = np.random.default_rng(2)
    lows = rng.integers(0, ROWS - 1_000, 50)

    def scan_batch():
        total = 0
        for low in lows:
            mask = (values >= low) & (values <= low + 500)
            total += int(np.count_nonzero(mask))
        return total

    benchmark.group = "adaptive AV convergence"
    assert benchmark(scan_batch) > 0


def test_cracking_work_front_loaded(catalog):
    """Per-query cracking work decays: the first queries pay, later ones
    ride nearly free. The workload draws range bounds from a finite
    predicate pool (as real dashboards do), so pivots start repeating
    and the crack count saturates."""
    view = AdaptiveIndexView(catalog, "T", "v")
    rng = np.random.default_rng(3)
    predicate_pool = rng.integers(0, ROWS - 1_000, 120)
    crack_counts = []
    for __ in range(500):
        low = int(predicate_pool[rng.integers(0, predicate_pool.size)])
        view.range_query(low, low + 500)
        crack_counts.append(view.crack_count)
    first_100 = crack_counts[99]
    last_100 = crack_counts[499] - crack_counts[399]
    assert first_100 > last_100
