"""Emit ``BENCH_baseline.json`` — the perf-trajectory seed artifact.

Measures the same quantities as ``bench_obs_overhead.py`` (execute()
with observability disabled/enabled, ``explain_analyze``) and
``bench_figure4.py`` (grouping kernel best-times per panel/algorithm)
into one :func:`repro.bench.reporting.write_json_artifact` record, so
``python -m repro.bench.compare BENCH_baseline.json current.json`` has a
committed baseline to gate against. A metrics snapshot from the
instrumented run (including the ``optimizer.qerror`` histogram) rides
along in the artifact.

Absolute times are machine-dependent — regenerate the baseline on the
machine that will run the gate::

    python benchmarks/make_baseline.py --rows 300000 --out BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from repro import (
    Density,
    Sortedness,
    disable_observability,
    execute,
    make_grouping_dataset,
    make_join_scenario,
    optimize_dqo,
    plan_query,
    to_operator,
)
from repro._util.timer import time_callable
from repro.bench.figure4 import applicable_algorithms
from repro.bench.reporting import write_json_artifact
from repro.engine import GroupingAlgorithm, group_by
from repro.engine.executor import explain_analyze
from repro.obs import FeedbackStore, capture_observability, merge_snapshots

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
PANELS = [
    (Sortedness.SORTED, Density.DENSE),
    (Sortedness.SORTED, Density.SPARSE),
    (Sortedness.UNSORTED, Density.DENSE),
    (Sortedness.UNSORTED, Density.SPARSE),
]
GROUPS = 10_000


def measure_obs_overhead(timings: dict) -> dict:
    """The ``bench_obs_overhead.py`` quantities; returns the metrics
    snapshot of the instrumented run."""
    disable_observability()
    scenario = make_join_scenario(
        n_r=45_000,
        n_s=90_000,
        num_groups=20_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    plan = to_operator(optimize_dqo(plan_query(QUERY, catalog), catalog).plan, catalog)

    timings["obs/seed_to_table"] = time_callable(
        lambda: plan.to_table(), repeats=9, warmup=2
    )
    timings["obs/execute_disabled"] = time_callable(
        lambda: execute(plan), repeats=9, warmup=2
    )
    feedback = FeedbackStore()
    with capture_observability() as (metrics, __):
        timings["obs/execute_enabled"] = time_callable(
            lambda: execute(plan), repeats=5, warmup=1
        )
        timings["obs/explain_analyze"] = time_callable(
            lambda: explain_analyze(plan, feedback=feedback).table,
            repeats=5,
            warmup=1,
        )
        snapshot = metrics.snapshot()
    print(feedback.render())
    return snapshot


def measure_figure4(timings: dict, rows: int) -> None:
    """Best-time per (panel, algorithm) at the paper's mid-range group
    count — the ``bench_figure4.py`` grid."""
    for sortedness, density in PANELS:
        dataset = make_grouping_dataset(
            rows, GROUPS, sortedness=sortedness, density=density, seed=0
        )
        for algorithm in applicable_algorithms(sortedness, density):
            label = f"figure4/{sortedness.value}-{density.value}/{algorithm.name}"
            timings[label] = time_callable(
                lambda a=algorithm: group_by(
                    dataset.keys,
                    dataset.payload,
                    a,
                    num_distinct_hint=GROUPS,
                ),
                repeats=3,
                warmup=1,
            )
            print(f"  {label}: {timings[label].best_ms:.2f}ms")


def measure_parallel(timings: dict, rows: int) -> None:
    """Serial vs morsel-parallel kernel times at 1/2/4 workers — the
    ``bench_parallel.py`` quantities (speedups are host-core-dependent;
    the baseline records absolute times)."""
    from repro.engine.kernels.parallel import parallel_group_by

    dataset = make_grouping_dataset(
        rows, GROUPS, sortedness=Sortedness.UNSORTED, density=Density.DENSE,
        seed=0,
    )
    timings["parallel/grouping_serial"] = time_callable(
        lambda: group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            num_distinct_hint=GROUPS,
        ),
        repeats=3, warmup=1,
    )
    for workers in (1, 2, 4):
        label = f"parallel/grouping_workers{workers}"
        timings[label] = time_callable(
            lambda w=workers: parallel_group_by(
                dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
                shards=8, num_distinct_hint=GROUPS, workers=w,
            ),
            repeats=3, warmup=1,
        )
        print(f"  {label}: {timings[label].best_ms:.2f}ms")


def measure_storage(timings: dict) -> None:
    """Cold/warm out-of-core scans vs the in-memory path — the
    ``bench_storage.py`` quantities, at baseline scale (a 4 MiB pool
    against a ~12 MiB table, so warm runs still evict)."""
    import tempfile

    import numpy as np

    from repro.engine import GroupBy, count_star
    from repro.engine.operators import SegmentScan, TableScan
    from repro.storage import Table
    from repro.storage.disk import BufferManager, write_table

    rows = 500_000
    rng = np.random.default_rng(3)
    table = Table.from_arrays(
        {
            "k": np.arange(rows, dtype=np.int64),
            "g": rng.integers(0, 512, rows),
            "v": rng.integers(0, 1_000, rows),
        }
    )
    pool = BufferManager(budget_bytes=4 * 1024 * 1024)
    with tempfile.TemporaryDirectory() as directory:
        disk = write_table(
            table, directory, segment_rows=65_536, buffer=pool
        )

        def aggregate(scan):
            return execute(GroupBy(scan, "g", [count_star("n")]))

        def cold_run():
            pool.invalidate(disk.uid)
            return aggregate(SegmentScan(disk))

        timings["storage/scan_cold"] = time_callable(
            cold_run, repeats=3, warmup=1
        )
        aggregate(SegmentScan(disk))
        timings["storage/scan_warm"] = time_callable(
            lambda: aggregate(SegmentScan(disk)), repeats=3, warmup=1
        )
        timings["storage/scan_memory"] = time_callable(
            lambda: aggregate(TableScan(table)), repeats=3, warmup=1
        )
        for label in ("storage/scan_cold", "storage/scan_warm", "storage/scan_memory"):
            print(f"  {label}: {timings[label].best_ms:.2f}ms")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=300_000,
        help="rows per figure4 grouping dataset (default %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_baseline.json",
        help="output artifact path (default %(default)s)",
    )
    options = parser.parse_args(argv)

    timings: dict = {}
    print("measuring observability overhead quantities...")
    snapshot = measure_obs_overhead(timings)
    print(f"measuring figure4 grid at {options.rows:,} rows...")
    measure_figure4(timings, options.rows)
    print(f"measuring parallel kernels at {options.rows:,} rows...")
    measure_parallel(timings, options.rows)
    print("measuring out-of-core storage scans...")
    measure_storage(timings)

    path = write_json_artifact(
        options.out,
        "baseline",
        timings,
        metrics=merge_snapshots([snapshot]),
        meta={
            "figure4_rows": options.rows,
            "figure4_groups": GROUPS,
            "obs_rows_r": 45_000,
            "obs_rows_s": 90_000,
            "cpu_count": os.cpu_count(),
            "generated_by": "benchmarks/make_baseline.py",
        },
    )
    print(f"wrote {path} ({len(timings)} timing(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
