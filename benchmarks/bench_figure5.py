"""Figure 5: optimiser quality and optimisation time.

Two benchmark groups:

* ``figure5 optimise`` — wall-clock of one SQO vs one DQO optimisation of
  the §4.3 query (DQO explores a strictly larger space; this measures
  what that costs);
* plus a non-benchmark assertion that the full 4x2 improvement-factor
  grid matches the paper exactly (1x/1x, 1x/4x, 1x/2.8x, 1x/4x).
"""

import pytest

from repro.bench.figure5 import PAPER_FACTORS, run_figure5
from repro.core import optimize_dqo, optimize_sqo
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(scope="module")
def scenario_catalog():
    return make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    ).build_catalog()


@pytest.mark.parametrize(
    "optimizer", [optimize_sqo, optimize_dqo], ids=["SQO", "DQO"]
)
def test_optimisation_time(benchmark, scenario_catalog, optimizer):
    logical = plan_query(QUERY, scenario_catalog)
    benchmark.group = "figure5 optimise"
    result = benchmark(optimizer, logical, scenario_catalog)
    assert result.cost > 0


def test_figure5_grid_matches_paper():
    result = run_figure5()
    for cell in result.cells:
        sparse_factor, dense_factor = PAPER_FACTORS[
            (cell.r_sortedness, cell.s_sortedness)
        ]
        expected = (
            dense_factor if cell.density is Density.DENSE else sparse_factor
        )
        assert cell.factor == pytest.approx(expected, rel=1e-6), (
            cell.r_sortedness,
            cell.s_sortedness,
            cell.density,
        )
