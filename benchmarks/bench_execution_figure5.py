"""Execution check for Figure 5: do DQO's plans actually run faster?

The paper reports *estimated* plan costs; this benchmark executes the
SQO- and DQO-chosen plans of the dense cells on real generated data and
compares wall-clock time. The estimated 4x need not (and will not)
materialise exactly — the point is the *direction*: the DQO plan wins.
"""

import pytest

from repro.core import optimize_dqo, optimize_sqo, to_operator
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import execute
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"

#: execution scale: larger than the paper's plan-cost experiment so the
#: kernel differences dominate fixed overheads.
N_R, N_S, GROUPS = 200_000, 400_000, 50_000


@pytest.fixture(scope="module")
def dense_unsorted():
    scenario = make_join_scenario(
        n_r=N_R,
        n_s=N_S,
        num_groups=GROUPS,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)
    return catalog, logical


@pytest.mark.parametrize(
    "optimizer", [optimize_sqo, optimize_dqo], ids=["SQO-plan", "DQO-plan"]
)
def test_execute_chosen_plan(benchmark, dense_unsorted, optimizer):
    catalog, logical = dense_unsorted
    plan = optimizer(logical, catalog).plan
    operator = to_operator(plan, catalog, validate=False)
    benchmark.group = "figure5 executed (dense, both unsorted)"
    result = benchmark(lambda: execute(operator))
    # Uniform FK references leave a few R.A values unreferenced.
    assert 0.9 * GROUPS <= result.num_rows <= GROUPS


def test_dqo_plan_beats_sqo_plan_wall_clock(dense_unsorted):
    from repro._util.timer import time_callable

    catalog, logical = dense_unsorted
    sqo_operator = to_operator(optimize_sqo(logical, catalog).plan, catalog)
    dqo_operator = to_operator(optimize_dqo(logical, catalog).plan, catalog)
    sqo_seconds = time_callable(lambda: execute(sqo_operator), repeats=3).best
    dqo_seconds = time_callable(lambda: execute(dqo_operator), repeats=3).best
    assert dqo_seconds < sqo_seconds, (
        f"DQO plan should win wall-clock: DQO {dqo_seconds:.3f}s vs "
        f"SQO {sqo_seconds:.3f}s"
    )
