"""Figure 4 zoom-in: the BSG-vs-HG crossover at small group counts
(unsorted & sparse).

The paper: *"for up to 14 groups ... BSG outperforms HG. This opens up
another optimisation dimension in which the number of distinct values
should be considered."* We benchmark both algorithms at a handful of tiny
group counts and assert the crossover exists (its exact position is
hardware- and substrate-dependent; EXPERIMENTS.md records ours).
"""

import pytest

from repro.bench.figure4 import run_crossover
from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine import GroupingAlgorithm, group_by

SMALL_GROUP_COUNTS = (2, 8, 14, 64)


@pytest.mark.parametrize("groups", SMALL_GROUP_COUNTS)
@pytest.mark.parametrize(
    "algorithm", [GroupingAlgorithm.HG, GroupingAlgorithm.BSG],
    ids=lambda a: a.name,
)
def test_crossover_point(benchmark, bench_rows, groups, algorithm):
    dataset = make_grouping_dataset(
        bench_rows,
        groups,
        sortedness=Sortedness.UNSORTED,
        density=Density.SPARSE,
        seed=0,
    )
    benchmark.group = f"figure4 zoom-in, {groups} groups"
    result = benchmark(
        group_by, dataset.keys, dataset.payload, algorithm,
        num_distinct_hint=groups,
    )
    assert result.num_groups == groups


def test_crossover_exists(bench_rows):
    result = run_crossover(
        rows=min(bench_rows, 500_000),
        group_counts=(2, 4, 8, 14),
        repeats=2,
    )
    assert result.crossover_groups >= 2, (
        "BSG should beat HG at very small group counts "
        f"(measured points: {result.points})"
    )
