"""Ablation: unnesting depth vs plan quality vs enumeration cost.

The Figure 3 dial: cap the optimiser's granularity reach at ORGANELLE /
MACROMOLECULE / MOLECULE and measure (a) recipe-space size, (b) DP states
generated, (c) best plan cost on the dense-unsorted §4.3 query, and
(d) optimisation wall-clock. Also quantifies the partial-AV saving
(offline binding shrinks the query-time space).
"""

import pytest

from repro.avs import bind_offline, enumeration_savings
from repro.core import (
    DynamicProgrammingOptimizer,
    Granularity,
    count_recipes,
    dqo_config,
    sqo_config,
)
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"

LEVELS = [
    Granularity.ORGANELLE,
    Granularity.MACROMOLECULE,
    Granularity.MOLECULE,
]


@pytest.fixture(scope="module")
def catalog():
    return make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    ).build_catalog()


def _config_for(level):
    if level is Granularity.ORGANELLE:
        return sqo_config()
    return dqo_config(max_granularity=level)


@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.name)
def test_optimisation_time_per_depth(benchmark, catalog, level):
    logical = plan_query(QUERY, catalog)
    optimizer = DynamicProgrammingOptimizer(catalog, config=_config_for(level))
    benchmark.group = "unnesting depth"
    result = benchmark(optimizer.optimize, logical)
    assert result.cost > 0


def test_depth_quality_tradeoff(catalog):
    """Deeper reach never worsens the plan; on this query it strictly
    improves it at MACROMOLECULE (SPH unlocks) and the space grows."""
    logical = plan_query(QUERY, catalog)
    costs = {}
    states = {}
    for level in LEVELS:
        optimizer = DynamicProgrammingOptimizer(
            catalog, config=_config_for(level)
        )
        result = optimizer.optimize(logical)
        costs[level] = result.cost
        states[level] = result.stats.generated
    assert costs[Granularity.MACROMOLECULE] < costs[Granularity.ORGANELLE]
    assert costs[Granularity.MOLECULE] <= costs[Granularity.MACROMOLECULE]
    assert (
        count_recipes(Granularity.ORGANELLE)
        < count_recipes(Granularity.MACROMOLECULE)
        < count_recipes(Granularity.MOLECULE)
    )


def test_partial_av_enumeration_saving():
    partial = bind_offline(bound_level=Granularity.MACROMOLECULE, pick_index=0)
    from_scratch, remaining = enumeration_savings(partial)
    assert remaining < from_scratch
