"""Extension bench: grouping over RLE metadata vs rows (§2.2).

On a clustered column compressed 1000:1, run-metadata grouping touches
three orders of magnitude fewer elements than any row kernel — the
concrete payoff for the optimiser knowing *how exactly* the input is
compressed, not merely that it is.
"""

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.rle_grouping import rle_compress_with_sums, rle_group_by

GROUPS = 1_000


@pytest.fixture(scope="module")
def clustered(bench_rows):
    rows = min(bench_rows, 1_000_000)
    keys = np.sort(
        np.random.default_rng(0).integers(0, GROUPS, rows)
    ).astype(np.int64)
    values = np.random.default_rng(1).integers(0, 100, rows).astype(np.int64)
    encoded, run_sums = rle_compress_with_sums(keys, values)
    return keys, values, encoded, run_sums


def test_rle_metadata_grouping(benchmark, clustered):
    __, __, encoded, run_sums = clustered
    benchmark.group = "RLE vs row grouping"
    result = benchmark(rle_group_by, encoded, run_sums)
    assert result.num_groups == GROUPS


def test_row_grouping_og(benchmark, clustered):
    keys, values, __, __ = clustered
    benchmark.group = "RLE vs row grouping"
    result = benchmark(group_by, keys, values, GroupingAlgorithm.OG)
    assert result.num_groups == GROUPS


def test_rle_beats_every_row_kernel(clustered):
    keys, values, encoded, run_sums = clustered
    rle_seconds = time_callable(
        lambda: rle_group_by(encoded, run_sums), repeats=3
    ).best
    og_seconds = time_callable(
        lambda: group_by(keys, values, GroupingAlgorithm.OG), repeats=3
    ).best
    assert rle_seconds < og_seconds
    # And the results agree.
    assert rle_group_by(encoded, run_sums).sorted_by_key().counts.tolist() == (
        group_by(keys, values, GroupingAlgorithm.OG)
        .sorted_by_key()
        .counts.tolist()
    )
