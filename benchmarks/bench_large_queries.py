"""Extension bench: deep optimisation of large (multi-way) queries.

§6: *"in the history of SQO, initially only relatively small queries
could be optimised ... We foresee the same to happen with DQO."* This
bench measures how optimisation time and enumeration effort grow with the
number of relations, for the shallow and the deep configuration, on star
joins of 2..5 relations.
"""

import pytest

from repro.core import optimize_dqo, optimize_sqo
from repro.datagen import Density, DimensionSpec, Sortedness, make_star_scenario
from repro.sql import plan_query


def _scenario(num_dimensions: int):
    specs = []
    for index in range(num_dimensions):
        specs.append(
            DimensionSpec(
                rows=1_000 + 500 * index,
                num_groups=100 + 50 * index,
                sortedness=(
                    Sortedness.SORTED if index % 2 == 0 else Sortedness.UNSORTED
                ),
                density=Density.DENSE if index % 3 else Density.SPARSE,
            )
        )
    return make_star_scenario(fact_rows=5_000, dimensions=specs, seed=0)


@pytest.mark.parametrize("num_dimensions", [1, 2, 3, 4])
@pytest.mark.parametrize(
    "optimizer", [optimize_sqo, optimize_dqo], ids=["SQO", "DQO"]
)
def test_optimisation_scales(benchmark, num_dimensions, optimizer):
    scenario = _scenario(num_dimensions)
    catalog = scenario.build_catalog()
    logical = plan_query(scenario.join_query(0), catalog)
    benchmark.group = f"large queries: {num_dimensions + 1} relations"
    result = benchmark(optimizer, logical, catalog)
    assert result.cost > 0


def test_effort_growth_is_superlinear_but_bounded():
    generated = []
    for num_dimensions in (1, 2, 3, 4):
        scenario = _scenario(num_dimensions)
        catalog = scenario.build_catalog()
        logical = plan_query(scenario.join_query(0), catalog)
        result = optimize_dqo(logical, catalog)
        generated.append(result.stats.generated)
    assert generated == sorted(generated)
    # DPsub with Pareto pruning: growth well below the factorial plan space.
    assert generated[-1] < 100_000


def test_dqo_quality_holds_at_five_relations():
    scenario = _scenario(4)
    catalog = scenario.build_catalog()
    logical = plan_query(scenario.join_query(0), catalog)
    sqo = optimize_sqo(logical, catalog)
    dqo = optimize_dqo(logical, catalog)
    assert dqo.cost <= sqo.cost
