"""Ablation: paper cost model vs a calibrated (measured) cost model.

Table 2's constants were chosen for the authors' C++ kernels. This
ablation fits a model to *this* substrate's measured kernel runtimes
(:mod:`repro.core.cost.calibrated`) and re-runs the Figure 5 decision:
does the fitted model still pick SPH plans for dense data, i.e. is the
paper's conclusion robust to the constants?
"""

import pytest

from repro.core import optimize_dqo, optimize_sqo
from repro.core.cost import calibrate_grouping, measure_grouping_samples
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.engine import GroupingAlgorithm, JoinAlgorithm
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(scope="module")
def calibrated_model():
    samples = measure_grouping_samples(
        sizes=[50_000, 100_000, 200_000, 400_000],
        group_counts=[100, 2_000, 20_000],
        repeats=2,
    )
    return calibrate_grouping(samples)


def test_calibration_time(benchmark):
    benchmark.group = "cost model calibration"

    def calibrate():
        samples = measure_grouping_samples(
            sizes=[50_000, 100_000], group_counts=[100, 2_000], repeats=1
        )
        return calibrate_grouping(samples)

    model = benchmark.pedantic(calibrate, rounds=1, iterations=1)
    assert model.grouping_coefficients


def test_calibrated_model_prefers_sph_on_dense(calibrated_model):
    """The fitted model must reproduce the paper's core ranking: SPH
    variants cheapest on dense domains, HG paying a constant factor."""
    sph = calibrated_model.grouping_cost(GroupingAlgorithm.SPHG, 10**6, 10**4)
    hg = calibrated_model.grouping_cost(GroupingAlgorithm.HG, 10**6, 10**4)
    og = calibrated_model.grouping_cost(GroupingAlgorithm.OG, 10**6, 10**4)
    assert sph < hg
    assert og < hg


def test_figure5_winners_stable_under_calibration(calibrated_model):
    """Re-run the dense-unsorted Figure 5 cell with the fitted model: the
    DQO plan must still be the SPH plan and still beat SQO's."""
    catalog = make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    ).build_catalog()
    logical = plan_query(QUERY, catalog)
    sqo = optimize_sqo(logical, catalog, cost_model=calibrated_model)
    dqo = optimize_dqo(logical, catalog, cost_model=calibrated_model)
    join_node = next(n for n in dqo.plan.walk() if n.op == "join")
    group_node = next(n for n in dqo.plan.walk() if n.op == "group_by")
    assert join_node.join_algorithm is JoinAlgorithm.SPHJ
    assert group_node.grouping_algorithm is GroupingAlgorithm.SPHG
    assert dqo.cost < sqo.cost
