"""Extension bench: morsel-style parallel grouping (Figure 3e).

Measures the shard-and-merge structure of the parallel-load molecule
choice at several shard counts, against the serial kernel. Shards run
sequentially (DESIGN.md substitution #6), so this quantifies the *merge
overhead* the parallel recipe pays — the structural cost a real
multi-core engine would trade against core scaling — not a speedup.
"""

import pytest

from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.parallel import parallel_group_by

GROUPS = 10_000


@pytest.fixture(scope="module")
def dataset(bench_rows):
    return make_grouping_dataset(
        min(bench_rows, 1_000_000),
        GROUPS,
        Sortedness.UNSORTED,
        Density.DENSE,
        seed=0,
    )


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_sharded_sphg(benchmark, dataset, shards):
    benchmark.group = "parallel load (SPHG)"
    result = benchmark(
        parallel_group_by,
        dataset.keys,
        dataset.payload,
        GroupingAlgorithm.SPHG,
        shards,
        GROUPS,
    )
    assert result.num_groups == GROUPS


@pytest.mark.parametrize("shards", [1, 4])
def test_sharded_hg(benchmark, dataset, shards):
    benchmark.group = "parallel load (HG)"
    result = benchmark(
        parallel_group_by,
        dataset.keys,
        dataset.payload,
        GroupingAlgorithm.HG,
        shards,
        GROUPS,
    )
    assert result.num_groups == GROUPS


def test_merge_overhead_bounded(dataset):
    """The merge must not dominate: 8-way shard+merge stays within 3x of
    the serial kernel (it processes the same rows once, plus an
    8 x #groups merge)."""
    from repro._util.timer import time_callable

    serial = time_callable(
        lambda: group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            num_distinct_hint=GROUPS,
        ),
        repeats=3,
    ).best
    sharded = time_callable(
        lambda: parallel_group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            shards=8, num_distinct_hint=GROUPS,
        ),
        repeats=3,
    ).best
    assert sharded < serial * 3.0
