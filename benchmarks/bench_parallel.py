"""Extension bench: real morsel-driven parallel execution.

Measures wall-clock speedup of the shared-worker-pool kernels
(`repro.engine.kernels.parallel`) over the serial kernels at 1/2/4
workers on >= 1M rows. The numpy kernels release the GIL, so speedup is
genuine on multi-core hosts; on a single-core host the scheduling is
still exercised but no speedup is asserted (the assertion is gated on
``os.cpu_count()``). A JSON artifact records the timings, speedups, and
the host's core count either way.
"""

import os

import pytest

from repro._util.timer import time_callable
from repro.datagen import Density, Sortedness, make_grouping_dataset, make_join_scenario
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.joins import JoinAlgorithm, join
from repro.engine.kernels.parallel import parallel_group_by, parallel_join

GROUPS = 10_000
WORKER_COUNTS = [1, 2, 4]
#: speedup floor asserted for 4-worker grouping when the host has the cores.
SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def dataset(bench_rows):
    return make_grouping_dataset(
        max(min(bench_rows, 4_000_000), 1_000_000),
        GROUPS,
        Sortedness.UNSORTED,
        Density.DENSE,
        seed=0,
    )


@pytest.fixture(scope="module")
def join_scenario(bench_rows):
    rows = max(min(bench_rows, 4_000_000), 1_000_000)
    return make_join_scenario(
        n_r=rows // 4,
        n_s=rows,
        num_groups=GROUPS,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=0,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_grouping_workers(benchmark, dataset, workers):
    benchmark.group = "parallel grouping (SPHG, 8 shards)"
    result = benchmark(
        parallel_group_by,
        dataset.keys,
        dataset.payload,
        GroupingAlgorithm.SPHG,
        8,
        GROUPS,
        workers,
    )
    assert result.num_groups == GROUPS


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_join_probe_workers(benchmark, join_scenario, workers):
    benchmark.group = "parallel join probe (HJ, 8 shards)"
    build = join_scenario.r["ID"]
    probe = join_scenario.s["R_ID"]
    result = benchmark(
        parallel_join, build, probe, JoinAlgorithm.HJ, 8, None, workers
    )
    assert result.left_indices.size == probe.size


def test_speedup_serial_vs_workers(dataset, join_scenario, bench_artifact):
    """The tentpole's wall-clock claim, measured end to end.

    Serial kernel vs the morsel-parallel kernels at 1/2/4 workers; the
    >= 1.5x grouping-speedup floor at 4 workers only applies when the
    host actually has 4 cores.
    """
    cores = os.cpu_count() or 1
    timings: dict = {}

    timings["grouping/serial"] = time_callable(
        lambda: group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            num_distinct_hint=GROUPS,
        ),
        repeats=3, warmup=1,
    )
    for workers in WORKER_COUNTS:
        timings[f"grouping/workers{workers}"] = time_callable(
            lambda w=workers: parallel_group_by(
                dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
                shards=8, num_distinct_hint=GROUPS, workers=w,
            ),
            repeats=3, warmup=1,
        )

    build = join_scenario.r["ID"]
    probe = join_scenario.s["R_ID"]
    timings["join/serial"] = time_callable(
        lambda: join(build, probe, JoinAlgorithm.HJ), repeats=3, warmup=1
    )
    for workers in WORKER_COUNTS:
        timings[f"join/workers{workers}"] = time_callable(
            lambda w=workers: parallel_join(
                build, probe, JoinAlgorithm.HJ, shards=8, workers=w
            ),
            repeats=3, warmup=1,
        )

    speedups = {
        f"{kind}/workers{workers}": (
            timings[f"{kind}/serial"].best / timings[f"{kind}/workers{workers}"].best
        )
        for kind in ("grouping", "join")
        for workers in WORKER_COUNTS
    }
    for label, speedup in sorted(speedups.items()):
        print(f"  speedup {label}: {speedup:.2f}x")
    bench_artifact(
        "parallel/speedup",
        timings,
        meta={
            "rows": dataset.num_rows,
            "cpu_count": cores,
            "workers": WORKER_COUNTS,
            "speedups": speedups,
            # Whether the speedup floor below was actually asserted on
            # this host — so an artifact from a starved CI runner can't
            # be mistaken for a passing perf claim.
            "speedup_assertion": (
                "enforced" if cores >= 4 else f"skipped: {cores} cores"
            ),
        },
    )
    if cores >= 4:
        assert speedups["grouping/workers4"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x grouping speedup at 4 workers on "
            f"a {cores}-core host, got {speedups['grouping/workers4']:.2f}x"
        )
    # One worker must not regress badly: same kernel work plus a merge.
    assert speedups["grouping/workers1"] > 1 / 3.0


def test_merge_overhead_bounded(dataset):
    """The merge must not dominate: 8-way shard+merge on one worker stays
    within 3x of the serial kernel (same rows once, plus an 8 x #groups
    merge)."""
    serial = time_callable(
        lambda: group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            num_distinct_hint=GROUPS,
        ),
        repeats=3,
    ).best
    sharded = time_callable(
        lambda: parallel_group_by(
            dataset.keys, dataset.payload, GroupingAlgorithm.SPHG,
            shards=8, num_distinct_hint=GROUPS, workers=1,
        ),
        repeats=3,
    ).best
    assert sharded < serial * 3.0
