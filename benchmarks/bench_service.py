"""Extension bench: the serving layer under concurrent load.

The governance stack (admission queue + per-query contexts + sessions)
must be cheap: pushing 32 queries through a 4-slot
:class:`~repro.service.session.QueryService` from 32 concurrent clients
has to deliver throughput within 20% of running the same 32 queries
back-to-back on a serial service, with zero queries lost. A second
scenario floods a tiny queue and checks the shedding path: every
submission either completes or is rejected *typed* with a usable
``retry_after`` — nothing hangs, nothing vanishes.

The throughput artifact also carries a per-stage latency breakdown
(p50/p95/total per :data:`~repro.service.session.STAGES` entry, for
both the serial and the concurrent run), so a regression shows *which*
stage slowed, not just that the ratio moved.
"""

import threading
import time

import pytest

from repro.datagen import Density, Sortedness, make_join_scenario
from repro.errors import AdmissionRejected
from repro.obs.slo import percentile
from repro.service.admission import AdmissionConfig
from repro.service.session import QueryService, ServiceConfig

SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
QUERY_COUNT = 32
#: concurrent throughput must stay within this factor of serial.
THROUGHPUT_SLACK = 1.2


@pytest.fixture(scope="module")
def service_catalog(bench_rows):
    # Big enough that execution dominates the per-query fixed costs the
    # concurrent path pays twice (queue grant + context polling), small
    # enough that four concurrent working sets don't thrash the caches
    # of a small CI host.
    rows = max(min(bench_rows, 500_000), 200_000)
    scenario = make_join_scenario(
        n_r=rows // 8,
        n_s=rows,
        num_groups=100,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=17,
    )
    return scenario.build_catalog()


def _run_batch(service: QueryService, count: int) -> list:
    """``count`` concurrent clients; returns each client's outcome."""
    results: list = [None] * count

    def client(index: int) -> None:
        try:
            outcome = service.execute(SQL)
            results[index] = (
                "ok", outcome.table.num_rows, outcome.stage_seconds
            )
        except AdmissionRejected as error:
            results[index] = ("rejected", error.retry_after)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    assert all(not t.is_alive() for t in threads), "client threads hung"
    return results


def test_concurrent_throughput_within_20pct_of_serial(
    service_catalog, bench_artifact
):
    serial = QueryService(
        service_catalog,
        ServiceConfig(admission=AdmissionConfig(max_concurrency=1)),
    )
    concurrent = QueryService(
        service_catalog,
        ServiceConfig(
            admission=AdmissionConfig(
                max_concurrency=4,
                max_queue_depth=QUERY_COUNT,
                degrade_queue_depth=None,
            )
        ),
    )
    try:
        # Warm both plan caches, the catalog's column statistics, and
        # the thread/allocator state a first concurrent burst pays for,
        # so both timed sections measure steady-state serving.
        serial.execute(SQL)
        concurrent.execute(SQL)
        _run_batch(concurrent, 8)

        serial_seconds = float("inf")
        concurrent_seconds = float("inf")
        results: list = []
        serial_stages: list = []
        for __ in range(2):  # best-of-2: a loaded CI host is jittery
            started = time.monotonic()
            serial_stages = []
            for ___ in range(QUERY_COUNT):
                outcome = serial.execute(SQL)
                assert outcome.table.num_rows == 100
                serial_stages.append(outcome.stage_seconds)
            serial_seconds = min(
                serial_seconds, time.monotonic() - started
            )

            started = time.monotonic()
            results = _run_batch(concurrent, QUERY_COUNT)
            concurrent_seconds = min(
                concurrent_seconds, time.monotonic() - started
            )
            # Zero queries lost: every client has a result and all
            # succeeded (the queue was sized to hold the whole burst).
            assert all(
                result[0] == "ok" and result[1] == 100
                for result in results
            )
    finally:
        serial.shutdown()
        concurrent.shutdown()
    assert concurrent.admission.running == 0
    assert concurrent.admission.queue_depth == 0

    ratio = concurrent_seconds / serial_seconds
    bench_artifact(
        "service/throughput",
        {
            "serial_32": serial_seconds,
            "concurrent_32": concurrent_seconds,
        },
        meta={
            "queries": QUERY_COUNT,
            "max_concurrency": 4,
            "ratio_vs_serial": ratio,
            "stages_serial": _stage_breakdown(serial_stages),
            "stages_concurrent": _stage_breakdown(
                [result[2] for result in results]
            ),
        },
    )
    assert concurrent_seconds <= serial_seconds * THROUGHPUT_SLACK, (
        f"concurrent batch took {concurrent_seconds:.2f}s vs "
        f"{serial_seconds:.2f}s serial (ratio {ratio:.2f} > "
        f"{THROUGHPUT_SLACK})"
    )


def test_queue_full_sheds_typed_and_loses_nothing(service_catalog):
    service = QueryService(
        service_catalog,
        ServiceConfig(
            admission=AdmissionConfig(
                max_concurrency=1, max_queue_depth=2, degrade_queue_depth=None
            )
        ),
    )
    try:
        service.execute(SQL)  # warm
        # Soak the only slot so the burst must queue (and overflow).
        blocker = service.admission.admit()
        results = [None] * 8
        threads = [
            threading.Thread(target=_submit, args=(service, results, index))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while (
            sum(1 for r in results if r and r[0] == "rejected") < 6
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        blocker.release()
        for thread in threads:
            thread.join(timeout=60.0)
    finally:
        service.shutdown()

    assert all(result is not None for result in results), "a query vanished"
    completed = [r for r in results if r[0] == "ok"]
    rejected = [r for r in results if r[0] == "rejected"]
    assert len(completed) + len(rejected) == 8
    assert len(completed) == 2, "exactly the queued queries completed"
    assert len(rejected) == 6, "the overflow was shed"
    assert all(retry > 0 for __, retry in rejected)


def _submit(service: QueryService, results: list, index: int) -> None:
    try:
        results[index] = ("ok", service.execute(SQL).table.num_rows)
    except AdmissionRejected as error:
        results[index] = ("rejected", error.retry_after)


def _stage_breakdown(stage_maps: list) -> dict:
    """Per-stage p50/p95/total across one batch's outcomes."""
    by_stage: dict = {}
    for stages in stage_maps:
        for stage, seconds in stages.items():
            by_stage.setdefault(stage, []).append(float(seconds))
    return {
        stage: {
            "count": len(values),
            "p50_seconds": percentile(values, 0.50),
            "p95_seconds": percentile(values, 0.95),
            "total_seconds": sum(values),
        }
        for stage, values in sorted(by_stage.items())
    }
