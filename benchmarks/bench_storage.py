"""Extension bench: out-of-core scans — cold, warm, and in-memory.

Times the same aggregation query three ways on a dataset at least twice
the buffer budget: a *cold* disk run (pool invalidated before every
repeat, so every segment pays the read), a *warm* disk run (pool
pre-seeded by an untimed pass, re-reading only what the budget cannot
hold), and the fully in-memory path. Alongside the timing curve, the
zone-map claim is asserted outright: a selective scan must read
*strictly fewer* segments than the full scan, with bit-identical
results. The cold-vs-warm record is written as a JSON artifact (CI
uploads it) via ``REPRO_BENCH_ARTIFACTS``.
"""

import numpy as np
import pytest

from repro._util.timer import time_callable
from repro.engine import Filter, GroupBy, col, count_star, execute
from repro.engine.operators import SegmentScan, TableScan
from repro.storage import Table
from repro.storage.disk import BufferManager, write_table

GROUPS = 512
#: pool budget; the dataset below is sized to at least 2x this.
BUDGET_BYTES = 4 * 1024 * 1024
SEGMENT_ROWS = 65_536


@pytest.fixture(scope="module")
def setting(bench_rows, tmp_path_factory):
    rows = max(min(bench_rows, 4_000_000), BUDGET_BYTES // 8)
    rng = np.random.default_rng(3)
    table = Table.from_arrays(
        {
            "k": np.arange(rows, dtype=np.int64),
            "g": rng.integers(0, GROUPS, rows),
            "v": rng.integers(0, 1_000, rows),
        }
    )
    assert table.memory_bytes() >= 2 * BUDGET_BYTES
    pool = BufferManager(budget_bytes=BUDGET_BYTES)
    disk = write_table(
        table,
        str(tmp_path_factory.mktemp("bench_storage") / "T"),
        segment_rows=SEGMENT_ROWS,
        buffer=pool,
    )
    return table, disk, pool


def aggregate(scan):
    return execute(GroupBy(scan, "g", [count_star("n")]))


class TestColdWarmMemory:
    def test_cold_warm_memory_curve(self, setting, bench_artifact):
        table, disk, pool = setting
        timings = {}

        def cold_run():
            pool.invalidate(disk.uid)
            return aggregate(SegmentScan(disk))

        timings["storage/scan_cold"] = time_callable(
            cold_run, repeats=3, warmup=1
        )
        aggregate(SegmentScan(disk))  # seed what the budget can hold
        timings["storage/scan_warm"] = time_callable(
            lambda: aggregate(SegmentScan(disk)), repeats=3, warmup=1
        )
        timings["storage/scan_memory"] = time_callable(
            lambda: aggregate(TableScan(table)), repeats=3, warmup=1
        )

        for label, timing in timings.items():
            print(f"  {label}: {timing.best_ms:.2f}ms")
        stats = pool.stats()
        bench_artifact(
            "storage/cold_vs_warm",
            timings,
            meta={
                "rows": table.num_rows,
                "segments": disk.num_segments,
                "budget_bytes": BUDGET_BYTES,
                "decoded_bytes": disk.decoded_bytes(),
                "bytes_on_disk": disk.bytes_on_disk(),
                "buffer": stats,
            },
        )
        # The pool held its hard budget through every run.
        assert stats["resident_bytes"] <= BUDGET_BYTES

    def test_results_identical_across_paths(self, setting):
        table, disk, __ = setting
        assert aggregate(SegmentScan(disk)).equals_unordered(
            aggregate(TableScan(table))
        )


class TestZoneMapSkipping:
    def test_selective_scan_reads_strictly_fewer_segments(self, setting):
        table, disk, __ = setting
        predicate = col("k") < SEGMENT_ROWS  # exactly the first segment
        full = SegmentScan(disk)
        full.to_table()
        full_read, __unused, __unused2 = full.io_counters()

        selective = SegmentScan(disk, predicates=(predicate,))
        filtered = execute(Filter(selective, predicate))
        read, skipped, __unused3 = selective.io_counters()
        assert read < full_read
        assert read == 1
        assert skipped == disk.num_segments - 1

        expected = execute(Filter(TableScan(table), predicate))
        assert filtered.equals_unordered(expected)
