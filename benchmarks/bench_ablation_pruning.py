"""Ablation: dominance pruning of the property-vector DP.

§2.2's "we must not discard that information" forces frontiers instead of
single-best entries; pruning keeps those frontiers Pareto-minimal. This
ablation measures optimisation time and retained/generated state with and
without pruning, asserting the optimum is unchanged.
"""

import pytest

from repro.core import DynamicProgrammingOptimizer, dqo_config
from repro.datagen import Density, Sortedness, make_join_scenario
from repro.sql import plan_query

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


@pytest.fixture(scope="module")
def catalog():
    return make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.SORTED,
        density=Density.DENSE,
    ).build_catalog()


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "unpruned"])
def test_optimisation_time(benchmark, catalog, prune):
    logical = plan_query(QUERY, catalog)
    optimizer = DynamicProgrammingOptimizer(
        catalog, config=dqo_config(prune_dominated=prune)
    )
    benchmark.group = "pruning ablation"
    result = benchmark(optimizer.optimize, logical)
    assert result.cost > 0


def test_pruning_preserves_optimum_and_cuts_state(catalog):
    logical = plan_query(QUERY, catalog)
    pruned = DynamicProgrammingOptimizer(
        catalog, config=dqo_config(prune_dominated=True)
    ).optimize(logical)
    unpruned = DynamicProgrammingOptimizer(
        catalog, config=dqo_config(prune_dominated=False)
    ).optimize(logical)
    assert pruned.cost == pytest.approx(unpruned.cost)
    assert pruned.stats.retained <= unpruned.stats.retained
    assert pruned.stats.pruned_dominated > 0
