"""Observability overhead: disabled instrumentation must be (near) free.

The contract of `repro.obs` is zero-cost-by-default: with the global
registry and tracer disabled, `execute()` must run within 5% of the
seed's bare `root.to_table()` loop. The *enabled* path has a budget
too: a full profile capture (metrics + tracing + per-operator
instrumentation + memory accounting, bundled by `capture_profile`)
must stay within 15% of bare execution. Both modes land in the
artifact record
(`REPRO_BENCH_ARTIFACTS=dir pytest benchmarks/bench_obs_overhead.py`).
"""

from repro import (
    Density,
    FeedbackStore,
    Sortedness,
    capture_observability,
    capture_profile,
    disable_observability,
    execute,
    make_join_scenario,
    optimize_dqo,
    plan_query,
    to_operator,
)
from repro._util.timer import time_callable
from repro.engine.executor import explain_analyze

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
#: overhead budget for the disabled path (fraction of baseline best time).
MAX_DISABLED_OVERHEAD = 0.05
#: overhead budget for a full profile capture over bare execution.
MAX_ENABLED_OVERHEAD = 0.15


def _build_plan():
    scenario = make_join_scenario(
        n_r=45_000,
        n_s=90_000,
        num_groups=20_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)
    return to_operator(optimize_dqo(logical, catalog).plan, catalog)


def test_disabled_observability_overhead(bench_artifact):
    disable_observability()
    plan = _build_plan()

    baseline = time_callable(lambda: plan.to_table(), repeats=9, warmup=2)
    via_execute = time_callable(lambda: execute(plan), repeats=9, warmup=2)
    overhead = via_execute.best / baseline.best - 1.0

    feedback = FeedbackStore()
    with capture_observability() as (metrics, tracer):
        enabled = time_callable(lambda: execute(plan), repeats=5, warmup=1)
        analyzed = time_callable(
            lambda: explain_analyze(plan, feedback=feedback).table,
            repeats=5,
            warmup=1,
        )
        snapshot = metrics.snapshot()

    profiled = time_callable(
        lambda: capture_profile(plan, query=QUERY), repeats=5, warmup=1
    )
    enabled_overhead = profiled.best / baseline.best - 1.0

    bench_artifact(
        "obs_overhead",
        {
            "seed_to_table": baseline,
            "execute_disabled": via_execute,
            "execute_enabled": enabled,
            "explain_analyze": analyzed,
            "capture_profile": profiled,
        },
        metrics=snapshot,
        meta={
            "rows_r": 45_000,
            "rows_s": 90_000,
            "disabled_overhead": overhead,
            "enabled_overhead": enabled_overhead,
            "qerror_summary": feedback.qerror_summary(),
        },
    )

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability execute() is {overhead:.1%} slower than "
        f"bare to_table() (budget {MAX_DISABLED_OVERHEAD:.0%}); best "
        f"{via_execute.best_ms:.2f}ms vs {baseline.best_ms:.2f}ms"
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"full profile capture is {enabled_overhead:.1%} slower than bare "
        f"to_table() (budget {MAX_ENABLED_OVERHEAD:.0%}); best "
        f"{profiled.best_ms:.2f}ms vs {baseline.best_ms:.2f}ms"
    )
    # Sanity: the instrumented run still computes the same result shape.
    assert analyzed.last_result.num_rows == via_execute.last_result.num_rows
    assert profiled.last_result.rows_out == via_execute.last_result.num_rows
