"""Observability overhead: disabled instrumentation must be (near) free.

The contract of `repro.obs` is zero-cost-by-default: with the global
registry and tracer disabled, `execute()` must run within 5% of the
seed's bare `root.to_table()` loop. The *enabled* path has a budget
too: a full profile capture (metrics + tracing + per-operator
instrumentation + memory accounting, bundled by `capture_profile`)
must stay within 15% of bare execution. Both modes land in the
artifact record
(`REPRO_BENCH_ARTIFACTS=dir pytest benchmarks/bench_obs_overhead.py`).
"""

import gc
import statistics

from repro import (
    Density,
    FeedbackStore,
    Sortedness,
    capture_observability,
    capture_profile,
    disable_observability,
    execute,
    make_join_scenario,
    optimize_dqo,
    plan_query,
    to_operator,
)
from repro._util.timer import Timer, TimingResult, time_callable
from repro.engine.executor import explain_analyze

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
#: overhead budget for the disabled path (fraction of baseline best time).
MAX_DISABLED_OVERHEAD = 0.05
#: overhead budget for a full profile capture over bare execution.
MAX_ENABLED_OVERHEAD = 0.15
#: budget for a *disabled* sentinel riding on a logged execute loop.
MAX_SENTINEL_DISABLED_OVERHEAD = 0.05
#: budget for a live sentinel (incremental tail + detection per query).
MAX_SENTINEL_ENABLED_OVERHEAD = 0.15
#: budget for an installed-but-disabled search trace on the optimiser.
MAX_TRACE_DISABLED_OVERHEAD = 0.05
#: budget for a live search trace journaling every frontier event.
MAX_TRACE_ENABLED_OVERHEAD = 0.15


def _paired_overheads(arms, rounds, warmup, reps=3):
    """Time callables interleaved round-robin; return per-arm results
    plus each arm's overhead versus the first (baseline) arm.

    Three defences against a noisy-neighbour box. Interleaving with
    per-round *paired* deltas (median taken across rounds): sequential
    best-of blocks let scheduler/frequency drift between the blocks
    masquerade as overhead, while a paired delta cancels whatever the
    machine was doing that round. Best-of-`reps` within each round:
    scheduler spikes are one-sided, so the per-round minimum rejects
    them before the pairing (a single-shot delta on this box swings
    ±25% of a 20ms workload; best-of-3 pairs land within ~1ms). And a
    `gc.collect()` before every timed call: allocation-triggered
    collections otherwise alias onto whichever arm happens to trip the
    threshold the heavier arms charged up.
    """
    results = [TimingResult() for _ in arms]
    for round_index in range(rounds + warmup):
        for fn, result in zip(arms, results):
            best = None
            value = None
            for _ in range(reps):
                gc.collect()
                with Timer() as timer:
                    value = fn()
                if best is None or timer.elapsed < best:
                    best = timer.elapsed
            if round_index >= warmup:
                result.samples.append(best)
                result.last_result = value
    base = results[0].median
    overheads = [
        statistics.median(
            sample - b
            for sample, b in zip(result.samples, results[0].samples)
        )
        / base
        for result in results
    ]
    return results, overheads


def _build_plan():
    scenario = make_join_scenario(
        n_r=45_000,
        n_s=90_000,
        num_groups=20_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)
    return to_operator(optimize_dqo(logical, catalog).plan, catalog)


def test_disabled_observability_overhead(bench_artifact):
    disable_observability()
    plan = _build_plan()

    (baseline, via_execute, profiled), (_, overhead, enabled_overhead) = (
        _paired_overheads(
            [
                lambda: plan.to_table(),
                lambda: execute(plan),
                lambda: capture_profile(plan, query=QUERY),
            ],
            rounds=9,
            warmup=2,
        )
    )

    feedback = FeedbackStore()
    with capture_observability() as (metrics, tracer):
        enabled = time_callable(lambda: execute(plan), repeats=5, warmup=1)
        analyzed = time_callable(
            lambda: explain_analyze(plan, feedback=feedback).table,
            repeats=5,
            warmup=1,
        )
        snapshot = metrics.snapshot()

    bench_artifact(
        "obs_overhead",
        {
            "seed_to_table": baseline,
            "execute_disabled": via_execute,
            "execute_enabled": enabled,
            "explain_analyze": analyzed,
            "capture_profile": profiled,
        },
        metrics=snapshot,
        meta={
            "rows_r": 45_000,
            "rows_s": 90_000,
            "disabled_overhead": overhead,
            "enabled_overhead": enabled_overhead,
            "qerror_summary": feedback.qerror_summary(),
        },
    )

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability execute() is {overhead:.1%} slower than "
        f"bare to_table() (budget {MAX_DISABLED_OVERHEAD:.0%}); median "
        f"{via_execute.median * 1e3:.2f}ms vs {baseline.median * 1e3:.2f}ms"
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"full profile capture is {enabled_overhead:.1%} slower than bare "
        f"to_table() (budget {MAX_ENABLED_OVERHEAD:.0%}); median "
        f"{profiled.median * 1e3:.2f}ms vs {baseline.median * 1e3:.2f}ms"
    )
    # Sanity: the instrumented run still computes the same result shape.
    assert analyzed.last_result.num_rows == via_execute.last_result.num_rows
    assert profiled.last_result.rows_out == via_execute.last_result.num_rows


def test_search_trace_overhead(bench_artifact):
    """The search observatory's contract: an *installed but disabled*
    trace must not slow the optimiser (the hook is checked once per
    optimise call), and a live trace — journaling every frontier event
    into bounded ring buffers — stays within 15% of an untraced deep
    enumeration."""
    from repro.core import disable_plan_cache, enable_plan_cache
    from repro.datagen import make_star_scenario
    from repro.datagen.star import DimensionSpec
    from repro.obs.search import SearchTrace, set_search_trace

    disable_observability()
    # A five-dimension star: the DP enumerates ~1.5k candidates over a
    # six-way join, so one search runs tens of milliseconds — long
    # enough that a percentage budget measures the trace, not timer
    # jitter (a ~1ms two-way search has ±5% run-to-run noise).
    star = make_star_scenario(
        fact_rows=20_000,
        dimensions=[
            DimensionSpec(
                1_000,
                100,
                sortedness=(
                    Sortedness.UNSORTED if index % 2 else Sortedness.SORTED
                ),
            )
            for index in range(5)
        ],
    )
    catalog = star.build_catalog()
    logical = plan_query(star.join_query(0), catalog)
    off_trace = SearchTrace()
    off_trace.enabled = False
    live_trace = SearchTrace()

    def searched_with(trace):
        def run():
            set_search_trace(trace)
            return optimize_dqo(logical, catalog)

        return run

    # A cache hit enumerates nothing: every repeat must search afresh.
    disable_plan_cache()
    try:
        (
            (baseline, disabled, enabled),
            (_, disabled_overhead, enabled_overhead),
        ) = _paired_overheads(
            [
                searched_with(None),
                searched_with(off_trace),
                searched_with(live_trace),
            ],
            rounds=9,
            warmup=2,
        )
        summary = live_trace.summary()
    finally:
        set_search_trace(None)
        enable_plan_cache()

    bench_artifact(
        "search_trace_overhead",
        {
            "optimize_untraced": baseline,
            "optimize_trace_disabled": disabled,
            "optimize_trace_enabled": enabled,
        },
        meta={
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "trace_summary": summary,
        },
    )

    assert disabled_overhead < MAX_TRACE_DISABLED_OVERHEAD, (
        f"disabled search trace adds {disabled_overhead:.1%} to the "
        f"optimiser (budget {MAX_TRACE_DISABLED_OVERHEAD:.0%}); median "
        f"{disabled.median * 1e3:.2f}ms vs {baseline.median * 1e3:.2f}ms"
    )
    assert enabled_overhead < MAX_TRACE_ENABLED_OVERHEAD, (
        f"live search trace adds {enabled_overhead:.1%} to the "
        f"optimiser (budget {MAX_TRACE_ENABLED_OVERHEAD:.0%}); median "
        f"{enabled.median * 1e3:.2f}ms vs {baseline.median * 1e3:.2f}ms"
    )
    # The traced searches really journaled the enumeration.
    assert summary.get("generated", 0) > 0
    # Identical plans with and without the trace attached.
    assert (
        enabled.last_result.plan_fingerprint
        == baseline.last_result.plan_fingerprint
    )


def test_sentinel_overhead(bench_artifact, tmp_path):
    """The regression sentinel's tail must be cheap: a disabled sentinel
    adds (near) nothing to a logged execute loop, and a live one —
    incremental read + detection per query — stays within 15%."""
    from repro.obs.querylog import QueryLog, set_query_log
    from repro.obs.sentinel import Sentinel, SentinelConfig, SentinelThread

    disable_observability()
    plan = _build_plan()
    log = QueryLog(tmp_path / "bench_log.jsonl")
    set_query_log(log)
    try:
        off_thread = SentinelThread(
            log, Sentinel(config=SentinelConfig(enabled=False))
        )
        live_thread = SentinelThread(log, Sentinel())

        def run_with_disabled_sentinel():
            result = execute(plan)
            off_thread.tick()
            return result

        def run_with_live_sentinel():
            result = execute(plan)
            live_thread.tick()
            return result

        (
            (baseline, disabled, enabled),
            (_, disabled_overhead, enabled_overhead),
        ) = _paired_overheads(
            [
                lambda: execute(plan),
                run_with_disabled_sentinel,
                run_with_live_sentinel,
            ],
            rounds=9,
            warmup=2,
        )
    finally:
        set_query_log(None)

    bench_artifact(
        "sentinel_overhead",
        {
            "execute_logged": baseline,
            "execute_sentinel_disabled": disabled,
            "execute_sentinel_enabled": enabled,
        },
        meta={
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "ticks": live_thread.ticks,
        },
    )

    assert disabled_overhead < MAX_SENTINEL_DISABLED_OVERHEAD, (
        f"disabled sentinel adds {disabled_overhead:.1%} to a logged "
        f"execute loop (budget {MAX_SENTINEL_DISABLED_OVERHEAD:.0%})"
    )
    assert enabled_overhead < MAX_SENTINEL_ENABLED_OVERHEAD, (
        f"live sentinel adds {enabled_overhead:.1%} to a logged "
        f"execute loop (budget {MAX_SENTINEL_ENABLED_OVERHEAD:.0%})"
    )
    assert enabled.last_result.num_rows == baseline.last_result.num_rows
