"""Observability overhead: disabled instrumentation must be (near) free.

The contract of `repro.obs` is zero-cost-by-default: with the global
registry and tracer disabled, `execute()` must run within 5% of the
seed's bare `root.to_table()` loop. The *enabled* path has a budget
too: a full profile capture (metrics + tracing + per-operator
instrumentation + memory accounting, bundled by `capture_profile`)
must stay within 15% of bare execution. Both modes land in the
artifact record
(`REPRO_BENCH_ARTIFACTS=dir pytest benchmarks/bench_obs_overhead.py`).
"""

from repro import (
    Density,
    FeedbackStore,
    Sortedness,
    capture_observability,
    capture_profile,
    disable_observability,
    execute,
    make_join_scenario,
    optimize_dqo,
    plan_query,
    to_operator,
)
from repro._util.timer import time_callable
from repro.engine.executor import explain_analyze

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
#: overhead budget for the disabled path (fraction of baseline best time).
MAX_DISABLED_OVERHEAD = 0.05
#: overhead budget for a full profile capture over bare execution.
MAX_ENABLED_OVERHEAD = 0.15
#: budget for a *disabled* sentinel riding on a logged execute loop.
MAX_SENTINEL_DISABLED_OVERHEAD = 0.05
#: budget for a live sentinel (incremental tail + detection per query).
MAX_SENTINEL_ENABLED_OVERHEAD = 0.15


def _build_plan():
    scenario = make_join_scenario(
        n_r=45_000,
        n_s=90_000,
        num_groups=20_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)
    return to_operator(optimize_dqo(logical, catalog).plan, catalog)


def test_disabled_observability_overhead(bench_artifact):
    disable_observability()
    plan = _build_plan()

    baseline = time_callable(lambda: plan.to_table(), repeats=9, warmup=2)
    via_execute = time_callable(lambda: execute(plan), repeats=9, warmup=2)
    overhead = via_execute.best / baseline.best - 1.0

    feedback = FeedbackStore()
    with capture_observability() as (metrics, tracer):
        enabled = time_callable(lambda: execute(plan), repeats=5, warmup=1)
        analyzed = time_callable(
            lambda: explain_analyze(plan, feedback=feedback).table,
            repeats=5,
            warmup=1,
        )
        snapshot = metrics.snapshot()

    profiled = time_callable(
        lambda: capture_profile(plan, query=QUERY), repeats=5, warmup=1
    )
    enabled_overhead = profiled.best / baseline.best - 1.0

    bench_artifact(
        "obs_overhead",
        {
            "seed_to_table": baseline,
            "execute_disabled": via_execute,
            "execute_enabled": enabled,
            "explain_analyze": analyzed,
            "capture_profile": profiled,
        },
        metrics=snapshot,
        meta={
            "rows_r": 45_000,
            "rows_s": 90_000,
            "disabled_overhead": overhead,
            "enabled_overhead": enabled_overhead,
            "qerror_summary": feedback.qerror_summary(),
        },
    )

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability execute() is {overhead:.1%} slower than "
        f"bare to_table() (budget {MAX_DISABLED_OVERHEAD:.0%}); best "
        f"{via_execute.best_ms:.2f}ms vs {baseline.best_ms:.2f}ms"
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD, (
        f"full profile capture is {enabled_overhead:.1%} slower than bare "
        f"to_table() (budget {MAX_ENABLED_OVERHEAD:.0%}); best "
        f"{profiled.best_ms:.2f}ms vs {baseline.best_ms:.2f}ms"
    )
    # Sanity: the instrumented run still computes the same result shape.
    assert analyzed.last_result.num_rows == via_execute.last_result.num_rows
    assert profiled.last_result.rows_out == via_execute.last_result.num_rows


def test_sentinel_overhead(bench_artifact, tmp_path):
    """The regression sentinel's tail must be cheap: a disabled sentinel
    adds (near) nothing to a logged execute loop, and a live one —
    incremental read + detection per query — stays within 15%."""
    from repro.obs.querylog import QueryLog, set_query_log
    from repro.obs.sentinel import Sentinel, SentinelConfig, SentinelThread

    disable_observability()
    plan = _build_plan()
    log = QueryLog(tmp_path / "bench_log.jsonl")
    set_query_log(log)
    try:
        baseline = time_callable(lambda: execute(plan), repeats=9, warmup=2)

        off_thread = SentinelThread(
            log, Sentinel(config=SentinelConfig(enabled=False))
        )

        def run_with_disabled_sentinel():
            result = execute(plan)
            off_thread.tick()
            return result

        disabled = time_callable(
            run_with_disabled_sentinel, repeats=9, warmup=2
        )
        disabled_overhead = disabled.best / baseline.best - 1.0

        live_thread = SentinelThread(log, Sentinel())

        def run_with_live_sentinel():
            result = execute(plan)
            live_thread.tick()
            return result

        enabled = time_callable(run_with_live_sentinel, repeats=9, warmup=2)
        enabled_overhead = enabled.best / baseline.best - 1.0
    finally:
        set_query_log(None)

    bench_artifact(
        "sentinel_overhead",
        {
            "execute_logged": baseline,
            "execute_sentinel_disabled": disabled,
            "execute_sentinel_enabled": enabled,
        },
        meta={
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "ticks": live_thread.ticks,
        },
    )

    assert disabled_overhead < MAX_SENTINEL_DISABLED_OVERHEAD, (
        f"disabled sentinel adds {disabled_overhead:.1%} to a logged "
        f"execute loop (budget {MAX_SENTINEL_DISABLED_OVERHEAD:.0%})"
    )
    assert enabled_overhead < MAX_SENTINEL_ENABLED_OVERHEAD, (
        f"live sentinel adds {enabled_overhead:.1%} to a logged "
        f"execute loop (budget {MAX_SENTINEL_ENABLED_OVERHEAD:.0%})"
    )
    assert enabled.last_result.num_rows == baseline.last_result.num_rows
