"""Figure 4: grouping kernel runtimes per dataset panel (pytest-benchmark).

One benchmark per (panel, algorithm) at the paper's mid-range group count
(10,000 of up to 40,000). The benchmark *group* name is the panel, so
``pytest benchmarks/bench_figure4.py --benchmark-only`` prints one
comparison table per Figure 4 panel.

The paper's shape claims are additionally asserted (winner per panel) so
a regression in the kernels fails the run rather than silently producing
a differently-shaped figure.
"""

import pytest

from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine import GroupingAlgorithm, group_by
from repro.bench.figure4 import applicable_algorithms

GROUPS = 10_000

PANELS = [
    (Sortedness.SORTED, Density.DENSE),
    (Sortedness.SORTED, Density.SPARSE),
    (Sortedness.UNSORTED, Density.DENSE),
    (Sortedness.UNSORTED, Density.SPARSE),
]


def _dataset(bench_rows, sortedness, density):
    return make_grouping_dataset(
        bench_rows, GROUPS, sortedness=sortedness, density=density, seed=0
    )


@pytest.mark.parametrize("sortedness,density", PANELS,
                         ids=lambda v: getattr(v, "value", str(v)))
@pytest.mark.parametrize("algorithm", list(GroupingAlgorithm),
                         ids=lambda a: a.name)
def test_figure4_panel(benchmark, bench_rows, sortedness, density, algorithm):
    if algorithm not in applicable_algorithms(sortedness, density):
        pytest.skip(
            f"{algorithm.name} inapplicable on "
            f"{sortedness.value} & {density.value} (paper omits it too)"
        )
    dataset = _dataset(bench_rows, sortedness, density)
    benchmark.group = f"figure4 {sortedness.value} & {density.value}"
    result = benchmark(
        group_by,
        dataset.keys,
        dataset.payload,
        algorithm,
        num_distinct_hint=GROUPS,
    )
    assert result.num_groups == GROUPS


def test_figure4_shape_assertions(bench_rows):
    """The qualitative Figure 4 claims, asserted once per run."""
    from repro._util.timer import time_callable

    def best_ms(dataset, algorithm):
        return time_callable(
            lambda: group_by(
                dataset.keys, dataset.payload, algorithm,
                num_distinct_hint=GROUPS,
            ),
            repeats=2,
            warmup=1,
        ).best_ms

    rows = min(bench_rows, 1_000_000)
    sorted_dense = make_grouping_dataset(
        rows, GROUPS, Sortedness.SORTED, Density.DENSE, seed=0
    )
    # Sorted & dense: OG and SPHG beat HG (paper: >4x faster).
    og = best_ms(sorted_dense, GroupingAlgorithm.OG)
    sphg = best_ms(sorted_dense, GroupingAlgorithm.SPHG)
    hg = best_ms(sorted_dense, GroupingAlgorithm.HG)
    assert og < hg and sphg < hg

    unsorted_dense = make_grouping_dataset(
        rows, GROUPS, Sortedness.UNSORTED, Density.DENSE, seed=0
    )
    # Unsorted & dense: SPHG best, unaffected by sortedness.
    assert best_ms(unsorted_dense, GroupingAlgorithm.SPHG) < best_ms(
        unsorted_dense, GroupingAlgorithm.HG
    )

    unsorted_sparse = make_grouping_dataset(
        rows, GROUPS, Sortedness.UNSORTED, Density.SPARSE, seed=0
    )
    # Unsorted & sparse at 10k groups: HG superior (paper's wide range).
    hg_sparse = best_ms(unsorted_sparse, GroupingAlgorithm.HG)
    assert hg_sparse < best_ms(unsorted_sparse, GroupingAlgorithm.SOG)
    assert hg_sparse < best_ms(unsorted_sparse, GroupingAlgorithm.BSG)
