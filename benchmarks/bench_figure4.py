"""Figure 4: grouping kernel runtimes per dataset panel (pytest-benchmark).

One benchmark per (panel, algorithm) at the paper's mid-range group count
(10,000 of up to 40,000). The benchmark *group* name is the panel, so
``pytest benchmarks/bench_figure4.py --benchmark-only`` prints one
comparison table per Figure 4 panel.

The paper's shape claims are additionally asserted (winner per panel) so
a regression in the kernels fails the run rather than silently producing
a differently-shaped figure.
"""

import pytest

from repro.datagen import Density, Sortedness, make_grouping_dataset
from repro.engine import GroupingAlgorithm, group_by
from repro.bench.figure4 import applicable_algorithms

GROUPS = 10_000

PANELS = [
    (Sortedness.SORTED, Density.DENSE),
    (Sortedness.SORTED, Density.SPARSE),
    (Sortedness.UNSORTED, Density.DENSE),
    (Sortedness.UNSORTED, Density.SPARSE),
]


def _dataset(bench_rows, sortedness, density):
    return make_grouping_dataset(
        bench_rows, GROUPS, sortedness=sortedness, density=density, seed=0
    )


@pytest.mark.parametrize("sortedness,density", PANELS,
                         ids=lambda v: getattr(v, "value", str(v)))
@pytest.mark.parametrize("algorithm", list(GroupingAlgorithm),
                         ids=lambda a: a.name)
def test_figure4_panel(benchmark, bench_rows, sortedness, density, algorithm):
    if algorithm not in applicable_algorithms(sortedness, density):
        pytest.skip(
            f"{algorithm.name} inapplicable on "
            f"{sortedness.value} & {density.value} (paper omits it too)"
        )
    dataset = _dataset(bench_rows, sortedness, density)
    benchmark.group = f"figure4 {sortedness.value} & {density.value}"
    result = benchmark(
        group_by,
        dataset.keys,
        dataset.payload,
        algorithm,
        num_distinct_hint=GROUPS,
    )
    assert result.num_groups == GROUPS


def test_figure4_shape_assertions(bench_rows, bench_artifact):
    """The qualitative Figure 4 claims, asserted once per run."""
    from repro._util.timer import time_callable

    timings = {}

    def timing(dataset, panel, algorithm):
        result = time_callable(
            lambda: group_by(
                dataset.keys, dataset.payload, algorithm,
                num_distinct_hint=GROUPS,
            ),
            repeats=2,
            warmup=1,
        )
        timings[f"figure4/{panel}/{algorithm.name}"] = result
        return result.best_ms

    rows = min(bench_rows, 1_000_000)
    sorted_dense = make_grouping_dataset(
        rows, GROUPS, Sortedness.SORTED, Density.DENSE, seed=0
    )
    # Sorted & dense: OG and SPHG beat HG (paper: >4x faster).
    og = timing(sorted_dense, "sorted-dense", GroupingAlgorithm.OG)
    sphg = timing(sorted_dense, "sorted-dense", GroupingAlgorithm.SPHG)
    hg = timing(sorted_dense, "sorted-dense", GroupingAlgorithm.HG)

    unsorted_dense = make_grouping_dataset(
        rows, GROUPS, Sortedness.UNSORTED, Density.DENSE, seed=0
    )
    sphg_unsorted = timing(
        unsorted_dense, "unsorted-dense", GroupingAlgorithm.SPHG
    )
    hg_unsorted = timing(unsorted_dense, "unsorted-dense", GroupingAlgorithm.HG)

    unsorted_sparse = make_grouping_dataset(
        rows, GROUPS, Sortedness.UNSORTED, Density.SPARSE, seed=0
    )
    hg_sparse = timing(unsorted_sparse, "unsorted-sparse", GroupingAlgorithm.HG)
    sog_sparse = timing(
        unsorted_sparse, "unsorted-sparse", GroupingAlgorithm.SOG
    )
    bsg_sparse = timing(
        unsorted_sparse, "unsorted-sparse", GroupingAlgorithm.BSG
    )

    bench_artifact(
        "figure4_shapes", timings, meta={"rows": rows, "groups": GROUPS}
    )

    assert og < hg and sphg < hg
    # Unsorted & dense: SPHG best, unaffected by sortedness.
    assert sphg_unsorted < hg_unsorted
    # Unsorted & sparse at 10k groups: HG superior (paper's wide range).
    assert hg_sparse < sog_sparse
    assert hg_sparse < bsg_sparse
